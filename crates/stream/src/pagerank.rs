//! PageRank over the streaming store, including the incremental
//! (warm-restart and local-push) variants used by the streaming execution
//! model (paper §3.3.2, Eq. 2-3).
//!
//! STINGER's streaming PageRank [Riedy 2016] keeps the previous rank
//! vector and, after a batch of edge updates, solves for the *change* in
//! ranks instead of recomputing from scratch. Two realizations are
//! provided:
//!
//! - [`streaming_pagerank`] with [`Init::Provided`] — warm-restart power
//!   iteration: start from the previous vector (masked to the new active
//!   set) and iterate to tolerance. Robust; the benefit is fewer
//!   iterations, exactly the effect the Δ-system of Eq. 3 buys.
//! - [`local_push_pagerank`] — a Gauss–Seidel-style localized update: only
//!   vertices whose rank is stale (seeded at the endpoints of changed
//!   edges) are recomputed, dirtiness propagating to neighbors when a rank
//!   moves more than a threshold. Cheap for small batches, approximate.

use crate::store::StreamingGraph;
use tempopr_kernel::{
    FaultKind, Init, KernelError, NumericFault, Obs, PrConfig, PrStats, PrWorkspace, Scheduler,
};

/// Computes PageRank on the current streaming graph.
///
/// Semantics match the rest of the workspace (active set, rank 0 for
/// inactive vertices, L1 convergence). The graph is symmetric, so there is
/// no dangling mass. Pass `Init::Provided(prev)` for the incremental
/// warm restart.
pub fn streaming_pagerank(
    g: &StreamingGraph,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    streaming_pagerank_obs(g, init, cfg, sched, ws, Obs::off())
}

/// [`streaming_pagerank`] with an observation carrier: reports setup,
/// per-iteration residual/mass, and honors the same [`FaultKind`]
/// injection hooks as the static kernels so the driver's failure paths are
/// testable. The observer is read-only — the mass reduction only runs when
/// a sink is attached, and the computed ranks are bit-identical either way.
pub fn streaming_pagerank_obs(
    g: &StreamingGraph,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let t_setup = obs.now();
    let n = g.num_vertices();
    ws.ensure(n);
    for v in 0..n {
        let d = g.degree(v as u32);
        ws.deg_out[v] = d;
        ws.active[v] = d > 0;
        if d > 0 {
            ws.active_list.push(v as u32);
            ws.inv_deg[v] = 1.0 / d as f64;
        }
    }
    let n_act = ws.active_list.len();
    if n_act == 0 {
        obs.setup(0, t_setup);
        return Ok(PrStats::empty());
    }
    let n_act_f = n_act as f64;
    tempopr_kernel::pagerank::initialize(init, &ws.active, n_act_f, &mut ws.x)?;
    if let Some(FaultKind::CorruptReciprocal) = cfg.fault {
        tempopr_kernel::pagerank::corrupt_first_reciprocal(&ws.active_list, &mut ws.inv_deg);
    }
    obs.setup(n_act, t_setup);

    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let base = alpha / n_act_f;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        match cfg.fault {
            Some(FaultKind::InjectNan { at_iter }) if at_iter == iterations => {
                let v = ws.active_list[0] as usize;
                ws.x[v] = f64::NAN;
            }
            Some(FaultKind::PanicInKernel) if iterations == 1 => {
                // Intentional: models a latent kernel bug for the driver's
                // panic-isolation path.
                panic!("fault injection: panic inside streaming kernel");
            }
            _ => {}
        }
        let t_iter = obs.now();
        let list = &ws.active_list;
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let compact = &mut ws.y[..n_act];
        let body = |off: usize, slice: &mut [f64]| {
            let mut d = 0.0;
            for (i, yv) in slice.iter_mut().enumerate() {
                let v = list[off + i];
                let mut s = 0.0;
                for (u, _, _) in g.neighbors(v) {
                    s += x[u as usize] * inv_deg[u as usize];
                }
                let val = base + damp * s;
                d += (val - x[v as usize]).abs();
                *yv = val;
            }
            d
        };
        let diff = match sched {
            Some(s) => s.map_reduce_slice_mut(compact, 0.0f64, body, |a, b| a + b),
            None => body(0, compact),
        };
        let t_mid = obs.now();
        if !diff.is_finite() {
            return Err(KernelError::Numeric {
                iteration: iterations,
                fault: NumericFault::NonFinite { lane: 0 },
            });
        }
        for (i, &v) in ws.active_list.iter().enumerate() {
            ws.x[v as usize] = ws.y[i];
        }
        if obs.is_on() {
            let mass: f64 = ws.y[..n_act].iter().sum();
            obs.iteration(iterations, diff, mass, t_iter, t_mid);
        }
        if diff < cfg.tol && cfg.fault != Some(FaultKind::ForceNonConvergence) {
            converged = true;
            break;
        }
    }
    Ok(PrStats {
        iterations,
        converged,
        active_vertices: n_act,
        ..PrStats::empty()
    })
}

/// Localized incremental update: Gauss–Seidel sweeps restricted to a dirty
/// set seeded with `touched` vertices (endpoints of the update batch),
/// expanding to neighbors whenever a rank moves by more than
/// `cfg.tol / |V_i|`.
///
/// `prev` is the previous window's rank vector over the same (global)
/// vertex space; the result lands in `ws.x`. Vertices that join or leave
/// the active set are handled by the same masking/renormalization as the
/// warm restart. The result is approximate (within a small multiple of
/// `cfg.tol` of the true fixed point); callers needing exact agreement
/// should use the warm restart.
pub fn local_push_pagerank(
    g: &StreamingGraph,
    prev: &[f64],
    touched: &[u32],
    cfg: &PrConfig,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    let n = g.num_vertices();
    if prev.len() != n {
        return Err(KernelError::BadVectorLength {
            what: "previous ranks",
            expected: n,
            got: prev.len(),
        });
    }
    ws.ensure(n);
    let mut n_act = 0usize;
    for v in 0..n {
        let d = g.degree(v as u32);
        ws.deg_out[v] = d;
        ws.active[v] = d > 0;
        if d > 0 {
            n_act += 1;
            ws.inv_deg[v] = 1.0 / d as f64;
        }
    }
    if n_act == 0 {
        return Ok(PrStats::empty());
    }
    let n_act_f = n_act as f64;
    tempopr_kernel::pagerank::initialize(Init::Provided(prev), &ws.active, n_act_f, &mut ws.x)?;
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let base = alpha / n_act_f;
    let theta = (cfg.tol / n_act_f).max(f64::MIN_POSITIVE);

    // Dirty-flag sweeps. `ws.y` doubles as the dirty marker (0/1) to avoid
    // an extra allocation; ranks update in place (Gauss–Seidel).
    let dirty = &mut ws.y;
    dirty.iter_mut().for_each(|d| *d = 0.0);
    let mut frontier: Vec<u32> = Vec::new();
    for &v in touched {
        if ws.active[v as usize] && dirty[v as usize] == 0.0 {
            dirty[v as usize] = 1.0;
            frontier.push(v);
        }
    }
    // Newly active vertices start dirty too: their uniform-share init is a
    // guess.
    for v in 0..n {
        if ws.active[v] && prev[v] <= 0.0 && dirty[v] == 0.0 {
            dirty[v] = 1.0;
            frontier.push(v as u32);
        }
    }
    let mut sweeps = 0usize;
    let mut next: Vec<u32> = Vec::new();
    let mut verified = false;
    while sweeps < cfg.max_iters {
        if frontier.is_empty() {
            if verified {
                break;
            }
            // Verification sweep: the frontier drained, but pushes only
            // chase first-order effects; re-seed any vertex whose balance
            // still violates the threshold so per-window error stays
            // O(tol) and does not accumulate across the window sequence.
            for (v, &act) in ws.active.iter().enumerate() {
                if !act {
                    continue;
                }
                let mut s = 0.0;
                for (u, _, _) in g.neighbors(v as u32) {
                    s += ws.x[u as usize] * ws.inv_deg[u as usize];
                }
                if (base + damp * s - ws.x[v]).abs() > theta && dirty[v] == 0.0 {
                    dirty[v] = 1.0;
                    frontier.push(v as u32);
                }
            }
            verified = true;
            if frontier.is_empty() {
                break;
            }
            continue;
        }
        verified = false;
        sweeps += 1;
        next.clear();
        for &v in &frontier {
            let vi = v as usize;
            dirty[vi] = 0.0;
            let mut s = 0.0;
            for (u, _, _) in g.neighbors(v) {
                s += ws.x[u as usize] * ws.inv_deg[u as usize];
            }
            let val = base + damp * s;
            let delta = (val - ws.x[vi]).abs();
            ws.x[vi] = val;
            if delta > theta {
                for (u, _, _) in g.neighbors(v) {
                    let ui = u as usize;
                    if ws.active[ui] && dirty[ui] == 0.0 {
                        dirty[ui] = 1.0;
                        next.push(u);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    // Ranks drifted off a strict distribution; renormalize over the active
    // set so downstream comparisons remain meaningful.
    let sum: f64 = (0..n).filter(|&v| ws.active[v]).map(|v| ws.x[v]).sum();
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in 0..n {
            if ws.active[v] {
                ws.x[v] *= inv;
            } else {
                ws.x[v] = 0.0;
            }
        }
    }
    dirty.iter_mut().for_each(|d| *d = 0.0);
    Ok(PrStats {
        iterations: sweeps,
        converged: frontier.is_empty(),
        active_vertices: n_act,
        ..PrStats::empty()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_kernel::reference_pagerank;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    fn build(n: usize, pairs: &[(u32, u32)]) -> StreamingGraph {
        let mut g = StreamingGraph::new(n);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            g.insert_event(u, v, i as i64);
        }
        g
    }

    fn sym_edges(pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for &(u, v) in pairs {
            e.push((u, v));
            if u != v {
                e.push((v, u));
            }
        }
        e
    }

    #[test]
    fn matches_reference() {
        let pairs = vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (2, 4)];
        let g = build(5, &pairs);
        let mut ws = PrWorkspace::default();
        let stats = streaming_pagerank(&g, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let r = reference_pagerank(5, &sym_edges(&pairs), &cfg());
        for (a, b) in ws.ranks().iter().zip(r.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(stats.converged);
        assert_eq!(stats.active_vertices, 5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pairs: Vec<(u32, u32)> = (0..80)
            .map(|i| ((i * 13 + 1) % 20, (i * 7 + 3) % 20))
            .collect();
        let g = build(20, &pairs);
        let mut seq = PrWorkspace::default();
        streaming_pagerank(&g, Init::Uniform, &cfg(), None, &mut seq).unwrap();
        let s = Scheduler::default();
        let mut par = PrWorkspace::default();
        streaming_pagerank(&g, Init::Uniform, &cfg(), Some(&s), &mut par).unwrap();
        for (a, b) in seq.ranks().iter().zip(par.ranks().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_restart_reaches_same_fixed_point_faster() {
        // Hub-heavy graph, then a small perturbation.
        let mut pairs: Vec<(u32, u32)> = (1..25).map(|v| (0, v)).collect();
        pairs.extend((1..12).map(|v| (v, v + 1)));
        let g0 = build(30, &pairs);
        let mut ws = PrWorkspace::default();
        streaming_pagerank(&g0, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let prev = ws.ranks().to_vec();
        let mut g1 = g0.clone();
        g1.insert_event(25, 26, 99);
        g1.insert_event(3, 9, 100);
        let mut cold_ws = PrWorkspace::default();
        let cold = streaming_pagerank(&g1, Init::Uniform, &cfg(), None, &mut cold_ws).unwrap();
        let warm = streaming_pagerank(&g1, Init::Partial(&prev), &cfg(), None, &mut ws).unwrap();
        for (a, b) in ws.ranks().iter().zip(cold_ws.ranks().iter()) {
            assert!((a - b).abs() < 1e-8);
        }
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn local_push_approximates_full_recompute() {
        let mut pairs: Vec<(u32, u32)> = (1..25).map(|v| (0, v)).collect();
        pairs.extend((1..12).map(|v| (v, v + 1)));
        let g0 = build(30, &pairs);
        let mut ws = PrWorkspace::default();
        streaming_pagerank(&g0, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let prev = ws.ranks().to_vec();
        let mut g1 = g0.clone();
        g1.insert_event(3, 9, 100);
        g1.insert_event(25, 26, 101);
        let c = PrConfig {
            tol: 1e-10,
            ..cfg()
        };
        let stats = local_push_pagerank(&g1, &prev, &[3, 9, 25, 26], &c, &mut ws).unwrap();
        assert!(stats.converged);
        let mut full = PrWorkspace::default();
        streaming_pagerank(&g1, Init::Uniform, &c, None, &mut full).unwrap();
        for (v, (a, b)) in ws.ranks().iter().zip(full.ranks().iter()).enumerate() {
            assert!((a - b).abs() < 1e-5, "vertex {v}: {a} vs {b}");
        }
        let sum: f64 = ws.ranks().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn local_push_with_no_changes_is_cheap() {
        let pairs: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        let g = build(12, &pairs);
        let mut ws = PrWorkspace::default();
        streaming_pagerank(&g, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let prev = ws.ranks().to_vec();
        let stats = local_push_pagerank(&g, &prev, &[], &cfg(), &mut ws).unwrap();
        assert!(stats.converged);
        assert!(
            stats.iterations <= 3,
            "no touched vertices => at most residual-flush sweeps, got {}",
            stats.iterations
        );
        for (a, b) in ws.ranks().iter().zip(prev.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = StreamingGraph::new(5);
        let mut ws = PrWorkspace::default();
        let stats = streaming_pagerank(&g, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        assert_eq!(stats.active_vertices, 0);
        assert!(ws.ranks().iter().all(|&x| x == 0.0));
    }
}
