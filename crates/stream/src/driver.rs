//! The streaming execution model driver (paper §3.3.2, §5.1).
//!
//! Replays the sliding-window sequence against the STINGER-like store: for
//! each step the events entering the window are inserted and the events
//! leaving it are deleted — "updates in batches equivalent to the
//! postmortem code", as the paper configured STINGER for fairness — and the
//! analysis is recomputed incrementally from the previous window's ranks.
//! Only one version of the graph exists at a time, so the model has no
//! across-window parallelism: parallelism is limited to inside the kernel
//! and the update batches.
//!
//! The per-window lifecycle runs on the shared execution layer
//! ([`tempopr_core::exec`]): the [`WindowSource`] here is the mutating
//! store replay, and failure handling (panic isolation, the recovery
//! ladder under [`StreamingConfig::recovery`], terminal status assembly)
//! is the same single implementation the postmortem and offline drivers
//! use.

use crate::pagerank::{local_push_pagerank, streaming_pagerank_obs};
use crate::store::StreamingGraph;
use std::cell::Cell;
use std::sync::Arc;
use tempopr_core::checkpoint::{self, CheckpointOptions, CheckpointRecord, CheckpointSink};
use tempopr_core::exec::{
    oracle_from_events, run_windows, RecoveryPolicy, WindowExecutor, WindowSource,
};
use tempopr_core::{EngineError, RunOutput, WindowOutput};
use tempopr_core::{FaultPlan, RetainMode, TelemetryKernelBridge};
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::{thread_pool, Init, Obs, PrConfig, PrWorkspace, Scheduler};
use tempopr_telemetry::{Phase as RunPhase, Telemetry, TraceEvent, TraceKind};

/// How ranks are updated after each window's batch of edge updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Recompute from a uniform start every window (no incrementality;
    /// isolates the cost of the streaming data structure).
    Recompute,
    /// Warm-restart power iteration from the previous ranks (the robust
    /// realization of STINGER's incremental PageRank).
    #[default]
    WarmRestart,
    /// Localized Gauss–Seidel pushes seeded at updated vertices
    /// (approximate; fastest on small update batches).
    LocalPush,
}

/// Configuration of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// PageRank parameters.
    pub pr: PrConfig,
    /// Incremental update strategy.
    pub incremental: IncrementalMode,
    /// Scheduler for in-kernel parallelism (the model's only parallelism).
    pub scheduler: Scheduler,
    /// Use in-kernel parallelism at all.
    pub parallel_kernel: bool,
    /// Worker threads (0 = rayon default).
    pub threads: usize,
    /// Output retention.
    pub retain: RetainMode,
    /// Deterministic fault injection plan (testing only). Empty by
    /// default; when empty, the run takes exactly the fault-free code
    /// path. Mirrors the postmortem engine's plan so the driver's
    /// failure/cold-restart path is testable.
    pub faults: FaultPlan,
    /// Recovery rungs for failed windows. Defaults to
    /// [`RecoveryPolicy::fail_only`] — the streaming baseline historically
    /// reports a window that cannot converge as `Failed` and cold-restarts
    /// the next — but accepts the full ladder for cross-driver parity
    /// testing.
    pub recovery: RecoveryPolicy,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            pr: PrConfig::default(),
            incremental: IncrementalMode::WarmRestart,
            scheduler: Scheduler::default(),
            parallel_kernel: true,
            threads: 0,
            retain: RetainMode::Full,
            faults: FaultPlan::default(),
            recovery: RecoveryPolicy::fail_only(),
        }
    }
}

/// Runs the streaming model over the whole window sequence.
///
/// ```
/// use tempopr_graph::{Event, EventLog, WindowSpec};
/// use tempopr_stream::{run_streaming, StreamingConfig};
/// let log = EventLog::from_unsorted(
///     (0..60u32).map(|i| Event::new(i % 8, (i * 3 + 1) % 8, i as i64)).collect(),
///     8,
/// ).unwrap();
/// let spec = WindowSpec::covering(&log, 20, 10).unwrap();
/// let out = run_streaming(&log, spec, &StreamingConfig::default()).unwrap();
/// assert_eq!(out.windows.len(), spec.count);
/// ```
///
/// Errors only on setup (an unbuildable thread pool); a window whose
/// kernel errors or panics is reported as
/// [`WindowStatus::Failed`](tempopr_core::WindowStatus::Failed) — the
/// replay continues with the next window from a cold start and the output
/// is flagged degraded.
pub fn run_streaming(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
) -> Result<RunOutput, EngineError> {
    run_streaming_traced(log, spec, cfg, &Telemetry::noop())
}

/// [`run_streaming`] recording into a telemetry sink: update batches count
/// toward the window-setup phase (the streaming model's defining cost),
/// kernels report residual traces, cold restarts after a failed window are
/// counted under `recovery.cold_restart`, and the store's resident bytes
/// land in the `memory.stream_bytes` gauge. A noop sink is exactly
/// [`run_streaming`].
pub fn run_streaming_traced(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    run_streaming_durable(log, spec, cfg, &CheckpointOptions::default(), tele)
}

/// [`run_streaming_traced`] with durability ([`tempopr_core::checkpoint`]):
/// finalized windows are persisted as `tempopr.ckpt.v1` records when `opts`
/// names a checkpoint directory, and a resume source's valid prefix is
/// restored instead of recomputed.
///
/// The streaming store is stateful, so resume replays the skipped windows'
/// insert/delete batches — without running any kernel — to rebuild the one
/// live graph operation-for-operation, then seeds the warm-start chain from
/// the last checkpointed ranks. The replay reproduces the store bit-exactly
/// (batches are a pure function of the event log and window spec), so the
/// combined output is bit-identical to an uninterrupted run; if the last
/// durable window had failed, the chain restarts cold exactly as the
/// uninterrupted run would.
pub fn run_streaming_durable(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
    opts: &CheckpointOptions,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    let header = checkpoint::ManifestHeader::new(
        checkpoint::DRIVER_STREAMING,
        streaming_config_hash(cfg),
        checkpoint::log_fingerprint(log),
        &spec,
    );
    let mut prefix: Vec<CheckpointRecord> = Vec::new();
    if let Some(from) = &opts.resume {
        let scan = {
            let _t = tele.phase(RunPhase::ResumeScan);
            checkpoint::resume_scan(from, &header)?
        };
        tele.add("checkpoint.corrupt_discarded", scan.corrupt_discarded);
        prefix = scan.records;
        prefix.truncate(spec.count);
    }
    let start = prefix.len();
    tele.add("checkpoint.resume_skipped", start as u64);
    // The warm-start seed: the last durable window's ranks, if it was
    // valid. An invalid tail record leaves `seed` empty and the first
    // recomputed window cold-restarts, like the uninterrupted run.
    let seed = (start > 0)
        .then(|| {
            let last = &prefix[start - 1];
            last.status
                .is_valid()
                .then(|| last.ranks.to_dense(log.num_vertices()))
        })
        .flatten();
    let mut restored: Vec<WindowOutput> = prefix.iter().map(|r| r.to_output(cfg.retain)).collect();
    let ckpt = match &opts.dir {
        Some(dir) => Some(Arc::new(CheckpointSink::create(
            dir,
            &header,
            &prefix,
            opts.every,
            cfg.faults.crash_after_checkpoint,
            tele.clone(),
        )?)),
        None => None,
    };
    let inner = || run_streaming_inner(log, spec, cfg, start, seed, ckpt.as_ref(), tele);
    let mut out = if cfg.threads > 0 {
        thread_pool(cfg.threads)?.install(inner)
    } else {
        inner()
    };
    if let Some(sink) = &ckpt {
        sink.finish();
    }
    out.windows.append(&mut restored);
    out.windows.sort_by_key(|w| w.window);
    out.finalize_status();
    out.assert_complete(spec.count);
    tele.add("windows.total", out.windows.len() as u64);
    tele.set_gauge("run.degraded", f64::from(u8::from(out.degraded)));
    Ok(out)
}

/// Compatibility hash of a streaming configuration: FNV-1a over the
/// config's `Debug` rendering with crash injection masked out (the crashed
/// run and its resume differ exactly there).
fn streaming_config_hash(cfg: &StreamingConfig) -> u64 {
    let mut c = cfg.clone();
    c.faults.crash_after_checkpoint = None;
    checkpoint::hash_config(&format!("{c:?}"))
}

/// [`WindowSource`] of the streaming model: applies each window's update
/// batch (inserts of entering events, deletes of leaving ones) to the one
/// live version of the graph. The work item is the mutated store itself,
/// accessed through the source.
struct StreamSource<'a> {
    log: &'a EventLog,
    spec: WindowSpec,
    /// Sort + dedup the touched-vertex list after the batch (the local
    /// push kernel's seed set; idempotent across recovery attempts).
    sort_touched: bool,
    tele: &'a Telemetry,
    graph: StreamingGraph,
    touched: Vec<u32>,
}

impl WindowSource for StreamSource<'_> {
    type Item = ();

    fn setup(&mut self, w: usize) {
        let range = self.spec.window(w);
        self.touched.clear();
        // The update batch is the streaming model's per-window setup cost.
        let setup = self.tele.phase(RunPhase::WindowSetup);
        // Insert events that entered the window.
        let ins_lo = if w == 0 {
            range.start
        } else {
            // Events up to the previous window's end are already present.
            (self.spec.window(w - 1).end + 1).max(range.start)
        };
        for e in self.log.slice_by_time(ins_lo, range.end) {
            self.graph.insert_event(e.u, e.v, e.t);
            self.touched.push(e.u);
            self.touched.push(e.v);
        }
        // Delete events that left the window.
        if w > 0 {
            let prev_range = self.spec.window(w - 1);
            let del_hi = (range.start - 1).min(prev_range.end);
            for e in self.log.slice_by_time(prev_range.start, del_hi) {
                let removed = self.graph.delete_event(e.u, e.v);
                debug_assert!(removed, "window {w}: deleting an event never inserted");
                self.touched.push(e.u);
                self.touched.push(e.v);
            }
        }
        if self.sort_touched {
            self.touched.sort_unstable();
            self.touched.dedup();
        }
        drop(setup);
    }
}

fn run_streaming_inner(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
    start: usize,
    seed: Option<Vec<f64>>,
    ckpt: Option<&Arc<CheckpointSink>>,
    tele: &Telemetry,
) -> RunOutput {
    let n = log.num_vertices();
    let mut ws = PrWorkspace::default();
    let (mut prev, mut have_prev) = match seed {
        Some(s) => (s, true),
        None => (vec![0.0; n], false),
    };
    let sched = cfg.parallel_kernel.then_some(&cfg.scheduler);
    let executor =
        WindowExecutor::new(tele, &cfg.pr, cfg.recovery, cfg.retain).with_checkpoint(ckpt.cloned());
    let mut source = StreamSource {
        log,
        spec,
        sort_touched: cfg.incremental == IncrementalMode::LocalPush,
        tele,
        graph: StreamingGraph::new(n),
        touched: Vec::new(),
    };
    // Resume replay: re-apply the skipped windows' insert/delete batches —
    // kernels stay off — so the one live store reaches window `start - 1`'s
    // exact state before recomputation begins.
    for w in 0..start {
        source.setup(w);
    }

    let windows = run_windows(&mut source, start..spec.count, None, tele, |src, w, _| {
        let range = spec.window(w);
        // A broken warm-start chain is the streaming model's baseline
        // recovery story: the window after a failure recomputes from a
        // cold uniform start.
        if w > 0 && !have_prev {
            tele.add("recovery.cold_restart", 1);
            tele.record(TraceEvent::marker(
                TraceKind::RecoveryColdRestart,
                w as u32,
                1,
                0,
            ));
        }
        let prcfg = PrConfig {
            fault: cfg.faults.fault_for(w).or(cfg.pr.fault),
            ..cfg.pr
        };
        let was_partial = have_prev && cfg.incremental != IncrementalMode::Recompute;
        if was_partial {
            // Parity with the postmortem engine's warm-start accounting:
            // every window seeded from the previous one counts here, so
            // the two models' reuse rates compare directly.
            tele.add("warmstart.seeded_windows", 1);
        }
        let attempt_no = Cell::new(0u16);
        // The kernels never mutate the store, so an error or panic poisons
        // only this window: the replay continues, but the warm-start chain
        // is broken (the workspace is discarded and the next window starts
        // cold) unless a recovery rung rescues the window first.
        let (stats, status, override_ranks, attempts) = {
            let graph = &src.graph;
            let touched = &src.touched;
            let ws = &mut ws;
            let prev_ref = &prev;
            let attempt_no = &attempt_no;
            let kernel = move |uniform: bool| {
                attempt_no.set(attempt_no.get() + 1);
                let bridge = TelemetryKernelBridge::new(tele, attempt_no.get());
                let obs = if tele.is_enabled() {
                    Obs::new(&bridge, w as u32)
                } else {
                    Obs::off()
                };
                match cfg.incremental {
                    IncrementalMode::Recompute => {
                        streaming_pagerank_obs(graph, Init::Uniform, &prcfg, sched, ws, obs)
                    }
                    IncrementalMode::WarmRestart => {
                        // Eq. 4-style warm start: shared vertices keep
                        // scaled previous ranks, newcomers take the uniform
                        // share (a plain masked restart leaves newcomers at
                        // 0, which converges slowly for weakly-coupled new
                        // components).
                        let init = if have_prev && !uniform {
                            Init::Partial(prev_ref)
                        } else {
                            Init::Uniform
                        };
                        streaming_pagerank_obs(graph, init, &prcfg, sched, ws, obs)
                    }
                    IncrementalMode::LocalPush => {
                        if have_prev && !uniform {
                            // The push sweeps have no iteration structure a
                            // kernel observer could report; their wall time
                            // is attributed to the SpMV phase as a whole.
                            let _push = tele.phase(RunPhase::Spmv);
                            local_push_pagerank(graph, prev_ref, touched, &prcfg, ws)
                        } else {
                            streaming_pagerank_obs(graph, Init::Uniform, &prcfg, sched, ws, obs)
                        }
                    }
                }
            };
            let oracle = || {
                let events = log.slice_by_time(range.start, range.end);
                oracle_from_events(
                    n,
                    events,
                    true,
                    range,
                    &cfg.pr,
                    cfg.recovery.max_oracle_active,
                )
            };
            executor.drive(w as u32, was_partial, n, kernel, oracle)
        };
        let valid = status.is_valid();
        if !valid {
            ws = PrWorkspace::default();
        }
        let local: &[f64] = match &override_ranks {
            Some(x) => x,
            None => ws.ranks(),
        };
        let output = executor.finalize(w, None, stats, local, status, attempts);
        // The next window warm-starts from this window's *final* ranks —
        // including oracle-recovered ones — or cold-starts after a failure.
        if valid {
            prev.copy_from_slice(local);
            have_prev = true;
        } else {
            have_prev = false;
        }
        output
    });
    tele.set_gauge("memory.stream_bytes", source.graph.memory_bytes() as f64);
    RunOutput {
        windows,
        degraded: false, // recomputed by finalize_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_core::{run_offline, OfflineConfig};
    use tempopr_graph::Event;

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..500u32 {
            let u = (i * 11 + 1) % 26;
            let v = (i * 5 + 7) % 26;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 26).unwrap()
    }

    fn tight() -> StreamingConfig {
        StreamingConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    fn offline_tight() -> OfflineConfig {
        OfflineConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn streaming_matches_offline_overlapping_windows() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let s = run_streaming(&log, spec, &tight()).unwrap();
        let o = run_offline(&log, spec, &offline_tight()).unwrap();
        for (a, b) in s.windows.iter().zip(o.windows.iter()) {
            let d = a
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(b.ranks.as_ref().unwrap());
            assert!(d < 1e-8, "window {}: linf {d}", a.window);
            assert_eq!(a.stats.active_vertices, b.stats.active_vertices);
        }
    }

    #[test]
    fn streaming_matches_offline_disjoint_windows() {
        // sw > delta: windows do not overlap; gap events must be skipped.
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 90).unwrap();
        let s = run_streaming(&log, spec, &tight()).unwrap();
        let o = run_offline(&log, spec, &offline_tight()).unwrap();
        for (a, b) in s.windows.iter().zip(o.windows.iter()) {
            let d = a
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(b.ranks.as_ref().unwrap());
            assert!(d < 1e-8, "window {}: linf {d}", a.window);
        }
    }

    #[test]
    fn all_incremental_modes_agree_roughly() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let warm = run_streaming(&log, spec, &tight()).unwrap();
        let cold = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::Recompute,
                ..tight()
            },
        )
        .unwrap();
        let push = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::LocalPush,
                ..tight()
            },
        )
        .unwrap();
        for w in 0..spec.count {
            let a = warm.windows[w].ranks.as_ref().unwrap();
            let b = cold.windows[w].ranks.as_ref().unwrap();
            let c = push.windows[w].ranks.as_ref().unwrap();
            assert!(a.linf_distance(b) < 1e-8, "warm vs cold, window {w}");
            assert!(a.linf_distance(c) < 1e-4, "warm vs push, window {w}");
        }
    }

    #[test]
    fn warm_restart_saves_iterations() {
        // Hub-heavy temporal graph: consecutive windows are similar.
        let mut events = Vec::new();
        for i in 0..600u32 {
            let (u, v) = if i % 3 != 0 {
                (0, 1 + i % 29)
            } else {
                (1 + (i * 7) % 29, 1 + (i * 13) % 29)
            };
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        let log = EventLog::from_unsorted(events, 30).unwrap();
        let spec = WindowSpec::covering(&log, 200, 25).unwrap();
        let warm = run_streaming(&log, spec, &tight()).unwrap();
        let cold = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::Recompute,
                ..tight()
            },
        )
        .unwrap();
        assert!(
            warm.total_iterations() < cold.total_iterations(),
            "warm {} vs cold {}",
            warm.total_iterations(),
            cold.total_iterations()
        );
    }

    #[test]
    fn summary_retention_and_threads() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let out = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                retain: RetainMode::Summary,
                threads: 2,
                ..tight()
            },
        )
        .unwrap();
        assert!(out.windows.iter().all(|w| w.ranks.is_none()));
        assert_eq!(out.windows.len(), spec.count);
    }
}
