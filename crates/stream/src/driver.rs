//! The streaming execution model driver (paper §3.3.2, §5.1).
//!
//! Replays the sliding-window sequence against the STINGER-like store: for
//! each step the events entering the window are inserted and the events
//! leaving it are deleted — "updates in batches equivalent to the
//! postmortem code", as the paper configured STINGER for fairness — and the
//! analysis is recomputed incrementally from the previous window's ranks.
//! Only one version of the graph exists at a time, so the model has no
//! across-window parallelism: parallelism is limited to inside the kernel
//! and the update batches.

use crate::pagerank::{local_push_pagerank, streaming_pagerank_obs};
use crate::store::StreamingGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tempopr_core::{EngineError, RunOutput, SparseRanks, WindowOutput, WindowStatus};
use tempopr_core::{FaultPlan, RetainMode, TelemetryKernelBridge};
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::{thread_pool, Init, Obs, PrConfig, PrStats, PrWorkspace, Scheduler};
use tempopr_telemetry::{Phase as RunPhase, Telemetry, TraceEvent, TraceKind};

/// How ranks are updated after each window's batch of edge updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Recompute from a uniform start every window (no incrementality;
    /// isolates the cost of the streaming data structure).
    Recompute,
    /// Warm-restart power iteration from the previous ranks (the robust
    /// realization of STINGER's incremental PageRank).
    #[default]
    WarmRestart,
    /// Localized Gauss–Seidel pushes seeded at updated vertices
    /// (approximate; fastest on small update batches).
    LocalPush,
}

/// Configuration of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// PageRank parameters.
    pub pr: PrConfig,
    /// Incremental update strategy.
    pub incremental: IncrementalMode,
    /// Scheduler for in-kernel parallelism (the model's only parallelism).
    pub scheduler: Scheduler,
    /// Use in-kernel parallelism at all.
    pub parallel_kernel: bool,
    /// Worker threads (0 = rayon default).
    pub threads: usize,
    /// Output retention.
    pub retain: RetainMode,
    /// Deterministic fault injection plan (testing only). Empty by
    /// default; when empty, the run takes exactly the fault-free code
    /// path. Mirrors the postmortem engine's plan so the driver's
    /// failure/cold-restart path is testable.
    pub faults: FaultPlan,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            pr: PrConfig::default(),
            incremental: IncrementalMode::WarmRestart,
            scheduler: Scheduler::default(),
            parallel_kernel: true,
            threads: 0,
            retain: RetainMode::Full,
            faults: FaultPlan::default(),
        }
    }
}

/// Runs the streaming model over the whole window sequence.
///
/// ```
/// use tempopr_graph::{Event, EventLog, WindowSpec};
/// use tempopr_stream::{run_streaming, StreamingConfig};
/// let log = EventLog::from_unsorted(
///     (0..60u32).map(|i| Event::new(i % 8, (i * 3 + 1) % 8, i as i64)).collect(),
///     8,
/// ).unwrap();
/// let spec = WindowSpec::covering(&log, 20, 10).unwrap();
/// let out = run_streaming(&log, spec, &StreamingConfig::default()).unwrap();
/// assert_eq!(out.windows.len(), spec.count);
/// ```
///
/// Errors only on setup (an unbuildable thread pool); a window whose
/// kernel errors or panics is reported as [`WindowStatus::Failed`] — the
/// replay continues with the next window from a cold start and the output
/// is flagged degraded.
pub fn run_streaming(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
) -> Result<RunOutput, EngineError> {
    run_streaming_traced(log, spec, cfg, &Telemetry::noop())
}

/// [`run_streaming`] recording into a telemetry sink: update batches count
/// toward the window-setup phase (the streaming model's defining cost),
/// kernels report residual traces, cold restarts after a failed window are
/// counted under `recovery.cold_restart`, and the store's resident bytes
/// land in the `memory.stream_bytes` gauge. A noop sink is exactly
/// [`run_streaming`].
pub fn run_streaming_traced(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    let inner = || run_streaming_inner(log, spec, cfg, tele);
    let mut out = if cfg.threads > 0 {
        thread_pool(cfg.threads)?.install(inner)
    } else {
        inner()
    };
    out.finalize_status();
    out.assert_complete(spec.count);
    tele.add("windows.total", out.windows.len() as u64);
    tele.set_gauge("run.degraded", f64::from(u8::from(out.degraded)));
    Ok(out)
}

fn run_streaming_inner(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StreamingConfig,
    tele: &Telemetry,
) -> RunOutput {
    let n = log.num_vertices();
    let mut graph = StreamingGraph::new(n);
    let mut ws = PrWorkspace::default();
    let mut prev: Vec<f64> = vec![0.0; n];
    let mut have_prev = false;
    let mut touched: Vec<u32> = Vec::new();
    let mut windows = Vec::with_capacity(spec.count);
    let sched = cfg.parallel_kernel.then_some(&cfg.scheduler);

    for w in 0..spec.count {
        let range = spec.window(w);
        touched.clear();
        // The update batch is the streaming model's per-window setup cost.
        let setup = tele.phase(RunPhase::WindowSetup);
        // Insert events that entered the window.
        let ins_lo = if w == 0 {
            range.start
        } else {
            // Events up to the previous window's end are already present.
            (spec.window(w - 1).end + 1).max(range.start)
        };
        for e in log.slice_by_time(ins_lo, range.end) {
            graph.insert_event(e.u, e.v, e.t);
            touched.push(e.u);
            touched.push(e.v);
        }
        // Delete events that left the window.
        if w > 0 {
            let prev_range = spec.window(w - 1);
            let del_hi = (range.start - 1).min(prev_range.end);
            for e in log.slice_by_time(prev_range.start, del_hi) {
                let removed = graph.delete_event(e.u, e.v);
                debug_assert!(removed, "window {w}: deleting an event never inserted");
                touched.push(e.u);
                touched.push(e.v);
            }
        }
        drop(setup);

        // A broken warm-start chain is the streaming model's recovery
        // story: the window after a failure recomputes from a cold
        // uniform start.
        if w > 0 && !have_prev {
            tele.add("recovery.cold_restart", 1);
            tele.record(TraceEvent::marker(
                TraceKind::RecoveryColdRestart,
                w as u32,
                1,
                0,
            ));
        }
        let pr = PrConfig {
            fault: cfg.faults.fault_for(w).or(cfg.pr.fault),
            ..cfg.pr
        };
        let bridge = TelemetryKernelBridge::new(tele, 1);
        let obs = if tele.is_enabled() {
            Obs::new(&bridge, w as u32)
        } else {
            Obs::off()
        };

        // Recompute the analysis. A kernel error or panic poisons only
        // this window: the store itself is untouched by the kernels, so
        // the replay continues, but the warm-start chain is broken (the
        // workspace is discarded and the next window starts cold).
        let attempt = catch_unwind(AssertUnwindSafe(|| match cfg.incremental {
            IncrementalMode::Recompute => {
                streaming_pagerank_obs(&graph, Init::Uniform, &pr, sched, &mut ws, obs)
            }
            IncrementalMode::WarmRestart => {
                // Eq. 4-style warm start: shared vertices keep scaled
                // previous ranks, newcomers take the uniform share (a plain
                // masked restart leaves newcomers at 0, which converges
                // slowly for weakly-coupled new components).
                let init = if have_prev {
                    Init::Partial(&prev)
                } else {
                    Init::Uniform
                };
                streaming_pagerank_obs(&graph, init, &pr, sched, &mut ws, obs)
            }
            IncrementalMode::LocalPush => {
                if have_prev {
                    touched.sort_unstable();
                    touched.dedup();
                    // The push sweeps have no iteration structure a
                    // kernel observer could report; their wall time is
                    // attributed to the SpMV phase as a whole.
                    let _push = tele.phase(RunPhase::Spmv);
                    local_push_pagerank(&graph, &prev, &touched, &pr, &mut ws)
                } else {
                    streaming_pagerank_obs(&graph, Init::Uniform, &pr, sched, &mut ws, obs)
                }
            }
        }));
        let (stats, status) = match attempt {
            Ok(Ok(stats)) if stats.converged || pr.max_iters == 0 => (stats, WindowStatus::Ok),
            Ok(Ok(stats)) => (
                stats,
                WindowStatus::Failed {
                    diagnostic: format!("did not converge within {} iterations", pr.max_iters),
                },
            ),
            Ok(Err(e)) => (
                PrStats::empty(),
                WindowStatus::Failed {
                    diagnostic: e.to_string(),
                },
            ),
            Err(_) => {
                ws = PrWorkspace::default();
                (
                    PrStats::empty(),
                    WindowStatus::Failed {
                        diagnostic: "kernel panicked".to_string(),
                    },
                )
            }
        };
        let (kind, counter) = match &status {
            WindowStatus::Ok => (TraceKind::WindowOk, "windows.ok"),
            WindowStatus::Recovered { .. } => (TraceKind::WindowRecovered, "windows.recovered"),
            WindowStatus::Failed { .. } => (TraceKind::WindowFailed, "windows.failed"),
        };
        tele.add(counter, 1);
        tele.observe("window.iterations", stats.iterations as f64);
        tele.record(TraceEvent::marker(TraceKind::WindowStart, w as u32, 1, 0));
        tele.record(TraceEvent::marker(
            kind,
            w as u32,
            1,
            stats.iterations as u32,
        ));
        let sparse = if status.is_valid() {
            prev.copy_from_slice(ws.ranks());
            have_prev = true;
            SparseRanks::from_dense(ws.ranks())
        } else {
            have_prev = false;
            SparseRanks::from_dense(&[])
        };
        let fingerprint = sparse.fingerprint();
        windows.push(WindowOutput {
            window: w,
            stats,
            fingerprint,
            status,
            ranks: match cfg.retain {
                RetainMode::Full => Some(sparse),
                RetainMode::Summary => None,
            },
            attempts: 1,
        });
    }
    tele.set_gauge("memory.stream_bytes", graph.memory_bytes() as f64);
    RunOutput {
        windows,
        degraded: false, // recomputed by finalize_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_core::{run_offline, OfflineConfig};
    use tempopr_graph::Event;

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..500u32 {
            let u = (i * 11 + 1) % 26;
            let v = (i * 5 + 7) % 26;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 26).unwrap()
    }

    fn tight() -> StreamingConfig {
        StreamingConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    fn offline_tight() -> OfflineConfig {
        OfflineConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn streaming_matches_offline_overlapping_windows() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let s = run_streaming(&log, spec, &tight()).unwrap();
        let o = run_offline(&log, spec, &offline_tight()).unwrap();
        for (a, b) in s.windows.iter().zip(o.windows.iter()) {
            let d = a
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(b.ranks.as_ref().unwrap());
            assert!(d < 1e-8, "window {}: linf {d}", a.window);
            assert_eq!(a.stats.active_vertices, b.stats.active_vertices);
        }
    }

    #[test]
    fn streaming_matches_offline_disjoint_windows() {
        // sw > delta: windows do not overlap; gap events must be skipped.
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 90).unwrap();
        let s = run_streaming(&log, spec, &tight()).unwrap();
        let o = run_offline(&log, spec, &offline_tight()).unwrap();
        for (a, b) in s.windows.iter().zip(o.windows.iter()) {
            let d = a
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(b.ranks.as_ref().unwrap());
            assert!(d < 1e-8, "window {}: linf {d}", a.window);
        }
    }

    #[test]
    fn all_incremental_modes_agree_roughly() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let warm = run_streaming(&log, spec, &tight()).unwrap();
        let cold = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::Recompute,
                ..tight()
            },
        )
        .unwrap();
        let push = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::LocalPush,
                ..tight()
            },
        )
        .unwrap();
        for w in 0..spec.count {
            let a = warm.windows[w].ranks.as_ref().unwrap();
            let b = cold.windows[w].ranks.as_ref().unwrap();
            let c = push.windows[w].ranks.as_ref().unwrap();
            assert!(a.linf_distance(b) < 1e-8, "warm vs cold, window {w}");
            assert!(a.linf_distance(c) < 1e-4, "warm vs push, window {w}");
        }
    }

    #[test]
    fn warm_restart_saves_iterations() {
        // Hub-heavy temporal graph: consecutive windows are similar.
        let mut events = Vec::new();
        for i in 0..600u32 {
            let (u, v) = if i % 3 != 0 {
                (0, 1 + i % 29)
            } else {
                (1 + (i * 7) % 29, 1 + (i * 13) % 29)
            };
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        let log = EventLog::from_unsorted(events, 30).unwrap();
        let spec = WindowSpec::covering(&log, 200, 25).unwrap();
        let warm = run_streaming(&log, spec, &tight()).unwrap();
        let cold = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                incremental: IncrementalMode::Recompute,
                ..tight()
            },
        )
        .unwrap();
        assert!(
            warm.total_iterations() < cold.total_iterations(),
            "warm {} vs cold {}",
            warm.total_iterations(),
            cold.total_iterations()
        );
    }

    #[test]
    fn summary_retention_and_threads() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 120, 40).unwrap();
        let out = run_streaming(
            &log,
            spec,
            &StreamingConfig {
                retain: RetainMode::Summary,
                threads: 2,
                ..tight()
            },
        )
        .unwrap();
        assert!(out.windows.iter().all(|w| w.ranks.is_none()));
        assert_eq!(out.windows.len(), spec.count);
    }
}
