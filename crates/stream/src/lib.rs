//! # tempopr-stream
//!
//! The *streaming* execution-model baseline of the paper (§3.3.2): a
//! STINGER-like in-memory streaming graph ([`store::StreamingGraph`] —
//! per-vertex chains of fixed-size edge blocks with O(1) amortized
//! insert/delete), incremental PageRank (warm-restart and localized
//! Gauss–Seidel push, after Riedy 2016), and a sliding-window
//! [`driver::run_streaming`] that replays the window sequence as
//! insert/delete batches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod pagerank;
pub mod store;

pub use driver::{
    run_streaming, run_streaming_durable, run_streaming_traced, IncrementalMode, StreamingConfig,
};
pub use pagerank::{local_push_pagerank, streaming_pagerank, streaming_pagerank_obs};
pub use store::{StreamingGraph, BLOCK_SIZE};
