//! A STINGER-like streaming graph store (paper §3.3.2).
//!
//! STINGER [Riedy et al.] keeps each vertex's adjacency as a linked chain
//! of fixed-size *edge blocks* inside a shared arena, so inserts and
//! deletes are O(chain) with good locality inside a block, and memory is
//! recycled through a free list. This module reproduces that design:
//!
//! - one [`EdgeEntry`] per *distinct* neighbor, carrying a multiplicity
//!   `weight` (how many not-yet-expired events connect the pair — STINGER's
//!   incrementing edge weight) and the most recent event timestamp;
//! - insertion increments the weight if the neighbor is already present,
//!   otherwise fills a tombstone or free slot, appending a new block at the
//!   chain head when full;
//! - deletion decrements the weight, tombstoning the entry at zero and
//!   returning fully-empty blocks to the free list.
//!
//! The deliberate contrast with the postmortem temporal CSR: per-edge
//! pointer chasing instead of one contiguous scan, and graph maintenance
//! work on every sliding-window step.

/// Number of edge entries per block — STINGER's default block size.
pub const BLOCK_SIZE: usize = 16;

const NONE: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX;

/// A live adjacency record: a distinct neighbor with its event multiplicity
/// inside the current window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEntry {
    /// Neighbor vertex id (`u32::MAX` marks a tombstone).
    neighbor: u32,
    /// Number of unexpired events between the pair (0 for tombstones).
    weight: u32,
    /// Timestamp of the most recent contributing event.
    recent: i64,
}

const EMPTY_ENTRY: EdgeEntry = EdgeEntry {
    neighbor: TOMBSTONE,
    weight: 0,
    recent: i64::MIN,
};

/// A fixed-size block of edge entries, chained per vertex.
#[derive(Debug, Clone)]
struct EdgeBlock {
    entries: [EdgeEntry; BLOCK_SIZE],
    /// Next block in this vertex's chain (`NONE` terminates).
    next: u32,
    /// Live (non-tombstone) entries in this block.
    live: u32,
}

impl EdgeBlock {
    fn fresh(next: u32) -> Self {
        EdgeBlock {
            entries: [EMPTY_ENTRY; BLOCK_SIZE],
            next,
            live: 0,
        }
    }
}

/// The streaming graph: per-vertex edge-block chains in a shared arena.
///
/// Symmetric by construction (each event inserts both directions), matching
/// the paper's experimental setup; use two stores for a directed workload.
#[derive(Debug, Clone)]
pub struct StreamingGraph {
    heads: Vec<u32>,
    degrees: Vec<u32>,
    blocks: Vec<EdgeBlock>,
    free: Vec<u32>,
    num_edges: usize,
}

impl StreamingGraph {
    /// Creates an empty graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        StreamingGraph {
            heads: vec![NONE; num_vertices],
            degrees: vec![0; num_vertices],
            blocks: Vec::new(),
            free: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices in the universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.heads.len()
    }

    /// Number of live *directed* distinct-neighbor edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Distinct live neighbors of `v` (its degree in the current graph).
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.degrees[v as usize]
    }

    /// Number of allocated blocks (for memory accounting in experiments).
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Heap bytes held by the store: vertex heads/degrees, the block
    /// arena (tombstoned blocks still count — the arena never shrinks),
    /// and the free list. Reported as the streaming model's resident
    /// memory in the run report.
    pub fn memory_bytes(&self) -> usize {
        self.heads.len() * std::mem::size_of::<u32>()
            + self.degrees.len() * std::mem::size_of::<u32>()
            + self.blocks.len() * std::mem::size_of::<EdgeBlock>()
            + self.free.len() * std::mem::size_of::<u32>()
    }

    /// Inserts one event `(u, v, t)` symmetrically. Existing pairs gain
    /// multiplicity; new pairs gain an adjacency entry in both directions.
    pub fn insert_event(&mut self, u: u32, v: u32, t: i64) {
        self.insert_half(u, v, t);
        if u != v {
            self.insert_half(v, u, t);
        }
    }

    /// Removes one event's contribution symmetrically. The pair's entry
    /// disappears only when its multiplicity reaches zero.
    ///
    /// Returns `false` (and leaves the graph unchanged) if the pair has no
    /// live entry — the driver only deletes events it previously inserted,
    /// so a `false` here signals a caller bug rather than a data error.
    #[must_use]
    pub fn delete_event(&mut self, u: u32, v: u32) -> bool {
        let a = self.delete_half(u, v);
        let b = if u != v { self.delete_half(v, u) } else { a };
        a && b
    }

    fn insert_half(&mut self, src: u32, dst: u32, t: i64) {
        // Walk the chain looking for the neighbor, remembering the first
        // free slot in case it is absent.
        let mut b = self.heads[src as usize];
        let mut slot: Option<(u32, usize)> = None;
        while b != NONE {
            let block = &mut self.blocks[b as usize];
            for (i, e) in block.entries.iter_mut().enumerate() {
                if e.neighbor == dst && e.weight > 0 {
                    e.weight += 1;
                    e.recent = e.recent.max(t);
                    return;
                }
                if e.weight == 0 && slot.is_none() {
                    slot = Some((b, i));
                }
            }
            b = block.next;
        }
        // Not found: a fresh distinct neighbor.
        let (bi, i) = match slot {
            Some(s) => s,
            None => {
                let bi = self.alloc_block(self.heads[src as usize]);
                self.heads[src as usize] = bi;
                (bi, 0)
            }
        };
        let block = &mut self.blocks[bi as usize];
        block.entries[i] = EdgeEntry {
            neighbor: dst,
            weight: 1,
            recent: t,
        };
        block.live += 1;
        self.degrees[src as usize] += 1;
        self.num_edges += 1;
    }

    fn delete_half(&mut self, src: u32, dst: u32) -> bool {
        let mut prev = NONE;
        let mut b = self.heads[src as usize];
        while b != NONE {
            let next = self.blocks[b as usize].next;
            let block = &mut self.blocks[b as usize];
            for e in block.entries.iter_mut() {
                if e.neighbor == dst && e.weight > 0 {
                    e.weight -= 1;
                    if e.weight == 0 {
                        e.neighbor = TOMBSTONE;
                        block.live -= 1;
                        self.degrees[src as usize] -= 1;
                        self.num_edges -= 1;
                        if block.live == 0 {
                            self.unlink_block(src, prev, b);
                        }
                    }
                    return true;
                }
            }
            prev = b;
            b = next;
        }
        false
    }

    fn alloc_block(&mut self, next: u32) -> u32 {
        match self.free.pop() {
            Some(bi) => {
                self.blocks[bi as usize] = EdgeBlock::fresh(next);
                bi
            }
            None => {
                self.blocks.push(EdgeBlock::fresh(next));
                (self.blocks.len() - 1) as u32
            }
        }
    }

    fn unlink_block(&mut self, src: u32, prev: u32, b: u32) {
        let next = self.blocks[b as usize].next;
        if prev == NONE {
            self.heads[src as usize] = next;
        } else {
            self.blocks[prev as usize].next = next;
        }
        self.free.push(b);
    }

    /// Iterates over the live distinct neighbors of `v` with their
    /// multiplicities.
    pub fn neighbors(&self, v: u32) -> NeighborIter<'_> {
        NeighborIter {
            graph: self,
            block: self.heads[v as usize],
            idx: 0,
        }
    }

    /// Whether the pair `(u, v)` currently has a live edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).any(|e| e.0 == v)
    }

    /// The multiplicity of pair `(u, v)` (0 when absent).
    pub fn multiplicity(&self, u: u32, v: u32) -> u32 {
        self.neighbors(u).find(|e| e.0 == v).map_or(0, |e| e.1)
    }

    /// Checks internal invariants (tests / debugging): per-block live
    /// counters, degree counters, and edge totals all agree with the
    /// entries actually stored.
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for v in 0..self.heads.len() {
            let mut live = 0u32;
            let mut b = self.heads[v];
            while b != NONE {
                let block = &self.blocks[b as usize];
                let block_live = block.entries.iter().filter(|e| e.weight > 0).count() as u32;
                assert_eq!(block.live, block_live, "block live count, vertex {v}");
                assert!(block.live > 0, "empty block left in chain of {v}");
                live += block_live;
                b = block.next;
            }
            assert_eq!(self.degrees[v], live, "degree counter of {v}");
            total += live as usize;
        }
        assert_eq!(self.num_edges, total, "edge total");
    }
}

/// Iterator over `(neighbor, multiplicity, recent_time)` of one vertex.
pub struct NeighborIter<'a> {
    graph: &'a StreamingGraph,
    block: u32,
    idx: usize,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = (u32, u32, i64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.block != NONE {
            let b = &self.graph.blocks[self.block as usize];
            while self.idx < BLOCK_SIZE {
                let e = &b.entries[self.idx];
                self.idx += 1;
                if e.weight > 0 {
                    return Some((e.neighbor, e.weight, e.recent));
                }
            }
            self.block = b.next;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_creates_symmetric_edges() {
        let mut g = StreamingGraph::new(4);
        g.insert_event(0, 1, 10);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.num_edges(), 2);
        g.check_invariants();
    }

    #[test]
    fn duplicate_event_increments_multiplicity_not_degree() {
        let mut g = StreamingGraph::new(4);
        g.insert_event(0, 1, 10);
        g.insert_event(0, 1, 20);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.multiplicity(0, 1), 2);
        assert_eq!(g.num_edges(), 2);
        g.check_invariants();
    }

    #[test]
    fn delete_removes_at_zero_multiplicity() {
        let mut g = StreamingGraph::new(4);
        g.insert_event(0, 1, 10);
        g.insert_event(0, 1, 20);
        assert!(g.delete_event(0, 1));
        assert!(g.has_edge(0, 1), "multiplicity 1 remains");
        assert!(g.delete_event(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.num_edges(), 0);
        g.check_invariants();
    }

    #[test]
    fn deleting_missing_edge_returns_false() {
        let mut g = StreamingGraph::new(2);
        assert!(!g.delete_event(0, 1));
        g.check_invariants();
        g.insert_event(0, 1, 5);
        assert!(g.delete_event(0, 1));
        assert!(!g.delete_event(0, 1), "second delete finds nothing");
        g.check_invariants();
    }

    #[test]
    fn self_loop_stored_once() {
        let mut g = StreamingGraph::new(2);
        g.insert_event(0, 0, 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.delete_event(0, 0));
        assert_eq!(g.num_edges(), 0);
        g.check_invariants();
    }

    #[test]
    fn chains_grow_past_one_block() {
        let mut g = StreamingGraph::new(64);
        for v in 1..40u32 {
            g.insert_event(0, v, v as i64);
        }
        assert_eq!(g.degree(0), 39);
        let mut seen: Vec<u32> = g.neighbors(0).map(|e| e.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..40).collect::<Vec<_>>());
        assert!(g.allocated_blocks() >= 3);
        g.check_invariants();
    }

    #[test]
    fn empty_blocks_are_recycled() {
        let mut g = StreamingGraph::new(64);
        for v in 1..40u32 {
            g.insert_event(0, v, 0);
        }
        let allocated = g.allocated_blocks();
        for v in 1..40u32 {
            assert!(g.delete_event(0, v));
        }
        assert_eq!(g.degree(0), 0);
        g.check_invariants();
        // Re-inserting must not grow the arena: blocks come from the free
        // list.
        for v in 1..40u32 {
            g.insert_event(0, v, 1);
        }
        assert_eq!(g.allocated_blocks(), allocated);
        g.check_invariants();
    }

    #[test]
    fn tombstone_slots_are_reused_in_place() {
        let mut g = StreamingGraph::new(8);
        for v in 1..5u32 {
            g.insert_event(0, v, 0);
        }
        assert!(g.delete_event(0, 2));
        let before = g.allocated_blocks();
        g.insert_event(0, 7, 1);
        assert_eq!(g.allocated_blocks(), before, "tombstone slot reused");
        assert!(g.has_edge(0, 7));
        g.check_invariants();
    }

    #[test]
    fn recent_timestamp_tracks_maximum() {
        let mut g = StreamingGraph::new(2);
        g.insert_event(0, 1, 10);
        g.insert_event(0, 1, 5);
        let e = g.neighbors(0).next().unwrap();
        assert_eq!(e.2, 10);
    }

    #[test]
    fn matches_naive_model_under_random_ops() {
        use std::collections::HashMap;
        // Deterministic pseudo-random op sequence checked against a
        // HashMap multiset model.
        let n = 12u32;
        let mut g = StreamingGraph::new(n as usize);
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut live: Vec<(u32, u32)> = Vec::new();
        for step in 0..2000 {
            let u = rnd() % n;
            let v = rnd() % n;
            let insert = live.is_empty() || rnd() % 3 != 0;
            if insert {
                g.insert_event(u, v, step as i64);
                *model.entry(ord(u, v)).or_insert(0) += 1;
                live.push(ord(u, v));
            } else {
                let i = (rnd() as usize) % live.len();
                let (a, b) = live.swap_remove(i);
                assert!(g.delete_event(a, b));
                let m = model.get_mut(&(a, b)).unwrap();
                *m -= 1;
                if *m == 0 {
                    model.remove(&(a, b));
                }
            }
        }
        g.check_invariants();
        for u in 0..n {
            for v in 0..n {
                let expect = model.get(&ord(u, v)).copied().unwrap_or(0);
                assert_eq!(g.multiplicity(u, v), expect, "pair ({u},{v})");
            }
        }
        fn ord(u: u32, v: u32) -> (u32, u32) {
            (u.min(v), u.max(v))
        }
    }
}
