//! The run report: a point-in-time snapshot of the registry and trace,
//! exportable as JSON (machine) or a summary table (human).

use crate::registry::{Histogram, Phase, PhaseTotal};
use crate::trace::RunTrace;

/// Snapshot of one run's telemetry: phase timings, metrics, and the trace.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-phase wall-time totals, in [`Phase::ALL`] order.
    pub phases: Vec<(&'static str, PhaseTotal)>,
    /// Counters in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges in name order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histograms in name order.
    pub histograms: Vec<(&'static str, Histogram)>,
    /// The canonical-ordered event trace.
    pub trace: RunTrace,
}

/// Formats an f64 for JSON: finite values print via Rust's shortest
/// round-trip `Display`; non-finite values become strings (JSON has no
/// NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Display of a finite f64 is a numeric token JSON parsers accept
        // (shortest round-trip, no '+', no exponent-only forms).
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

impl RunReport {
    /// Full JSON export, wall-clock fields included. Schema-stable:
    /// top-level `schema`, `phases`, `counters`, `gauges`, `histograms`,
    /// `trace` keys; see DESIGN.md §6 for the field-by-field contract.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.trace.len() * 128);
        out.push_str("{\n  \"schema\": \"tempopr.metrics.v1\",\n  \"phases\": {");
        for (i, (name, t)) in self.phases.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    \"{name}\": {{\"ns\": {}, \"calls\": {}}}",
                t.ns, t.calls
            ));
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {}", json_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"bucket_counts\": [{}]}}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                counts.join(", ")
            ));
        }
        out.push_str("\n  },\n  \"trace\": [");
        for (i, e) in self.trace.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"window\": {}, \"attempt\": {}, \"iteration\": {}, \
                 \"kind\": \"{}\", \"residual\": \"{:.12e}\", \"mass\": \"{:.12e}\", \
                 \"wall_ns\": {}}}",
                e.window,
                e.attempt,
                e.iteration,
                e.kind.name(),
                e.residual,
                e.mass,
                e.wall_ns
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable phase/counter summary table for the CLI tools.
    pub fn summary_table(&self) -> String {
        let total_ns: u64 = self.phases.iter().map(|(_, t)| t.ns).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<18} {:>12} {:>8} {:>7}\n",
            "phase", "time_ms", "calls", "share"
        ));
        for (name, t) in &self.phases {
            let share = if total_ns == 0 {
                0.0
            } else {
                100.0 * t.ns as f64 / total_ns as f64
            };
            out.push_str(&format!(
                "  {:<18} {:>12.3} {:>8} {:>6.1}%\n",
                name,
                t.ns as f64 / 1e6,
                t.calls,
                share
            ));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("  {:<18} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<18} {v:>12}\n"));
            }
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("  {name:<18} {v:>12.0}\n"));
        }
        out
    }

    /// Total wall time accounted to phases, in nanoseconds.
    pub fn phase_ns_total(&self) -> u64 {
        self.phases.iter().map(|(_, t)| t.ns).sum()
    }

    /// Wall time of one phase, in nanoseconds.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|(n, _)| *n == phase.name())
            .map(|(_, t)| t.ns)
            .unwrap_or(0)
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceKind};
    use crate::Telemetry;

    #[test]
    fn json_has_all_sections() {
        let t = Telemetry::enabled();
        t.add("windows.total", 3);
        t.set_gauge("mem.bytes", 1024.0);
        t.observe("iters", 12.0);
        if let Some(r) = t.registry() {
            r.add_phase_ns(Phase::Spmv, 1_000_000);
        }
        t.record(TraceEvent::marker(TraceKind::WindowOk, 0, 1, 12));
        let report = t.report();
        let js = report.to_json();
        for key in [
            "\"schema\": \"tempopr.metrics.v1\"",
            "\"phases\"",
            "\"spmv\"",
            "\"counters\"",
            "\"windows.total\": 3",
            "\"gauges\"",
            "\"mem.bytes\": 1024",
            "\"histograms\"",
            "\"bucket_counts\"",
            "\"trace\"",
            "\"window_ok\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
        assert_eq!(report.counter("windows.total"), 3);
        assert_eq!(report.gauge("mem.bytes"), Some(1024.0));
        assert!(report.phase_ns(Phase::Spmv) >= 1_000_000);
    }

    #[test]
    fn summary_table_lists_phases() {
        let t = Telemetry::enabled();
        if let Some(r) = t.registry() {
            r.add_phase_ns(Phase::Build, 2_000_000);
        }
        let table = t.report().summary_table();
        assert!(table.contains("build"));
        assert!(table.contains("convergence_check"));
    }

    #[test]
    fn non_finite_gauges_become_strings() {
        let t = Telemetry::enabled();
        t.set_gauge("bad", f64::NAN);
        assert!(t.report().to_json().contains("\"bad\": \"NaN\""));
    }
}
