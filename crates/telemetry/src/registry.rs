//! Metric primitives: named counters, gauges, and fixed-bucket histograms,
//! plus per-phase wall-time accumulators.
//!
//! Names are `&'static str` dot-paths (`"recovery.dense_oracle"`,
//! `"mem.multiwindow_set_bytes"`); the registry stores them in `BTreeMap`s
//! so every export iterates in a stable order. Counters and histogram
//! counts are deterministic for a deterministic run; phase timers and
//! anything under the `time.` prefix are wall-clock and are excluded from
//! the deterministic projection (see [`crate::trace`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Execution phases timed by the RAII [`crate::PhaseGuard`]s.
///
/// The variants mirror the paper's cost breakdown: graph/partition
/// construction, per-window setup (degree + activity pass, initialization),
/// the SpMV/SpMM/push inner loop, the convergence + health check, and the
/// recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Temporal-CSR / multi-window / per-window CSR construction.
    Build,
    /// Per-window degree/activity pass and rank initialization.
    WindowSetup,
    /// The pull-based rank propagation inner loop (SpMV, SpMM, push).
    Spmv,
    /// Per-iteration convergence reduction, numeric guard, and scatter.
    ConvergenceCheck,
    /// Recovery ladder work: full-init retries, dense oracle, cold restarts.
    Recovery,
    /// Time the pipelined executor spent waiting for an overlapped
    /// window-setup prefetch that had not finished when the kernel did.
    PipelineStall,
    /// Durable checkpoint appends: record encoding, `write_all`, fsync.
    CheckpointWrite,
    /// Resume-time manifest scan: header verification plus the
    /// longest-valid-prefix record walk.
    ResumeScan,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 8] = [
        Phase::Build,
        Phase::WindowSetup,
        Phase::Spmv,
        Phase::ConvergenceCheck,
        Phase::Recovery,
        Phase::PipelineStall,
        Phase::CheckpointWrite,
        Phase::ResumeScan,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::WindowSetup => "window_setup",
            Phase::Spmv => "spmv",
            Phase::ConvergenceCheck => "convergence_check",
            Phase::Recovery => "recovery",
            Phase::PipelineStall => "pipeline_stall",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::ResumeScan => "resume_scan",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Build => 0,
            Phase::WindowSetup => 1,
            Phase::Spmv => 2,
            Phase::ConvergenceCheck => 3,
            Phase::Recovery => 4,
            Phase::PipelineStall => 5,
            Phase::CheckpointWrite => 6,
            Phase::ResumeScan => 7,
        }
    }
}

/// Upper bucket bounds for histograms: powers of two up to 2^30, plus a
/// catch-all overflow bucket. Fixed at compile time so two runs always
/// agree on the bucket layout.
pub const BUCKET_BOUNDS: [f64; 16] = [
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    8388608.0,
    134217728.0,
    1073741824.0,
];

/// A fixed-bucket histogram over [`BUCKET_BOUNDS`].
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `counts[i]` counts samples `<= BUCKET_BOUNDS[i]` (first matching
    /// bucket); the final slot counts overflows.
    pub counts: [u64; BUCKET_BOUNDS.len() + 1],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample seen (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest sample seen (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        let slot = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Wall-time totals for one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotal {
    /// Accumulated nanoseconds across all guards/spans for this phase.
    pub ns: u64,
    /// Number of spans that contributed.
    pub calls: u64,
}

/// Named counters, gauges, and histograms plus per-phase time accumulators.
///
/// All methods take `&self`; maps sit behind mutexes (cold paths: per
/// window or per recovery event, never per iteration) and the phase
/// accumulators are atomics so kernel workers can report concurrently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    phase_ns: [AtomicU64; Phase::COUNT],
    phase_calls: [AtomicU64; Phase::COUNT],
}

/// Locks a mutex, recovering the data from a poisoned lock rather than
/// panicking (telemetry must never take a run down).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        *lock(&self.counters).entry(name).or_default() += delta;
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        lock(&self.gauges).insert(name, value);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &'static str, value: f64) {
        lock(&self.histograms)
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Adds `ns` nanoseconds (one span) to a phase's wall-time total.
    pub fn add_phase_ns(&self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()].fetch_add(ns, Ordering::Relaxed);
        self.phase_calls[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lock(&self.gauges).get(name).copied()
    }

    /// Wall-time total for a phase.
    pub fn phase_total(&self, phase: Phase) -> PhaseTotal {
        PhaseTotal {
            ns: self.phase_ns[phase.index()].load(Ordering::Relaxed),
            calls: self.phase_calls[phase.index()].load(Ordering::Relaxed),
        }
    }

    /// Snapshot of all counters in name order.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        lock(&self.counters).iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of all gauges in name order.
    pub fn gauges_snapshot(&self) -> Vec<(&'static str, f64)> {
        lock(&self.gauges).iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of all histograms in name order.
    pub fn histograms_snapshot(&self) -> Vec<(&'static str, Histogram)> {
        lock(&self.histograms)
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.add("a.b", 2);
        r.add("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 7.5);
        assert_eq!(r.gauge("g"), Some(7.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = MetricsRegistry::new();
        for v in [0.5, 1.0, 3.0, 1e12] {
            r.observe("h", v);
        }
        let snap = r.histograms_snapshot();
        assert_eq!(snap.len(), 1);
        let h = &snap[0].1;
        assert_eq!(h.count, 4);
        assert_eq!(h.counts[0], 2); // <= 1.0
        assert_eq!(h.counts[2], 1); // <= 4.0
        assert_eq!(h.counts[BUCKET_BOUNDS.len()], 1); // overflow
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e12);
    }

    #[test]
    fn phase_totals_accumulate() {
        let r = MetricsRegistry::new();
        r.add_phase_ns(Phase::Spmv, 10);
        r.add_phase_ns(Phase::Spmv, 5);
        let t = r.phase_total(Phase::Spmv);
        assert_eq!((t.ns, t.calls), (15, 2));
        assert_eq!(r.phase_total(Phase::Build).ns, 0);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "build",
                "window_setup",
                "spmv",
                "convergence_check",
                "recovery",
                "pipeline_stall",
                "checkpoint_write",
                "resume_scan"
            ]
        );
    }
}
