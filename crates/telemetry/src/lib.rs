//! Run-level observability for the temporal-PageRank engine: a
//! zero-external-dependency metrics layer ([`MetricsRegistry`]), RAII
//! phase timers ([`PhaseGuard`]), and a structured convergence trace
//! ([`RunTrace`]) with wall-clock fields segregated from deterministic
//! ones.
//!
//! The entry point is the [`Telemetry`] handle. [`Telemetry::noop()`] —
//! the default everywhere — holds no allocation at all: every hook
//! branches on a `None` inner pointer and returns, so a disabled run pays
//! one predictable branch per observation site (the `telemetry_overhead`
//! micro bench enforces < 1% cost on the SpMV hot loop). Observation is
//! strictly read-only: enabling telemetry must never change a single bit
//! of the computed ranks, a contract locked in by
//! `tests/telemetry_observation.rs`.
//!
//! ```
//! use tempopr_telemetry::{Phase, Telemetry, TraceEvent, TraceKind};
//!
//! let tele = Telemetry::enabled();
//! {
//!     let _t = tele.phase(Phase::Build);
//!     // ... build the graph ...
//! }
//! tele.add("windows.total", 1);
//! tele.record(TraceEvent::iteration(0, 1, 1, 1e-3, 1.0));
//! let report = tele.report();
//! assert_eq!(report.counter("windows.total"), 1);
//! assert!(report.to_json().contains("\"schema\": \"tempopr.metrics.v1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod registry;
pub mod report;
pub mod trace;

pub use registry::{Histogram, MetricsRegistry, Phase, PhaseTotal, BUCKET_BOUNDS};
pub use report::RunReport;
pub use trace::{RunTrace, TraceEvent, TraceKind};

use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    registry: MetricsRegistry,
    trace: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

/// Cheap, cloneable handle to a run's telemetry sink.
///
/// A handle is either *enabled* (shared `Arc` to a registry + trace) or a
/// *noop* (`None`; the default). All recording methods are `&self` and
/// thread-safe; the engine, kernels, and drivers share one handle per run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// RAII span: adds its elapsed wall time to one [`Phase`] on drop.
#[derive(Debug)]
#[must_use = "a phase guard times the span it is alive for"]
pub struct PhaseGuard<'a> {
    live: Option<(&'a Inner, Phase, Instant)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((inner, phase, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.registry.add_phase_ns(phase, ns);
        }
    }
}

impl Telemetry {
    /// The disabled handle: every observation is a branch-and-return.
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh enabled sink.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                trace: Mutex::new(Vec::new()),
                epoch: Instant::now(),
            })),
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Starts an RAII timer attributing its span to `phase`.
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            live: self.inner.as_deref().map(|i| (i, phase, Instant::now())),
        }
    }

    /// Adds `ns` externally-measured nanoseconds to a phase (used by the
    /// kernels, which time sub-iteration sections themselves).
    pub fn add_phase_ns(&self, phase: Phase, ns: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.registry.add_phase_ns(phase, ns);
        }
    }

    /// Adds `delta` to a named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.registry.add(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.registry.set_gauge(name, value);
        }
    }

    /// Records one histogram sample.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.registry.observe(name, value);
        }
    }

    /// Appends a trace event, stamping its `wall_ns` with the time since
    /// this handle was created.
    pub fn record(&self, mut event: TraceEvent) {
        if let Some(i) = self.inner.as_deref() {
            event.wall_ns = u64::try_from(i.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            i.trace
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(event);
        }
    }

    /// Snapshot of the trace in canonical order (empty for noop handles).
    pub fn trace(&self) -> RunTrace {
        match self.inner.as_deref() {
            Some(i) => RunTrace::from_events(
                i.trace
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
            None => RunTrace::default(),
        }
    }

    /// Full snapshot: phases, counters, gauges, histograms, and the
    /// canonical-ordered trace. A noop handle yields an empty report.
    pub fn report(&self) -> RunReport {
        match self.inner.as_deref() {
            Some(i) => RunReport {
                phases: Phase::ALL
                    .iter()
                    .map(|&p| (p.name(), i.registry.phase_total(p)))
                    .collect(),
                counters: i.registry.counters_snapshot(),
                gauges: i.registry.gauges_snapshot(),
                histograms: i.registry.histograms_snapshot(),
                trace: self.trace(),
            },
            None => RunReport {
                phases: Phase::ALL
                    .iter()
                    .map(|&p| (p.name(), PhaseTotal::default()))
                    .collect(),
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
                trace: RunTrace::default(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let t = Telemetry::noop();
        assert!(!t.is_enabled());
        t.add("c", 1);
        t.set_gauge("g", 1.0);
        t.observe("h", 1.0);
        t.record(TraceEvent::marker(TraceKind::WindowOk, 0, 1, 0));
        {
            let _g = t.phase(Phase::Build);
        }
        let r = t.report();
        assert!(r.counters.is_empty());
        assert!(r.trace.is_empty());
        assert_eq!(r.phase_ns_total(), 0);
    }

    #[test]
    fn default_is_noop() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn phase_guard_accumulates_on_drop() {
        let t = Telemetry::enabled();
        {
            let _g = t.phase(Phase::Spmv);
            std::hint::black_box(0u64);
        }
        let total = t.registry().unwrap().phase_total(Phase::Spmv);
        assert_eq!(total.calls, 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.add("shared", 2);
        t.add("shared", 3);
        assert_eq!(t.report().counter("shared"), 5);
    }

    #[test]
    fn record_stamps_wall_time_monotonically() {
        let t = Telemetry::enabled();
        t.record(TraceEvent::iteration(0, 1, 1, 0.1, 1.0));
        t.record(TraceEvent::iteration(0, 1, 2, 0.01, 1.0));
        let tr = t.trace();
        assert_eq!(tr.len(), 2);
        assert!(tr.events[0].wall_ns <= tr.events[1].wall_ns);
    }
}
