//! The structured run trace: an ordered event log of per-window,
//! per-attempt, per-iteration records.
//!
//! # Determinism contract
//!
//! Every field of a [`TraceEvent`] except `wall_ns` is a pure function of
//! the input log, window spec, and configuration — two runs of the same
//! deterministic workload must produce the same multiset of events.
//! Events are *recorded* in wall-clock arrival order (which varies under
//! parallel scheduling), so the canonical view sorts by
//! `(window, attempt, iteration, kind)` and the deterministic JSON
//! projection drops `wall_ns`. Residual/mass floats are themselves
//! bit-deterministic (the kernels reduce in a fixed order) and are
//! formatted with 12 fractional digits of scientific notation.

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A window's computation began (attempt 1 only).
    WindowStart,
    /// Per-window setup finished; `iteration` is 0.
    Setup,
    /// One power/push iteration: `residual` is the L1 step difference,
    /// `mass` the post-iteration probability mass.
    Iteration,
    /// The numeric guard renormalized the iterate in place.
    GuardRenormalize,
    /// The numeric guard reset the iterate to uniform.
    GuardRestart,
    /// The recovery ladder launched a full-init retry (a new attempt).
    RecoveryFullInitRetry,
    /// The recovery ladder fell back to the dense Eq. 2 oracle.
    RecoveryDenseOracle,
    /// A streaming window cold-restarted after a failed predecessor.
    RecoveryColdRestart,
    /// Terminal: the window converged cleanly; `iteration` is the final
    /// attempt's iteration count.
    WindowOk,
    /// Terminal: the window was recovered by the ladder.
    WindowRecovered,
    /// Terminal: every recovery rung failed.
    WindowFailed,
}

impl TraceKind {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::WindowStart => "window_start",
            TraceKind::Setup => "setup",
            TraceKind::Iteration => "iteration",
            TraceKind::GuardRenormalize => "guard_renormalize",
            TraceKind::GuardRestart => "guard_restart",
            TraceKind::RecoveryFullInitRetry => "recovery_full_init_retry",
            TraceKind::RecoveryDenseOracle => "recovery_dense_oracle",
            TraceKind::RecoveryColdRestart => "recovery_cold_restart",
            TraceKind::WindowOk => "window_ok",
            TraceKind::WindowRecovered => "window_recovered",
            TraceKind::WindowFailed => "window_failed",
        }
    }

    /// Sort rank for events sharing `(window, attempt, iteration)`:
    /// start/setup first, the iteration itself, then guard interventions
    /// it triggered, then recovery escalations, then terminal statuses.
    fn rank(self) -> u8 {
        match self {
            TraceKind::WindowStart => 0,
            TraceKind::RecoveryColdRestart => 1,
            TraceKind::Setup => 2,
            TraceKind::Iteration => 3,
            TraceKind::GuardRenormalize => 4,
            TraceKind::GuardRestart => 5,
            TraceKind::RecoveryFullInitRetry => 6,
            TraceKind::RecoveryDenseOracle => 7,
            TraceKind::WindowOk => 8,
            TraceKind::WindowRecovered => 9,
            TraceKind::WindowFailed => 10,
        }
    }
}

/// One record in the run trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global window id.
    pub window: u32,
    /// Recovery attempt this event belongs to (1 = the configured run,
    /// 2 = full-init retry, 3 = dense oracle).
    pub attempt: u16,
    /// Iteration number within the attempt (0 for setup/terminal events).
    pub iteration: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// L1 step difference for `Iteration` events; 0 otherwise.
    pub residual: f64,
    /// Post-iteration probability mass for `Iteration` events; 0 otherwise.
    pub mass: f64,
    /// Wall-clock nanoseconds since the telemetry handle was created.
    /// **Not** part of the deterministic projection.
    pub wall_ns: u64,
}

impl TraceEvent {
    /// An event with zeroed numeric payload (setup/terminal/guard kinds).
    pub fn marker(kind: TraceKind, window: u32, attempt: u16, iteration: u32) -> Self {
        TraceEvent {
            window,
            attempt,
            iteration,
            kind,
            residual: 0.0,
            mass: 0.0,
            wall_ns: 0,
        }
    }

    /// An `Iteration` event carrying the convergence measurements.
    pub fn iteration(window: u32, attempt: u16, iteration: u32, residual: f64, mass: f64) -> Self {
        TraceEvent {
            window,
            attempt,
            iteration,
            kind: TraceKind::Iteration,
            residual,
            mass,
            wall_ns: 0,
        }
    }

    fn sort_key(&self) -> (u32, u16, u32, u8) {
        (self.window, self.attempt, self.iteration, self.kind.rank())
    }
}

/// The ordered event log of one run.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Events in canonical `(window, attempt, iteration, kind)` order.
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Builds a trace from events in arbitrary (arrival) order.
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(TraceEvent::sort_key);
        RunTrace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The deterministic projection: a JSON document of the sorted events
    /// with every wall-clock field removed. Byte-identical across repeated
    /// runs of the same deterministic workload — this is what the golden
    /// trace test snapshots.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\n  \"schema\": \"tempopr.trace.v1\",\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"window\": {}, \"attempt\": {}, \"iteration\": {}, \
                 \"kind\": \"{}\", \"residual\": \"{:.12e}\", \"mass\": \"{:.12e}\"}}",
                e.window,
                e.attempt,
                e.iteration,
                e.kind.name(),
                e.residual,
                e.mass
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// CSV export of the sorted events, wall-clock column included (it is
    /// the *last* column so deterministic diffs can cut it off).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,attempt,iteration,kind,residual,mass,wall_ns\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{:.12e},{:.12e},{}\n",
                e.window,
                e.attempt,
                e.iteration,
                e.kind.name(),
                e.residual,
                e.mass,
                e.wall_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(w: u32, a: u16, i: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent::marker(kind, w, a, i)
    }

    #[test]
    fn canonical_order_is_window_attempt_iteration_kind() {
        let shuffled = vec![
            ev(1, 1, 0, TraceKind::WindowOk),
            ev(0, 2, 1, TraceKind::Iteration),
            ev(0, 1, 1, TraceKind::GuardRestart),
            ev(0, 1, 1, TraceKind::Iteration),
            ev(0, 1, 0, TraceKind::WindowStart),
        ];
        let t = RunTrace::from_events(shuffled);
        let kinds: Vec<_> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::WindowStart,
                TraceKind::Iteration,
                TraceKind::GuardRestart,
                TraceKind::Iteration,
                TraceKind::WindowOk,
            ]
        );
    }

    #[test]
    fn deterministic_json_excludes_wall_time() {
        let mut e = TraceEvent::iteration(0, 1, 1, 1e-3, 1.0);
        e.wall_ns = 123_456;
        let a = RunTrace::from_events(vec![e]).deterministic_json();
        e.wall_ns = 999;
        let b = RunTrace::from_events(vec![e]).deterministic_json();
        assert_eq!(a, b);
        assert!(a.contains("\"residual\": \"1.000000000000e-3\""));
        assert!(!a.contains("wall"));
    }

    #[test]
    fn csv_has_wall_ns_last() {
        let mut e = TraceEvent::iteration(2, 1, 3, 0.5, 1.0);
        e.wall_ns = 7;
        let csv = RunTrace::from_events(vec![e]).to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("window,attempt,iteration,kind,residual,mass,wall_ns")
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("2,1,3,iteration,"));
        assert!(row.ends_with(",7"));
    }
}
