//! Figure 6: full vs partial initialization (SpMV, application-level), on
//! the two datasets the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem};
use tempopr_core::{InitMode, KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    for dataset in [Dataset::StackOverflow, Dataset::WikiTalk] {
        let (log, spec) = bench_workload(dataset, 64);
        let mut g = c.benchmark_group(format!("fig6_partial_init/{}", dataset.name()));
        for (label, init_mode) in [
            ("full_init", InitMode::Full),
            ("partial_init", InitMode::Partial),
            ("warm_init", InitMode::Warm),
        ] {
            g.bench_function(label, |b| {
                b.iter(|| {
                    let cfg = PostmortemConfig {
                        kernel: KernelKind::SpMV,
                        mode: ParallelMode::ApplicationLevel,
                        init_mode,
                        ..Default::default()
                    };
                    std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
                })
            });
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
