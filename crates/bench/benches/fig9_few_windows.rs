//! Figure 9: the sweep of Fig. 7 in the few-windows regime (6 windows),
//! where window-level parallelism starves and application-level wins.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem};
use tempopr_core::{KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::Dataset;
use tempopr_kernel::{Partitioner, Scheduler};

fn bench(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::WikiTalk, 6);
    let mut g = c.benchmark_group("fig9_few_windows");
    for mode in [
        ParallelMode::Nested,
        ParallelMode::ApplicationLevel,
        ParallelMode::WindowLevel,
    ] {
        for kernel in [KernelKind::SpMM { lanes: 16 }, KernelKind::SpMV] {
            let kname = match kernel {
                KernelKind::SpMV => "spmv",
                KernelKind::SpMM { .. } => "spmm",
                KernelKind::PushBlocking => "block",
            };
            for use_window_index in [true, false] {
                let suffix = if use_window_index { "" } else { "/noindex" };
                g.bench_function(format!("{mode:?}/{kname}{suffix}"), |b| {
                    b.iter(|| {
                        let cfg = PostmortemConfig {
                            mode,
                            kernel,
                            scheduler: Scheduler::new(Partitioner::Auto, 1),
                            num_multiwindows: 3,
                            use_window_index,
                            ..Default::default()
                        };
                        std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
                    })
                });
            }
        }
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
