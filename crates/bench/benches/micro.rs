//! Micro-benchmarks of the data structures underlying the experiments:
//! temporal-CSR construction and traversal, static CSR rebuilds (the
//! offline model's inner loop), and streaming-store update throughput (the
//! streaming model's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{BENCH_SCALE, BENCH_SEED};
use tempopr_datagen::Dataset;
use tempopr_graph::{Csr, TemporalCsr, TimeRange};
use tempopr_stream::StreamingGraph;

fn bench(c: &mut Criterion) {
    let log = Dataset::WikiTalk.spec().generate(BENCH_SCALE, BENCH_SEED);
    let span = log.last_time() - log.first_time();
    let window = TimeRange::new(log.first_time() + span / 4, log.first_time() + span / 2);

    let mut g = c.benchmark_group("micro");

    g.bench_function("tcsr_build", |b| {
        b.iter(|| std::hint::black_box(TemporalCsr::from_log(&log, true).num_entries()))
    });

    let tcsr = TemporalCsr::from_log(&log, true);
    g.bench_function("tcsr_window_degree_pass", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..tcsr.num_vertices() as u32 {
                total += tcsr.active_degree(v, window);
            }
            std::hint::black_box(total)
        })
    });

    g.bench_function("csr_rebuild_per_window", |b| {
        let events = log.slice_by_time(window.start, window.end);
        b.iter(|| {
            std::hint::black_box(Csr::from_events(log.num_vertices(), events, true).num_edges())
        })
    });

    g.bench_function("streaming_insert_delete_cycle", |b| {
        b.iter(|| {
            let mut sg = StreamingGraph::new(log.num_vertices());
            for e in log.slice_by_time(window.start, window.end) {
                sg.insert_event(e.u, e.v, e.t);
            }
            for e in log.slice_by_time(window.start, window.end) {
                sg.delete_event(e.u, e.v);
            }
            std::hint::black_box(sg.num_edges())
        })
    });

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
