//! Micro-benchmarks of the data structures underlying the experiments:
//! temporal-CSR construction and traversal, static CSR rebuilds (the
//! offline model's inner loop), and streaming-store update throughput (the
//! streaming model's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{BENCH_SCALE, BENCH_SEED};
use tempopr_core::TelemetryKernelBridge;
use tempopr_datagen::Dataset;
use tempopr_graph::{Csr, TemporalCsr, TimeRange, WindowIndex};
use tempopr_kernel::{
    pagerank_batch, pagerank_window, pagerank_window_indexed, pagerank_window_obs, Balance,
    GuardConfig, Init, Obs, Partitioner, PrConfig, PrWorkspace, Scheduler, SimdPolicy,
    SpmmWorkspace,
};
use tempopr_stream::StreamingGraph;
use tempopr_telemetry::Telemetry;

fn bench(c: &mut Criterion) {
    let log = Dataset::WikiTalk.spec().generate(BENCH_SCALE, BENCH_SEED);
    let span = log.last_time() - log.first_time();
    let window = TimeRange::new(log.first_time() + span / 4, log.first_time() + span / 2);

    let mut g = c.benchmark_group("micro");

    g.bench_function("tcsr_build", |b| {
        b.iter(|| std::hint::black_box(TemporalCsr::from_log(&log, true).num_entries()))
    });

    let tcsr = TemporalCsr::from_log(&log, true);
    g.bench_function("tcsr_window_degree_pass", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..tcsr.num_vertices() as u32 {
                total += tcsr.active_degree(v, window);
            }
            std::hint::black_box(total)
        })
    });

    // --- WindowIndex: setup cost vs part size ---------------------------
    // A 16-window uniform grid over the log's span; the benched window is
    // one of them. The unindexed per-window degree/activity phase scans
    // every stored entry of the part, so it shrinks when the part does; the
    // indexed setup copies the window's active list and is invariant to how
    // many entries the part holds (the acceptance check for the index).
    let sw = (span / 16).max(1);
    let grid: Vec<TimeRange> = (0..16)
        .map(|i| {
            let s = log.first_time() + i * sw;
            TimeRange::new(s, s + 2 * sw)
        })
        .collect();
    let j = 6usize;
    let bench_window = grid[j];
    g.bench_function("window_index_build_16_windows", |b| {
        b.iter(|| std::hint::black_box(WindowIndex::build(&tcsr, None, &grid).memory_bytes()))
    });
    // max_iters = 0 isolates the setup (degree/activity + init) phase.
    let setup_cfg = PrConfig {
        max_iters: 0,
        ..Default::default()
    };
    let index_full = WindowIndex::build(&tcsr, None, &grid);
    let small_events = log.slice_by_time(bench_window.start, bench_window.end);
    let tcsr_small = TemporalCsr::from_events(log.num_vertices(), small_events, true);
    let index_small = WindowIndex::build(&tcsr_small, None, &grid[j..j + 1]);
    let mut ws = PrWorkspace::default();
    g.bench_function("pr_setup_unindexed_full_part", |b| {
        b.iter(|| {
            pagerank_window(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &setup_cfg,
                None,
                &mut ws,
            )
        })
    });
    g.bench_function("pr_setup_unindexed_window_part", |b| {
        b.iter(|| {
            pagerank_window(
                &tcsr_small,
                &tcsr_small,
                bench_window,
                Init::Uniform,
                &setup_cfg,
                None,
                &mut ws,
            )
        })
    });
    g.bench_function("pr_setup_indexed_full_part", |b| {
        b.iter(|| {
            pagerank_window_indexed(
                &tcsr,
                &tcsr,
                &index_full.view(j),
                Init::Uniform,
                &setup_cfg,
                None,
                &mut ws,
            )
        })
    });
    g.bench_function("pr_setup_indexed_window_part", |b| {
        b.iter(|| {
            pagerank_window_indexed(
                &tcsr_small,
                &tcsr_small,
                &index_small.view(0),
                Init::Uniform,
                &setup_cfg,
                None,
                &mut ws,
            )
        })
    });

    g.bench_function("csr_rebuild_per_window", |b| {
        let events = log.slice_by_time(window.start, window.end);
        b.iter(|| {
            std::hint::black_box(Csr::from_events(log.num_vertices(), events, true).num_edges())
        })
    });

    // Same construction, but recycling the previous window's row/col
    // buffers (the offline driver's finalize-stage workspace reuse): the
    // delta vs `csr_rebuild_per_window` is the pure allocation cost the
    // exec-layer source recycles away in steady state.
    g.bench_function("csr_rebuild_per_window_reused", |b| {
        let events = log.slice_by_time(window.start, window.end);
        let mut csr = Csr::from_events(log.num_vertices(), events, true);
        b.iter(|| {
            csr.rebuild_from_events(log.num_vertices(), events, true);
            std::hint::black_box(csr.num_edges())
        })
    });

    g.bench_function("streaming_insert_delete_cycle", |b| {
        b.iter(|| {
            let mut sg = StreamingGraph::new(log.num_vertices());
            for e in log.slice_by_time(window.start, window.end) {
                sg.insert_event(e.u, e.v, e.t);
            }
            for e in log.slice_by_time(window.start, window.end) {
                let _ = sg.delete_event(e.u, e.v);
            }
            std::hint::black_box(sg.num_edges())
        })
    });

    // --- guards_overhead: numeric-health checks on the SpMV hot loop -----
    // The per-iteration NaN/mass-drift guard piggybacks on the convergence
    // reduction (one extra add per vertex), so the healthy-path cost should
    // be noise (<2%). Full power iterations to convergence, same window,
    // guard on vs off.
    let full_cfg = PrConfig::default();
    let unguarded_cfg = PrConfig {
        guard: GuardConfig::off(),
        ..PrConfig::default()
    };
    g.bench_function("guards_overhead/on", |b| {
        b.iter(|| {
            pagerank_window(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &full_cfg,
                None,
                &mut ws,
            )
        })
    });
    g.bench_function("guards_overhead/off", |b| {
        b.iter(|| {
            pagerank_window(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &unguarded_cfg,
                None,
                &mut ws,
            )
        })
    });

    // --- telemetry_overhead: observation hooks on the SpMV hot loop ------
    // A disabled carrier is a branch on a None reference per observation
    // site, so `off` must track the plain entry point (<1%); `on` measures
    // the full price of recording (timestamps, trace events, counters) —
    // unbounded, but kept honest here. A fresh sink per invocation bounds
    // trace memory during the measurement.
    g.bench_function("telemetry_overhead/baseline", |b| {
        b.iter(|| {
            pagerank_window(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &full_cfg,
                None,
                &mut ws,
            )
        })
    });
    g.bench_function("telemetry_overhead/off", |b| {
        b.iter(|| {
            pagerank_window_obs(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &full_cfg,
                None,
                &mut ws,
                Obs::off(),
            )
        })
    });
    g.bench_function("telemetry_overhead/on", |b| {
        b.iter(|| {
            let tele = Telemetry::enabled();
            let bridge = TelemetryKernelBridge::new(&tele, 1);
            pagerank_window_obs(
                &tcsr,
                &tcsr,
                bench_window,
                Init::Uniform,
                &full_cfg,
                None,
                &mut ws,
                Obs::new(&bridge, 0),
            )
        })
    });

    // --- spmm_inner: dense dispatch vs the pre-vectorization mask walk ---
    // Identical windows in every lane make each stored run live in all
    // lanes, so the inner loop takes the dense full-mask accumulate
    // (runtime-dispatched AVX2, or the unrolled scalar fallback) on every
    // neighbor — the case the dispatch targets. Compaction is off in both
    // arms so the inner loop is the only variable.
    let mut sws = SpmmWorkspace::default();
    for vl in [8usize, 16, 32] {
        let ranges = vec![bench_window; vl];
        let inits = vec![Init::Uniform; vl];
        for (name, simd) in [
            ("bitwalk", SimdPolicy::BitWalk),
            ("dense", SimdPolicy::Auto),
        ] {
            let cfg = PrConfig {
                simd,
                compaction: false,
                ..PrConfig::default()
            };
            g.bench_function(format!("spmm_inner_vl{vl}/{name}"), |b| {
                b.iter(|| pagerank_batch(&tcsr, &tcsr, &ranges, &inits, &cfg, None, &mut sws))
            });
        }
    }

    // --- spmm_compaction: converged-lane repacking -----------------------
    // Staggered window sizes converge at very different iterations; with
    // compaction on, the batch repacks x/inv_deg/masks to a smaller
    // effective vl as lanes finish instead of dragging dead columns
    // through every remaining row.
    let staggered: Vec<TimeRange> = (0..16i64)
        .map(|k| TimeRange::new(window.start, window.start + (span / 64) * (k + 1)))
        .collect();
    let stag_inits = vec![Init::Uniform; staggered.len()];
    for (name, compaction) in [("off", false), ("on", true)] {
        let cfg = PrConfig {
            compaction,
            ..PrConfig::default()
        };
        g.bench_function(format!("spmm_compaction/{name}"), |b| {
            b.iter(|| pagerank_batch(&tcsr, &tcsr, &staggered, &stag_inits, &cfg, None, &mut sws))
        });
    }

    // --- spmm_balance: vertex- vs edge-balanced parallel chunks ----------
    // wiki-talk's degree distribution is heavily skewed, so equal-row
    // static chunks hand one thread the hubs; degree-weighted boundaries
    // equalize the enclosed work instead.
    let bal_ranges = vec![bench_window; 16];
    let bal_inits = vec![Init::Uniform; 16];
    for (name, balance) in [("vertex", Balance::Vertex), ("edge", Balance::Edge)] {
        let sched = Scheduler::new(Partitioner::Static, 1).with_balance(balance);
        let cfg = PrConfig::default();
        g.bench_function(format!("spmm_balance/{name}"), |b| {
            b.iter(|| {
                pagerank_batch(
                    &tcsr,
                    &tcsr,
                    &bal_ranges,
                    &bal_inits,
                    &cfg,
                    Some(&sched),
                    &mut sws,
                )
            })
        });
    }

    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
