//! Figure 12: the advisor's suggested parameters vs the library default
//! and the untuned bare-bone config, on wiki-talk.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem};
use tempopr_core::{suggest, PostmortemConfig};
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::WikiTalk, 64);
    let suggested = suggest(&log, &spec, 0);
    let mut g = c.benchmark_group("fig12_suggested");
    g.bench_function("suggested", |b| {
        b.iter(|| {
            std::hint::black_box(postmortem(&log, spec, suggested.clone()).total_iterations())
        })
    });
    g.bench_function("default", |b| {
        b.iter(|| {
            std::hint::black_box(
                postmortem(&log, spec, PostmortemConfig::default()).total_iterations(),
            )
        })
    });
    g.bench_function("bare_bone", |b| {
        b.iter(|| {
            std::hint::black_box(
                postmortem(&log, spec, PostmortemConfig::bare_bone()).total_iterations(),
            )
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
