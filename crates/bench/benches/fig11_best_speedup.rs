//! Figure 11: postmortem (best simple config) vs streaming on every
//! dataset — the heatmap's underlying pair of measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem, streaming};
use tempopr_core::PostmortemConfig;
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    for dataset in Dataset::all() {
        let (log, spec) = bench_workload(dataset, 32);
        let mut g = c.benchmark_group(format!("fig11_best_speedup/{}", dataset.name()));
        g.bench_function("streaming", |b| {
            b.iter(|| std::hint::black_box(streaming(&log, spec).total_iterations()))
        });
        g.bench_function("postmortem", |b| {
            b.iter(|| {
                let cfg = PostmortemConfig {
                    num_multiwindows: tempopr_core::suggested_multiwindows(spec.count),
                    ..Default::default()
                };
                std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
            })
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
