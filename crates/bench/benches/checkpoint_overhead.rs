//! Checkpoint overhead: the same postmortem run with durability off,
//! checkpointing every window, and every 8 windows. The every-8 cadence is
//! the recommended default for long runs and should stay within a few
//! percent of the undurable baseline (EXPERIMENTS.md tracks the numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use tempopr_bench::bench_pr;
use tempopr_core::{CheckpointOptions, PostmortemConfig, PostmortemEngine, RetainMode, RunOutput};
use tempopr_datagen::Dataset;

/// One durable postmortem run over a pre-generated workload. The in-order
/// bare-bone configuration is the one resume supports, so it is the one
/// whose overhead matters.
fn run_durable(
    log: &tempopr_graph::EventLog,
    spec: tempopr_graph::WindowSpec,
    dir: Option<PathBuf>,
    every: usize,
) -> RunOutput {
    // Full retention (the library default): the baseline already
    // materializes every window's ranks, so the measured delta is the
    // checkpoint machinery itself — framing, CRC, write, fsync cadence.
    let cfg = PostmortemConfig {
        pr: bench_pr(),
        retain: RetainMode::Full,
        ..PostmortemConfig::bare_bone()
    };
    let opts = CheckpointOptions {
        dir,
        every,
        resume: None,
    };
    PostmortemEngine::new(log, spec, cfg)
        .expect("engine")
        .run_durable(&opts)
        .expect("durable run")
}

/// A checkpoint is a fixed cost (serialize + fsync) against a per-window
/// compute cost that grows with the workload, so the overhead ratio is
/// only meaningful on a workload big enough for compute to dominate —
/// 10x the shared bench scale.
fn overhead_workload() -> (tempopr_graph::EventLog, tempopr_graph::WindowSpec) {
    let log = Dataset::Enron.spec().generate(0.01, 42);
    let span = log.last_time() - log.first_time();
    let sw = (span / 64).max(1);
    let spec = tempopr_graph::WindowSpec::covering(&log, (sw * 4).max(2), sw).expect("spec");
    (log, spec)
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let (log, spec) = overhead_workload();
    let base = std::env::temp_dir().join(format!("tempopr_bench_ckpt_{}", std::process::id()));
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.bench_function("off", |b| {
        b.iter(|| std::hint::black_box(run_durable(&log, spec, None, 1)))
    });
    for (label, every) in [("every1", 1usize), ("every8", 8usize)] {
        let dir = base.join(label);
        g.bench_function(label, |b| {
            b.iter(|| {
                // Fresh manifest per iteration: overhead includes the
                // header write, per-record framing, and fsync cadence.
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).expect("bench dir");
                std::hint::black_box(run_durable(&log, spec, Some(dir.clone()), every))
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_checkpoint_overhead);
criterion_main!(benches);
