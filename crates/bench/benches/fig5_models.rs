//! Figure 5: Offline vs Streaming vs Postmortem on the same sliding-window
//! workload. The postmortem entry uses the paper's untuned "bare-bone"
//! configuration, as in the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, offline, postmortem, streaming};
use tempopr_core::PostmortemConfig;
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    for dataset in [Dataset::Enron, Dataset::WikiTalk] {
        let (log, spec) = bench_workload(dataset, 48);
        let mut g = c.benchmark_group(format!("fig5_models/{}", dataset.name()));
        g.bench_function("offline", |b| {
            b.iter(|| std::hint::black_box(offline(&log, spec).total_iterations()))
        });
        g.bench_function("streaming", |b| {
            b.iter(|| std::hint::black_box(streaming(&log, spec).total_iterations()))
        });
        g.bench_function("postmortem_bare_bone", |b| {
            b.iter(|| {
                std::hint::black_box(
                    postmortem(&log, spec, PostmortemConfig::bare_bone()).total_iterations(),
                )
            })
        });
        g.bench_function("postmortem_default", |b| {
            b.iter(|| {
                std::hint::black_box(
                    postmortem(&log, spec, PostmortemConfig::default()).total_iterations(),
                )
            })
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
