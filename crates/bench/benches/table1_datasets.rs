//! Table 1: workload synthesis cost per dataset (the inventory's
//! generation path, exercised end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{BENCH_SCALE, BENCH_SEED};
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_datasets");
    for d in Dataset::all() {
        g.bench_function(d.name(), |b| {
            b.iter(|| {
                let log = d.spec().generate(BENCH_SCALE, BENCH_SEED);
                std::hint::black_box(log.len())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
