//! Figure 8: impact of the number of multi-window graphs (auto
//! partitioner, SpMV kernel — see the CLI fig8 note on the SpMM
//! interplay), sweeping Y on a fixed wiki-talk workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem};
use tempopr_core::{ParallelMode, PostmortemConfig};
use tempopr_datagen::Dataset;

fn bench(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::WikiTalk, 96);
    for mode in [ParallelMode::ApplicationLevel, ParallelMode::Nested] {
        let mut g = c.benchmark_group(format!("fig8_multiwindow/{mode:?}"));
        for mw in [1usize, 6, 16, 48, 96] {
            // Indexed vs unindexed setup ablation: few wide parts amplify
            // the per-window degree-pass cost the WindowIndex removes.
            for use_window_index in [true, false] {
                let suffix = if use_window_index { "" } else { "/noindex" };
                g.bench_function(format!("mw{mw}{suffix}"), |b| {
                    b.iter(|| {
                        let cfg = PostmortemConfig {
                            mode,
                            kernel: tempopr_core::KernelKind::SpMV,
                            num_multiwindows: mw,
                            use_window_index,
                            ..Default::default()
                        };
                        std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
                    })
                });
            }
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
