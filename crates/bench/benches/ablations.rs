//! Ablations for the design choices DESIGN.md calls out:
//!
//! - per-vertex time-bounds pruning in the window degree pass (on a spiky
//!   dataset most windows exclude most vertices, so the constant-time
//!   pre-check should pay);
//! - equal-windows vs equal-events multi-window partitioning (the paper's
//!   §7 future work);
//! - SpMM vector length (1 = SpMV-like .. 32).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::{bench_workload, postmortem};
use tempopr_core::{KernelKind, PostmortemConfig};
use tempopr_datagen::Dataset;
use tempopr_graph::{PartitionStrategy, TemporalCsr};

fn bench_pruning(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::Enron, 64);
    let tcsr = TemporalCsr::from_log(&log, true);
    let mut g = c.benchmark_group("ablation_time_bounds_pruning");
    g.bench_function("pruned_degree_pass", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in 0..spec.count {
                let range = spec.window(w);
                for v in 0..tcsr.num_vertices() as u32 {
                    total += tcsr.active_degree(v, range);
                }
            }
            std::hint::black_box(total)
        })
    });
    g.bench_function("unpruned_degree_pass", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in 0..spec.count {
                let range = spec.window(w);
                for v in 0..tcsr.num_vertices() as u32 {
                    total += tcsr.active_degree_unpruned(v, range);
                }
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

fn bench_partition_strategy(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::Epinions, 64);
    let mut g = c.benchmark_group("ablation_partition_strategy");
    for (label, strategy) in [
        ("equal_windows", PartitionStrategy::EqualWindows),
        ("equal_events", PartitionStrategy::EqualEvents),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = PostmortemConfig {
                    partition: strategy,
                    ..Default::default()
                };
                std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
            })
        });
    }
    g.finish();
}

fn bench_spmm_lanes(c: &mut Criterion) {
    let (log, spec) = bench_workload(Dataset::HepTh, 64);
    let mut g = c.benchmark_group("ablation_spmm_lanes");
    for lanes in [1usize, 4, 8, 16, 32] {
        g.bench_function(format!("lanes{lanes}"), |b| {
            b.iter(|| {
                let cfg = PostmortemConfig {
                    kernel: KernelKind::SpMM { lanes },
                    ..Default::default()
                };
                std::hint::black_box(postmortem(&log, spec, cfg).total_iterations())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pruning, bench_partition_strategy, bench_spmm_lanes
}
criterion_main!(benches);
