//! Figure 4: per-window edge-count series (active edge counting over the
//! temporal CSR, the measurement behind the seven distribution panels).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tempopr_bench::bench_workload;
use tempopr_datagen::Dataset;
use tempopr_graph::TemporalCsr;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_edge_distribution");
    for d in [Dataset::Enron, Dataset::WikiTalk, Dataset::Epinions] {
        let (log, spec) = bench_workload(d, 40);
        let tcsr = TemporalCsr::from_log(&log, true);
        g.bench_function(d.name(), |b| {
            b.iter(|| {
                let total: usize = (0..spec.count)
                    .map(|w| tcsr.active_edge_count(spec.window(w)))
                    .sum();
                std::hint::black_box(total)
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
