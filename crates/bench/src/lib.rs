//! Shared setup for the criterion benches (one bench target per paper
//! table/figure). Workloads are generated at a small scale so the whole
//! suite runs in minutes; the CLI harness (`tempopr <figN>`) runs the same
//! experiments at larger scales.

use tempopr_core::{
    run_offline, OfflineConfig, PostmortemConfig, PostmortemEngine, RetainMode, RunOutput,
};
use tempopr_datagen::Dataset;
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::PrConfig;
use tempopr_stream::{run_streaming, StreamingConfig};

/// Scale used by all bench workloads.
pub const BENCH_SCALE: f64 = 0.001;

/// Seed used by all bench workloads.
pub const BENCH_SEED: u64 = 42;

/// Generates a bench workload: dataset at [`BENCH_SCALE`] with a window
/// spec of `windows` windows covering the span (width = 4 sliding
/// offsets' worth of overlap).
pub fn bench_workload(dataset: Dataset, windows: usize) -> (EventLog, WindowSpec) {
    let log = dataset.spec().generate(BENCH_SCALE, BENCH_SEED);
    let span = log.last_time() - log.first_time();
    let sw = (span / windows as i64).max(1);
    let delta = (sw * 4).max(2);
    let natural = WindowSpec::covering(&log, delta, sw).expect("spec");
    let spec = WindowSpec::new(natural.t0, delta, sw, windows.min(natural.count)).expect("spec");
    (log, spec)
}

/// The benches' shared PageRank parameters (library defaults).
pub fn bench_pr() -> PrConfig {
    PrConfig::default()
}

/// Runs the postmortem engine with summary retention.
pub fn postmortem(log: &EventLog, spec: WindowSpec, mut cfg: PostmortemConfig) -> RunOutput {
    cfg.retain = RetainMode::Summary;
    cfg.pr = bench_pr();
    PostmortemEngine::new(log, spec, cfg).expect("engine").run()
}

/// Runs the streaming baseline with summary retention.
pub fn streaming(log: &EventLog, spec: WindowSpec) -> RunOutput {
    run_streaming(
        log,
        spec,
        &StreamingConfig {
            pr: bench_pr(),
            retain: RetainMode::Summary,
            ..Default::default()
        },
    )
    .expect("streaming run")
}

/// Runs the offline baseline with summary retention.
pub fn offline(log: &EventLog, spec: WindowSpec) -> RunOutput {
    run_offline(
        log,
        spec,
        &OfflineConfig {
            pr: bench_pr(),
            retain: RetainMode::Summary,
            ..Default::default()
        },
    )
    .expect("offline run")
}
