//! Shared plumbing for the experiment harness: workload construction,
//! model runners, and timing.

use std::time::{Duration, Instant};
use tempopr_core::{
    run_offline, InitMode, OfflineConfig, PostmortemConfig, PostmortemEngine, RetainMode, RunOutput,
};
use tempopr_datagen::Dataset;
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::{Balance, PrConfig, SimdPolicy};
use tempopr_stream::{run_streaming, StreamingConfig};
use tempopr_telemetry::Telemetry;

/// Prints a one-line diagnostic to stderr and exits nonzero — the
/// harness's uniform failure path (it never panics on bad input or a
/// failed run).
pub fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Warns on stderr when a run completed degraded (some windows failed).
pub fn warn_if_degraded(what: &str, out: &RunOutput) {
    if out.degraded {
        eprintln!("warning: {what} run degraded: {}", out.status_summary());
    }
}

/// Experiment-wide options from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Dataset scale factor relative to the paper's full sizes.
    pub scale: f64,
    /// RNG seed for dataset synthesis.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Cap on the number of windows per configuration (0 = uncapped);
    /// keeps the big sweeps affordable at small scales.
    pub max_windows: usize,
    /// Write run telemetry (`tempopr.metrics.v1` JSON) to this path;
    /// experiments that support it also print a phase-breakdown summary.
    pub metrics_out: Option<String>,
    /// Overlap the next part's window-index build with the current
    /// window's kernel in the postmortem runs (in-order walks only).
    pub pipeline: bool,
    /// SpMM inner-loop implementation (`--simd auto|scalar|bitwalk`);
    /// ablation axis for the vectorized hot path.
    pub simd: SimdPolicy,
    /// Disable converged-lane compaction (`--no-compaction`); ablation
    /// axis.
    pub compaction: bool,
    /// Edge-balanced parallel chunks (`--edge-balance`); applied to every
    /// scheduler an experiment constructs.
    pub edge_balance: bool,
    /// Override the window-seeding mode of every postmortem run
    /// (`--init-mode full|partial|warm`); `None` keeps each experiment's
    /// own choice.
    pub init_mode: Option<InitMode>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.01,
            seed: 42,
            threads: 0,
            max_windows: 0,
            metrics_out: None,
            pipeline: false,
            simd: SimdPolicy::Auto,
            compaction: true,
            edge_balance: false,
            init_mode: None,
        }
    }
}

/// PageRank parameters shared by every experiment (the defaults of the
/// library; tolerance loose enough that iteration counts resemble
/// practice).
pub fn pr_config() -> PrConfig {
    PrConfig::default()
}

/// Generates a dataset and the window spec for `(sw, delta)`, optionally
/// capping the window count.
pub fn workload(dataset: Dataset, sw: i64, delta: i64, opts: &Opts) -> (EventLog, WindowSpec) {
    let log = dataset.spec().generate(opts.scale, opts.seed);
    let mut spec =
        WindowSpec::covering(&log, delta, sw).unwrap_or_else(|e| fail(format!("window spec: {e}")));
    if opts.max_windows > 0 && spec.count > opts.max_windows {
        spec.count = opts.max_windows;
    }
    (log, spec)
}

/// Builds a window spec with an explicit target window count (Figs. 7-10
/// fix the count: 256, 6, 1024).
pub fn workload_with_count(
    dataset: Dataset,
    sw: i64,
    delta: i64,
    count: usize,
    opts: &Opts,
) -> (EventLog, WindowSpec) {
    let log = dataset.spec().generate(opts.scale, opts.seed);
    let natural =
        WindowSpec::covering(&log, delta, sw).unwrap_or_else(|e| fail(format!("window spec: {e}")));
    let spec = WindowSpec::new(natural.t0, delta, sw, count.min(natural.count))
        .unwrap_or_else(|e| fail(format!("window spec: {e}")));
    (log, spec)
}

/// Times one closure invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs the streaming model (summary retention) and reports wall time.
pub fn time_streaming(log: &EventLog, spec: WindowSpec, opts: &Opts) -> (RunOutput, Duration) {
    let cfg = StreamingConfig {
        pr: pr_config(),
        retain: RetainMode::Summary,
        threads: opts.threads,
        ..Default::default()
    };
    let (out, d) = time(|| {
        run_streaming(log, spec, &cfg).unwrap_or_else(|e| fail(format!("streaming run: {e}")))
    });
    warn_if_degraded("streaming", &out);
    (out, d)
}

/// Runs the offline model (summary retention) and reports wall time.
pub fn time_offline(log: &EventLog, spec: WindowSpec, opts: &Opts) -> (RunOutput, Duration) {
    let cfg = OfflineConfig {
        pr: pr_config(),
        retain: RetainMode::Summary,
        threads: opts.threads,
        ..Default::default()
    };
    let (out, d) =
        time(|| run_offline(log, spec, &cfg).unwrap_or_else(|e| fail(format!("offline run: {e}"))));
    warn_if_degraded("offline", &out);
    (out, d)
}

/// Runs the postmortem model with `cfg` (forced to summary retention and
/// the harness thread count) and reports wall time *including* the one-time
/// representation build — the honest end-to-end comparison.
pub fn time_postmortem(
    log: &EventLog,
    spec: WindowSpec,
    cfg: PostmortemConfig,
    opts: &Opts,
) -> (RunOutput, Duration) {
    time_postmortem_traced(log, spec, cfg, opts, Telemetry::noop())
}

/// [`time_postmortem`] recording phase times, counters, and the
/// convergence trace into `tele`.
pub fn time_postmortem_traced(
    log: &EventLog,
    spec: WindowSpec,
    mut cfg: PostmortemConfig,
    opts: &Opts,
    tele: Telemetry,
) -> (RunOutput, Duration) {
    cfg.retain = RetainMode::Summary;
    cfg.threads = opts.threads;
    cfg.pr = pr_config();
    cfg.pipeline = cfg.pipeline || opts.pipeline;
    // Ablation axes land after the pr_config() reset so they survive it.
    cfg.pr.simd = opts.simd;
    cfg.pr.compaction = opts.compaction;
    if opts.edge_balance {
        cfg.scheduler = cfg.scheduler.with_balance(Balance::Edge);
    }
    if let Some(init_mode) = opts.init_mode {
        cfg.init_mode = init_mode;
    }
    let (out, d) = time(|| {
        let engine = PostmortemEngine::with_telemetry(log, spec, cfg, tele)
            .unwrap_or_else(|e| fail(format!("engine build: {e}")));
        engine.run()
    });
    warn_if_degraded("postmortem", &out);
    (out, d)
}

/// Writes a metrics report to `path` (uniform failure path on error).
pub fn write_metrics(path: &str, tele: &Telemetry) {
    let json = tele.report().to_json();
    std::fs::write(path, json).unwrap_or_else(|e| fail(format!("writing {path}: {e}")));
    eprintln!("metrics written to {path}");
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The granularity axis of Figs. 7-10.
pub const GRANULARITIES: [usize; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Parses a dataset name (paper spelling or shorthand).
pub fn parse_dataset(s: &str) -> Option<Dataset> {
    let t = s.to_ascii_lowercase();
    Some(match t.as_str() {
        "enron" | "ia-enron-email" => Dataset::Enron,
        "epinions" | "epinions-user-ratings" => Dataset::Epinions,
        "hepth" | "ca-cit-hepth" => Dataset::HepTh,
        "youtube" | "youtube-growth" => Dataset::Youtube,
        "wikitalk" | "wiki-talk" => Dataset::WikiTalk,
        "stackoverflow" => Dataset::StackOverflow,
        "askubuntu" => Dataset::AskUbuntu,
        _ => return None,
    })
}
