//! Shared plumbing for the experiment harness: workload construction,
//! model runners, and timing.

use std::time::{Duration, Instant};
use tempopr_core::{
    run_offline, OfflineConfig, PostmortemConfig, PostmortemEngine, RetainMode, RunOutput,
};
use tempopr_datagen::Dataset;
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::PrConfig;
use tempopr_stream::{run_streaming, StreamingConfig};

/// Experiment-wide options from the command line.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Dataset scale factor relative to the paper's full sizes.
    pub scale: f64,
    /// RNG seed for dataset synthesis.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Cap on the number of windows per configuration (0 = uncapped);
    /// keeps the big sweeps affordable at small scales.
    pub max_windows: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.01,
            seed: 42,
            threads: 0,
            max_windows: 0,
        }
    }
}

/// PageRank parameters shared by every experiment (the defaults of the
/// library; tolerance loose enough that iteration counts resemble
/// practice).
pub fn pr_config() -> PrConfig {
    PrConfig::default()
}

/// Generates a dataset and the window spec for `(sw, delta)`, optionally
/// capping the window count.
pub fn workload(dataset: Dataset, sw: i64, delta: i64, opts: &Opts) -> (EventLog, WindowSpec) {
    let log = dataset.spec().generate(opts.scale, opts.seed);
    let mut spec = WindowSpec::covering(&log, delta, sw).expect("valid window spec");
    if opts.max_windows > 0 && spec.count > opts.max_windows {
        spec.count = opts.max_windows;
    }
    (log, spec)
}

/// Builds a window spec with an explicit target window count (Figs. 7-10
/// fix the count: 256, 6, 1024).
pub fn workload_with_count(
    dataset: Dataset,
    sw: i64,
    delta: i64,
    count: usize,
    opts: &Opts,
) -> (EventLog, WindowSpec) {
    let log = dataset.spec().generate(opts.scale, opts.seed);
    let natural = WindowSpec::covering(&log, delta, sw).expect("valid window spec");
    let spec = WindowSpec::new(natural.t0, delta, sw, count.min(natural.count))
        .expect("valid window spec");
    (log, spec)
}

/// Times one closure invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs the streaming model (summary retention) and reports wall time.
pub fn time_streaming(log: &EventLog, spec: WindowSpec, opts: &Opts) -> (RunOutput, Duration) {
    let cfg = StreamingConfig {
        pr: pr_config(),
        retain: RetainMode::Summary,
        threads: opts.threads,
        ..Default::default()
    };
    time(|| run_streaming(log, spec, &cfg))
}

/// Runs the offline model (summary retention) and reports wall time.
pub fn time_offline(log: &EventLog, spec: WindowSpec, opts: &Opts) -> (RunOutput, Duration) {
    let cfg = OfflineConfig {
        pr: pr_config(),
        retain: RetainMode::Summary,
        threads: opts.threads,
        ..Default::default()
    };
    time(|| run_offline(log, spec, &cfg))
}

/// Runs the postmortem model with `cfg` (forced to summary retention and
/// the harness thread count) and reports wall time *including* the one-time
/// representation build — the honest end-to-end comparison.
pub fn time_postmortem(
    log: &EventLog,
    spec: WindowSpec,
    mut cfg: PostmortemConfig,
    opts: &Opts,
) -> (RunOutput, Duration) {
    cfg.retain = RetainMode::Summary;
    cfg.threads = opts.threads;
    cfg.pr = pr_config();
    time(|| {
        let engine = PostmortemEngine::new(log, spec, cfg).expect("engine build");
        engine.run()
    })
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The granularity axis of Figs. 7-10.
pub const GRANULARITIES: [usize; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Parses a dataset name (paper spelling or shorthand).
pub fn parse_dataset(s: &str) -> Option<Dataset> {
    let t = s.to_ascii_lowercase();
    Some(match t.as_str() {
        "enron" | "ia-enron-email" => Dataset::Enron,
        "epinions" | "epinions-user-ratings" => Dataset::Epinions,
        "hepth" | "ca-cit-hepth" => Dataset::HepTh,
        "youtube" | "youtube-growth" => Dataset::Youtube,
        "wikitalk" | "wiki-talk" => Dataset::WikiTalk,
        "stackoverflow" => Dataset::StackOverflow,
        "askubuntu" => Dataset::AskUbuntu,
        _ => return None,
    })
}
