//! `tempopr` — experiment harness regenerating every table and figure of
//! Hossain & Saule, *Postmortem Computation of Pagerank on Temporal
//! Graphs* (ICPP '22).
//!
//! ```text
//! tempopr <experiment> [--scale F] [--seed N] [--threads N]
//!                      [--max-windows N] [--dataset NAME]
//!
//! experiments:
//!   table1   dataset inventory and parameter grids
//!   fig4     temporal edge distribution
//!   fig5     offline vs streaming vs postmortem
//!   fig6     partial-initialization speedup
//!   fig7     partitioner/granularity sweep (256 windows)
//!   fig8     multi-window count sweep
//!   fig9     partitioner/granularity sweep (6 windows)
//!   fig10    partitioner/granularity sweep (1024 windows)
//!   fig11    best speedup heatmaps, all datasets
//!   fig12    suggested parameters on wiki-talk
//!   warmstart  init-mode iteration counts across window-overlap ratios
//!   all      every paper figure above, in order
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod common;
mod experiments;

use common::Opts;
use experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_help();
        return;
    }
    let cmd = args[0].clone();
    if cmd == "convert" {
        let lenient = args[1..].iter().any(|a| a == "--lenient");
        let paths: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
        if paths.len() != 2 || args.len() - 1 != paths.len() + usize::from(lenient) {
            eprintln!("usage: tempopr convert <input> <output> [--lenient]");
            std::process::exit(2);
        }
        tools::convert(paths[0], paths[1], lenient);
        return;
    }
    let (opts, dataset, extra) = match parse_flags(&args[1..]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    run_experiment(&cmd, &opts, dataset.as_deref(), &extra);
}

/// Flags specific to the tool subcommands.
struct ToolFlags {
    delta_days: i64,
    sw_days: i64,
    top: usize,
    lenient: bool,
    durable: durable::DurableArgs,
}

impl Default for ToolFlags {
    fn default() -> Self {
        ToolFlags {
            delta_days: 90,
            sw_days: 30,
            top: 3,
            lenient: false,
            durable: durable::DurableArgs {
                checkpoint_every: 1,
                ..Default::default()
            },
        }
    }
}

fn run_experiment(cmd: &str, opts: &Opts, dataset: Option<&str>, extra: &ToolFlags) {
    match cmd {
        "table1" => table1::run(opts),
        "fig4" => fig4::run(opts, dataset),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => sweep::run(sweep::fig7(), opts),
        "fig8" => fig8::run(opts),
        "fig9" => sweep::run(sweep::fig9(), opts),
        "fig10" => sweep::run(sweep::fig10(), opts),
        "fig11" => fig11::run(opts, dataset),
        "fig12" => fig12::run(opts),
        "warmstart" => warmstart::run(opts),
        "run" => durable::run(
            opts,
            dataset,
            &extra.durable,
            extra.sw_days,
            extra.delta_days,
        ),
        "structure" => {
            let src = dataset.unwrap_or("wikitalk");
            tools::structure(src, extra.delta_days, extra.sw_days, extra.lenient, opts);
        }
        "pagerank" => {
            let src = dataset.unwrap_or("wikitalk");
            tools::pagerank(
                src,
                extra.delta_days,
                extra.sw_days,
                extra.top,
                extra.lenient,
                opts,
            );
        }
        "all" => {
            for c in [
                "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            ] {
                run_experiment(c, opts, dataset, extra);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            print_help();
            std::process::exit(2);
        }
    }
}

fn parse_flags(args: &[String]) -> Result<(Opts, Option<String>, ToolFlags), String> {
    let mut opts = Opts::default();
    let mut dataset = None;
    let mut extra = ToolFlags::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                opts.scale = value(i)?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                opts.seed = value(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--threads" => {
                opts.threads = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                i += 2;
            }
            "--max-windows" => {
                opts.max_windows = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-windows: {e}"))?;
                i += 2;
            }
            "--dataset" | "--source" => {
                dataset = Some(value(i)?.clone());
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(value(i)?.clone());
                i += 2;
            }
            "--delta-days" => {
                extra.delta_days = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --delta-days: {e}"))?;
                i += 2;
            }
            "--sw-days" => {
                extra.sw_days = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --sw-days: {e}"))?;
                i += 2;
            }
            "--top" => {
                extra.top = value(i)?.parse().map_err(|e| format!("bad --top: {e}"))?;
                i += 2;
            }
            "--lenient" => {
                extra.lenient = true;
                i += 1;
            }
            "--pipeline" => {
                opts.pipeline = true;
                i += 1;
            }
            "--simd" => {
                opts.simd = match value(i)?.as_str() {
                    "auto" => tempopr_kernel::SimdPolicy::Auto,
                    "scalar" => tempopr_kernel::SimdPolicy::Scalar,
                    "bitwalk" => tempopr_kernel::SimdPolicy::BitWalk,
                    other => return Err(format!("bad --simd '{other}' (auto|scalar|bitwalk)")),
                };
                i += 2;
            }
            "--no-compaction" => {
                opts.compaction = false;
                i += 1;
            }
            "--init-mode" => {
                opts.init_mode = Some(match value(i)?.as_str() {
                    "full" => tempopr_core::InitMode::Full,
                    "partial" => tempopr_core::InitMode::Partial,
                    "warm" => tempopr_core::InitMode::Warm,
                    other => return Err(format!("bad --init-mode '{other}' (full|partial|warm)")),
                });
                i += 2;
            }
            "--edge-balance" => {
                opts.edge_balance = true;
                i += 1;
            }
            "--driver" => {
                extra.durable.driver = durable::Driver::parse(value(i)?)
                    .ok_or_else(|| "bad --driver (postmortem|offline|streaming)".to_string())?;
                i += 2;
            }
            "--checkpoint-dir" => {
                extra.durable.checkpoint_dir = Some(value(i)?.clone());
                i += 2;
            }
            "--checkpoint-every" => {
                extra.durable.checkpoint_every = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                i += 2;
            }
            "--resume" => {
                extra.durable.resume = Some(value(i)?.clone());
                i += 2;
            }
            "--recovery" => {
                extra.durable.recovery_ladder = Some(match value(i)?.as_str() {
                    "ladder" => true,
                    "fail-only" => false,
                    other => return Err(format!("bad --recovery '{other}' (ladder|fail-only)")),
                });
                i += 2;
            }
            "--crash-at" => {
                extra.durable.crash_at = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("bad --crash-at: {e}"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.scale <= 0.0 || opts.scale.is_nan() {
        return Err("--scale must be positive".into());
    }
    if extra.delta_days <= 0 || extra.sw_days <= 0 {
        return Err("--delta-days and --sw-days must be positive".into());
    }
    if extra.durable.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if extra.durable.crash_at.is_some() && extra.durable.checkpoint_dir.is_none() {
        return Err("--crash-at needs --checkpoint-dir".into());
    }
    Ok((opts, dataset, extra))
}

fn print_help() {
    println!(
        "tempopr — regenerate the tables and figures of 'Postmortem Computation of \
         Pagerank on Temporal Graphs' (ICPP '22)\n\n\
         usage: tempopr <experiment> [--scale F] [--seed N] [--threads N] \
         [--max-windows N] [--dataset NAME] [--metrics-out PATH]\n\n\
         experiments: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 warmstart all\n\
         tools:       pagerank | structure  (--source <file-or-dataset> \
         --delta-days D --sw-days S [--top K] [--lenient]); convert <in> <out> [--lenient]\n\
         run:         durable window runner — --driver postmortem|offline|streaming \
         [--checkpoint-dir D] [--checkpoint-every N] [--resume D] \
         [--recovery ladder|fail-only] [--crash-at K]; prints per-window \
         fingerprints; exit 0 clean, 3 recovered, 4 failed\n\
         datasets:    enron epinions hepth youtube wikitalk stackoverflow askubuntu\n\n\
         --scale      dataset size relative to the paper's (default 0.01)\n\
         --seed       synthesis seed (default 42)\n\
         --threads    worker threads (default: all cores)\n\
         --max-windows  cap windows per configuration (default: uncapped)\n\
         --dataset    restrict fig4/fig11 to one dataset\n\
         --metrics-out  write run telemetry JSON (fig5 also prints a \
         phase breakdown)\n\
         --pipeline   overlap the next part's window-index build with the \
         current window's kernel (postmortem runs)\n\
         --simd       SpMM inner loop: auto (detect, default) | scalar | \
         bitwalk (pre-vectorization mask walk)\n\
         --no-compaction  disable converged-lane compaction in the SpMM \
         kernel\n\
         --init-mode  window seeding: full (uniform) | partial (Eq. 4 \
         within a part) | warm (carry across part/batch boundaries too); \
         default: each experiment's own choice\n\
         --edge-balance   edge-balanced parallel chunks (degree-weighted \
         boundaries) instead of vertex-balanced"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<(Opts, Option<String>, ToolFlags), String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_flags(&v)
    }

    #[test]
    fn defaults_when_no_flags() {
        let (opts, dataset, extra) = flags(&[]).unwrap();
        assert_eq!(opts.scale, 0.01);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.max_windows, 0);
        assert!(opts.metrics_out.is_none());
        assert!(!opts.pipeline);
        assert!(dataset.is_none());
        assert_eq!(extra.delta_days, 90);
        assert_eq!(extra.sw_days, 30);
        assert_eq!(extra.top, 3);
        assert!(!extra.lenient);
    }

    #[test]
    fn lenient_flag_parses() {
        let (_, _, extra) = flags(&["--lenient"]).unwrap();
        assert!(extra.lenient);
    }

    #[test]
    fn pipeline_flag_parses() {
        let (opts, _, _) = flags(&["--pipeline"]).unwrap();
        assert!(opts.pipeline);
    }

    #[test]
    fn simd_ablation_flags_parse() {
        use tempopr_kernel::SimdPolicy;
        let (opts, _, _) = flags(&[]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::Auto);
        assert!(opts.compaction);
        assert!(!opts.edge_balance);
        let (opts, _, _) =
            flags(&["--simd", "bitwalk", "--no-compaction", "--edge-balance"]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::BitWalk);
        assert!(!opts.compaction);
        assert!(opts.edge_balance);
        let (opts, _, _) = flags(&["--simd", "scalar"]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::Scalar);
        assert!(flags(&["--simd", "avx512"]).is_err(), "unknown simd value");
        assert!(flags(&["--simd"]).is_err(), "missing simd value");
    }

    #[test]
    fn init_mode_flag_parses() {
        use tempopr_core::InitMode;
        let (opts, _, _) = flags(&[]).unwrap();
        assert!(opts.init_mode.is_none());
        for (arg, mode) in [
            ("full", InitMode::Full),
            ("partial", InitMode::Partial),
            ("warm", InitMode::Warm),
        ] {
            let (opts, _, _) = flags(&["--init-mode", arg]).unwrap();
            assert_eq!(opts.init_mode, Some(mode));
        }
        assert!(flags(&["--init-mode", "hot"]).is_err(), "unknown mode");
        assert!(flags(&["--init-mode"]).is_err(), "missing value");
    }

    #[test]
    fn all_flags_parse() {
        let (opts, dataset, extra) = flags(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--threads",
            "2",
            "--max-windows",
            "10",
            "--dataset",
            "enron",
            "--delta-days",
            "30",
            "--sw-days",
            "5",
            "--top",
            "8",
            "--metrics-out",
            "metrics.json",
        ])
        .unwrap();
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.max_windows, 10);
        assert_eq!(opts.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(dataset.as_deref(), Some("enron"));
        assert_eq!(extra.delta_days, 30);
        assert_eq!(extra.sw_days, 5);
        assert_eq!(extra.top, 8);
    }

    #[test]
    fn durable_flags_parse() {
        let (_, _, extra) = flags(&[]).unwrap();
        assert_eq!(extra.durable.driver, durable::Driver::Postmortem);
        assert_eq!(extra.durable.checkpoint_every, 1);
        assert!(extra.durable.checkpoint_dir.is_none());
        assert!(extra.durable.resume.is_none());
        assert!(extra.durable.recovery_ladder.is_none());
        assert!(extra.durable.crash_at.is_none());
        let (_, _, extra) = flags(&[
            "--driver",
            "streaming",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "8",
            "--resume",
            "/tmp/ck",
            "--recovery",
            "ladder",
            "--crash-at",
            "3",
        ])
        .unwrap();
        assert_eq!(extra.durable.driver, durable::Driver::Streaming);
        assert_eq!(extra.durable.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(extra.durable.checkpoint_every, 8);
        assert_eq!(extra.durable.resume.as_deref(), Some("/tmp/ck"));
        assert_eq!(extra.durable.recovery_ladder, Some(true));
        assert_eq!(extra.durable.crash_at, Some(3));
        let (_, _, extra) = flags(&["--recovery", "fail-only"]).unwrap();
        assert_eq!(extra.durable.recovery_ladder, Some(false));
        assert!(flags(&["--driver", "bogus"]).is_err(), "unknown driver");
        assert!(flags(&["--checkpoint-every", "0"]).is_err(), "zero cadence");
        assert!(
            flags(&["--crash-at", "2"]).is_err(),
            "crash needs a checkpoint dir"
        );
        assert!(flags(&["--recovery", "maybe"]).is_err(), "unknown policy");
    }

    #[test]
    fn source_is_alias_for_dataset() {
        let (_, dataset, _) = flags(&["--source", "events.txt"]).unwrap();
        assert_eq!(dataset.as_deref(), Some("events.txt"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(flags(&["--scale"]).is_err(), "missing value");
        assert!(flags(&["--scale", "x"]).is_err(), "bad float");
        assert!(flags(&["--scale", "0"]).is_err(), "non-positive scale");
        assert!(flags(&["--scale", "NaN"]).is_err(), "NaN scale");
        assert!(flags(&["--delta-days", "-1"]).is_err(), "negative delta");
        assert!(flags(&["--bogus"]).is_err(), "unknown flag");
    }
}
