//! `tempopr` — experiment harness regenerating every table and figure of
//! Hossain & Saule, *Postmortem Computation of Pagerank on Temporal
//! Graphs* (ICPP '22).
//!
//! ```text
//! tempopr <experiment> [--scale F] [--seed N] [--threads N]
//!                      [--max-windows N] [--dataset NAME]
//!
//! experiments:
//!   table1   dataset inventory and parameter grids
//!   fig4     temporal edge distribution
//!   fig5     offline vs streaming vs postmortem
//!   fig6     partial-initialization speedup
//!   fig7     partitioner/granularity sweep (256 windows)
//!   fig8     multi-window count sweep
//!   fig9     partitioner/granularity sweep (6 windows)
//!   fig10    partitioner/granularity sweep (1024 windows)
//!   fig11    best speedup heatmaps, all datasets
//!   fig12    suggested parameters on wiki-talk
//!   warmstart  init-mode iteration counts across window-overlap ratios
//!   all      every paper figure above, in order
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod common;
mod experiments;

use common::Opts;
use experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_help();
        return;
    }
    let cmd = args[0].clone();
    if cmd == "convert" {
        let lenient = args[1..].iter().any(|a| a == "--lenient");
        let paths: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
        if paths.len() != 2 || args.len() - 1 != paths.len() + usize::from(lenient) {
            eprintln!("usage: tempopr convert <input> <output> [--lenient]");
            std::process::exit(2);
        }
        tools::convert(paths[0], paths[1], lenient);
        return;
    }
    let (opts, dataset, extra) = match parse_flags(&args[1..]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    run_experiment(&cmd, &opts, dataset.as_deref(), &extra);
}

/// Flags specific to the tool subcommands.
struct ToolFlags {
    delta_days: i64,
    sw_days: i64,
    top: usize,
    lenient: bool,
}

impl Default for ToolFlags {
    fn default() -> Self {
        ToolFlags {
            delta_days: 90,
            sw_days: 30,
            top: 3,
            lenient: false,
        }
    }
}

fn run_experiment(cmd: &str, opts: &Opts, dataset: Option<&str>, extra: &ToolFlags) {
    match cmd {
        "table1" => table1::run(opts),
        "fig4" => fig4::run(opts, dataset),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => sweep::run(sweep::fig7(), opts),
        "fig8" => fig8::run(opts),
        "fig9" => sweep::run(sweep::fig9(), opts),
        "fig10" => sweep::run(sweep::fig10(), opts),
        "fig11" => fig11::run(opts, dataset),
        "fig12" => fig12::run(opts),
        "warmstart" => warmstart::run(opts),
        "structure" => {
            let src = dataset.unwrap_or("wikitalk");
            tools::structure(src, extra.delta_days, extra.sw_days, extra.lenient, opts);
        }
        "pagerank" => {
            let src = dataset.unwrap_or("wikitalk");
            tools::pagerank(
                src,
                extra.delta_days,
                extra.sw_days,
                extra.top,
                extra.lenient,
                opts,
            );
        }
        "all" => {
            for c in [
                "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            ] {
                run_experiment(c, opts, dataset, extra);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            print_help();
            std::process::exit(2);
        }
    }
}

fn parse_flags(args: &[String]) -> Result<(Opts, Option<String>, ToolFlags), String> {
    let mut opts = Opts::default();
    let mut dataset = None;
    let mut extra = ToolFlags::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                opts.scale = value(i)?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                opts.seed = value(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--threads" => {
                opts.threads = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                i += 2;
            }
            "--max-windows" => {
                opts.max_windows = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-windows: {e}"))?;
                i += 2;
            }
            "--dataset" | "--source" => {
                dataset = Some(value(i)?.clone());
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(value(i)?.clone());
                i += 2;
            }
            "--delta-days" => {
                extra.delta_days = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --delta-days: {e}"))?;
                i += 2;
            }
            "--sw-days" => {
                extra.sw_days = value(i)?
                    .parse()
                    .map_err(|e| format!("bad --sw-days: {e}"))?;
                i += 2;
            }
            "--top" => {
                extra.top = value(i)?.parse().map_err(|e| format!("bad --top: {e}"))?;
                i += 2;
            }
            "--lenient" => {
                extra.lenient = true;
                i += 1;
            }
            "--pipeline" => {
                opts.pipeline = true;
                i += 1;
            }
            "--simd" => {
                opts.simd = match value(i)?.as_str() {
                    "auto" => tempopr_kernel::SimdPolicy::Auto,
                    "scalar" => tempopr_kernel::SimdPolicy::Scalar,
                    "bitwalk" => tempopr_kernel::SimdPolicy::BitWalk,
                    other => return Err(format!("bad --simd '{other}' (auto|scalar|bitwalk)")),
                };
                i += 2;
            }
            "--no-compaction" => {
                opts.compaction = false;
                i += 1;
            }
            "--init-mode" => {
                opts.init_mode = Some(match value(i)?.as_str() {
                    "full" => tempopr_core::InitMode::Full,
                    "partial" => tempopr_core::InitMode::Partial,
                    "warm" => tempopr_core::InitMode::Warm,
                    other => return Err(format!("bad --init-mode '{other}' (full|partial|warm)")),
                });
                i += 2;
            }
            "--edge-balance" => {
                opts.edge_balance = true;
                i += 1;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.scale <= 0.0 || opts.scale.is_nan() {
        return Err("--scale must be positive".into());
    }
    if extra.delta_days <= 0 || extra.sw_days <= 0 {
        return Err("--delta-days and --sw-days must be positive".into());
    }
    Ok((opts, dataset, extra))
}

fn print_help() {
    println!(
        "tempopr — regenerate the tables and figures of 'Postmortem Computation of \
         Pagerank on Temporal Graphs' (ICPP '22)\n\n\
         usage: tempopr <experiment> [--scale F] [--seed N] [--threads N] \
         [--max-windows N] [--dataset NAME] [--metrics-out PATH]\n\n\
         experiments: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 warmstart all\n\
         tools:       pagerank | structure  (--source <file-or-dataset> \
         --delta-days D --sw-days S [--top K] [--lenient]); convert <in> <out> [--lenient]\n\
         datasets:    enron epinions hepth youtube wikitalk stackoverflow askubuntu\n\n\
         --scale      dataset size relative to the paper's (default 0.01)\n\
         --seed       synthesis seed (default 42)\n\
         --threads    worker threads (default: all cores)\n\
         --max-windows  cap windows per configuration (default: uncapped)\n\
         --dataset    restrict fig4/fig11 to one dataset\n\
         --metrics-out  write run telemetry JSON (fig5 also prints a \
         phase breakdown)\n\
         --pipeline   overlap the next part's window-index build with the \
         current window's kernel (postmortem runs)\n\
         --simd       SpMM inner loop: auto (detect, default) | scalar | \
         bitwalk (pre-vectorization mask walk)\n\
         --no-compaction  disable converged-lane compaction in the SpMM \
         kernel\n\
         --init-mode  window seeding: full (uniform) | partial (Eq. 4 \
         within a part) | warm (carry across part/batch boundaries too); \
         default: each experiment's own choice\n\
         --edge-balance   edge-balanced parallel chunks (degree-weighted \
         boundaries) instead of vertex-balanced"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<(Opts, Option<String>, ToolFlags), String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_flags(&v)
    }

    #[test]
    fn defaults_when_no_flags() {
        let (opts, dataset, extra) = flags(&[]).unwrap();
        assert_eq!(opts.scale, 0.01);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.max_windows, 0);
        assert!(opts.metrics_out.is_none());
        assert!(!opts.pipeline);
        assert!(dataset.is_none());
        assert_eq!(extra.delta_days, 90);
        assert_eq!(extra.sw_days, 30);
        assert_eq!(extra.top, 3);
        assert!(!extra.lenient);
    }

    #[test]
    fn lenient_flag_parses() {
        let (_, _, extra) = flags(&["--lenient"]).unwrap();
        assert!(extra.lenient);
    }

    #[test]
    fn pipeline_flag_parses() {
        let (opts, _, _) = flags(&["--pipeline"]).unwrap();
        assert!(opts.pipeline);
    }

    #[test]
    fn simd_ablation_flags_parse() {
        use tempopr_kernel::SimdPolicy;
        let (opts, _, _) = flags(&[]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::Auto);
        assert!(opts.compaction);
        assert!(!opts.edge_balance);
        let (opts, _, _) =
            flags(&["--simd", "bitwalk", "--no-compaction", "--edge-balance"]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::BitWalk);
        assert!(!opts.compaction);
        assert!(opts.edge_balance);
        let (opts, _, _) = flags(&["--simd", "scalar"]).unwrap();
        assert_eq!(opts.simd, SimdPolicy::Scalar);
        assert!(flags(&["--simd", "avx512"]).is_err(), "unknown simd value");
        assert!(flags(&["--simd"]).is_err(), "missing simd value");
    }

    #[test]
    fn init_mode_flag_parses() {
        use tempopr_core::InitMode;
        let (opts, _, _) = flags(&[]).unwrap();
        assert!(opts.init_mode.is_none());
        for (arg, mode) in [
            ("full", InitMode::Full),
            ("partial", InitMode::Partial),
            ("warm", InitMode::Warm),
        ] {
            let (opts, _, _) = flags(&["--init-mode", arg]).unwrap();
            assert_eq!(opts.init_mode, Some(mode));
        }
        assert!(flags(&["--init-mode", "hot"]).is_err(), "unknown mode");
        assert!(flags(&["--init-mode"]).is_err(), "missing value");
    }

    #[test]
    fn all_flags_parse() {
        let (opts, dataset, extra) = flags(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--threads",
            "2",
            "--max-windows",
            "10",
            "--dataset",
            "enron",
            "--delta-days",
            "30",
            "--sw-days",
            "5",
            "--top",
            "8",
            "--metrics-out",
            "metrics.json",
        ])
        .unwrap();
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.max_windows, 10);
        assert_eq!(opts.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(dataset.as_deref(), Some("enron"));
        assert_eq!(extra.delta_days, 30);
        assert_eq!(extra.sw_days, 5);
        assert_eq!(extra.top, 8);
    }

    #[test]
    fn source_is_alias_for_dataset() {
        let (_, dataset, _) = flags(&["--source", "events.txt"]).unwrap();
        assert_eq!(dataset.as_deref(), Some("events.txt"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(flags(&["--scale"]).is_err(), "missing value");
        assert!(flags(&["--scale", "x"]).is_err(), "bad float");
        assert!(flags(&["--scale", "0"]).is_err(), "non-positive scale");
        assert!(flags(&["--scale", "NaN"]).is_err(), "NaN scale");
        assert!(flags(&["--delta-days", "-1"]).is_err(), "negative delta");
        assert!(flags(&["--bogus"]).is_err(), "unknown flag");
    }
}
