//! Warm-start overlap sweep: iteration counts under full / partial / warm
//! initialization as the window overlap ratio grows.
//!
//! Overlap is set through the slide: `sw = delta * (1 - overlap)`, so at
//! 0% consecutive windows are disjoint (warm must fall back to full
//! seeding) and at 95% almost the whole window carries over. The sweep is
//! the committed-numbers source for the EXPERIMENTS.md warm-start table.

use crate::common::{time_postmortem_traced, workload, Opts};
use tempopr_core::{InitMode, KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::{Dataset, DAY};
use tempopr_telemetry::Telemetry;

/// The overlap ratios the sweep visits (fraction of each window shared
/// with its predecessor).
pub const OVERLAPS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.95];

fn median(mut xs: Vec<usize>) -> usize {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs the sweep on wiki-talk for SpMV and a batched SpMM, printing per
/// (overlap, mode): window count, total and median iterations, the number
/// of boundary windows warm-start seeded or declared degenerate, and wall
/// time. `--init-mode` narrows the sweep to one mode.
pub fn run(opts: &Opts) {
    println!("# Warm-start overlap sweep (scale = {})", opts.scale);
    println!(
        "{:<10} {:>8} {:>9} {:>8} {:<8} {:>11} {:>12} {:>7} {:>11} {:>9}",
        "kernel",
        "overlap",
        "sw_days",
        "windows",
        "mode",
        "iters_total",
        "iters_median",
        "seeded",
        "degenerate",
        "time_s"
    );
    let modes: Vec<InitMode> = match opts.init_mode {
        Some(m) => vec![m],
        None => vec![InitMode::Full, InitMode::Partial, InitMode::Warm],
    };
    let delta = 20 * DAY;
    for kernel in [KernelKind::SpMV, KernelKind::SpMM { lanes: 8 }] {
        for overlap in OVERLAPS {
            let sw = ((delta as f64) * (1.0 - overlap)).round().max(1.0) as i64;
            let (log, spec) = workload(Dataset::WikiTalk, sw, delta, opts);
            for &init_mode in &modes {
                let tele = Telemetry::enabled();
                // A user-supplied `--init-mode` already narrowed `modes`
                // to that one value, so the override in
                // `time_postmortem_traced` can only re-apply what the
                // sweep chose here.
                let cfg = PostmortemConfig {
                    kernel,
                    mode: ParallelMode::ApplicationLevel,
                    init_mode,
                    ..Default::default()
                };
                let (out, t) = time_postmortem_traced(&log, spec, cfg, opts, tele.clone());
                let report = tele.report();
                println!(
                    "{:<10} {:>7.0}% {:>9.2} {:>8} {:<8} {:>11} {:>12} {:>7} {:>11} {:>9.3}",
                    match kernel {
                        KernelKind::SpMV => "spmv".to_string(),
                        KernelKind::SpMM { lanes } => format!("spmm{lanes}"),
                        KernelKind::PushBlocking => "push".to_string(),
                    },
                    overlap * 100.0,
                    sw as f64 / DAY as f64,
                    spec.count,
                    match init_mode {
                        InitMode::Full => "full",
                        InitMode::Partial => "partial",
                        InitMode::Warm => "warm",
                    },
                    out.total_iterations(),
                    median(out.windows.iter().map(|w| w.stats.iterations).collect()),
                    report.counter("warmstart.seeded_windows"),
                    report.counter("warmstart.degenerate_windows"),
                    t.as_secs_f64(),
                );
            }
        }
    }
}
