//! One module per table/figure of the paper's evaluation.

pub mod durable;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod sweep;
pub mod table1;
pub mod tools;
pub mod warmstart;
