//! Figure 8: impact of the number of multi-window graphs.

use crate::common::{time_postmortem, time_streaming, workload_with_count, Opts, GRANULARITIES};
use crate::experiments::sweep::label_mode;
use tempopr_core::{KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::{Dataset, DAY};
use tempopr_kernel::{Partitioner, Scheduler};

/// wiki-talk, auto partitioner, sweeping the multi-window count over
/// {6, 32, 256, 512, 1024} for the three parallelization levels. Uses the
/// SpMV kernel: more parts shrink each SpMV's traversal (the effect the
/// paper's Fig. 8 shows saturating once parts are "large enough"), whereas
/// under SpMM more parts *starve the lanes* — the interplay is reported by
/// the `ablations` bench instead.
pub fn run(opts: &Opts) {
    let (log, spec) = workload_with_count(Dataset::WikiTalk, DAY / 2, 90 * DAY, 256, opts);
    println!(
        "# Figure 8: multi-window count sweep, wiki-talk, windows={} (scale = {})",
        spec.count, opts.scale
    );
    let (_, t_str) = time_streaming(&log, spec, opts);
    println!("# streaming baseline: {:.3}s", t_str.as_secs_f64());
    println!(
        "{:<18} {:>13} {:>12} {:>8} {:>10} {:>9}",
        "level", "multiwindows", "granularity", "index", "time_s", "speedup"
    );
    for mode in [
        ParallelMode::ApplicationLevel,
        ParallelMode::WindowLevel,
        ParallelMode::Nested,
    ] {
        for &mw in &[6usize, 32, 256, 512, 1024] {
            for &g in GRANULARITIES.iter().step_by(3) {
                // The window-index ablation: few wide parts make each
                // window's unindexed degree pass traverse many foreign
                // events, which the per-window index eliminates.
                for use_window_index in [true, false] {
                    let cfg = PostmortemConfig {
                        mode,
                        kernel: KernelKind::SpMV,
                        scheduler: Scheduler::new(Partitioner::Auto, g),
                        num_multiwindows: mw,
                        use_window_index,
                        ..Default::default()
                    };
                    let (_, t) = time_postmortem(&log, spec, cfg, opts);
                    println!(
                        "{:<18} {:>13} {:>12} {:>8} {:>10.3} {:>8.1}x",
                        label_mode(mode),
                        mw,
                        g,
                        if use_window_index { "yes" } else { "no" },
                        t.as_secs_f64(),
                        t_str.as_secs_f64() / t.as_secs_f64().max(1e-9)
                    );
                }
            }
        }
    }
}
