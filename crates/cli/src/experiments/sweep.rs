//! Figures 7, 9, 10: postmortem speedup over streaming, swept over
//! partitioner × granularity × parallelization level × SpMV/SpMM, on
//! wiki-talk with a fixed window count.

use crate::common::{time_postmortem, time_streaming, workload_with_count, Opts, GRANULARITIES};
use tempopr_core::{KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::{Dataset, DAY};
use tempopr_kernel::{Partitioner, Scheduler};

/// One of the three sweep figures.
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Figure number (7, 9, or 10).
    pub figure: u32,
    /// Sliding offset in seconds.
    pub sw: i64,
    /// Window size in seconds.
    pub delta: i64,
    /// Fixed window count.
    pub windows: usize,
    /// SpMM lanes ("SpMM load 16 Pagerank vectors").
    pub lanes: usize,
}

/// Fig. 7: sw = 43 200 s, δ = 90 d, 256 windows.
pub fn fig7() -> SweepParams {
    SweepParams {
        figure: 7,
        sw: DAY / 2,
        delta: 90 * DAY,
        windows: 256,
        lanes: 16,
    }
}

/// Fig. 9: sw = 43 200 s, δ = 10 d, 6 windows.
pub fn fig9() -> SweepParams {
    SweepParams {
        figure: 9,
        sw: DAY / 2,
        delta: 10 * DAY,
        windows: 6,
        lanes: 16,
    }
}

/// Fig. 10: sw = 86 400 s, δ = 90 d, 1 024 windows.
pub fn fig10() -> SweepParams {
    SweepParams {
        figure: 10,
        sw: DAY,
        delta: 90 * DAY,
        windows: 1024,
        lanes: 16,
    }
}

/// Runs the sweep and prints one row per configuration:
/// partitioner, level, kernel, granularity, time, speedup over streaming.
pub fn run(p: SweepParams, opts: &Opts) {
    let (log, spec) = workload_with_count(Dataset::WikiTalk, p.sw, p.delta, p.windows, opts);
    println!(
        "# Figure {}: wiki-talk sweep, sw={}, delta={}d, windows={} (scale = {}, simd = {:?}, compaction = {}, balance = {})",
        p.figure,
        p.sw,
        p.delta / DAY,
        spec.count,
        opts.scale,
        opts.simd,
        opts.compaction,
        if opts.edge_balance { "edge" } else { "vertex" }
    );
    let (_, t_str) = time_streaming(&log, spec, opts);
    println!("# streaming baseline: {:.3}s", t_str.as_secs_f64());
    println!(
        "{:<8} {:<18} {:<6} {:>12} {:>10} {:>9}",
        "part", "level", "kernel", "granularity", "time_s", "speedup"
    );
    let multiwindows = 0; // automatic (engine sizes parts per kernel)
    for partitioner in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
        for mode in [
            ParallelMode::Nested,
            ParallelMode::ApplicationLevel,
            ParallelMode::WindowLevel,
        ] {
            for kernel in [KernelKind::SpMM { lanes: p.lanes }, KernelKind::SpMV] {
                for &g in GRANULARITIES.iter() {
                    let cfg = PostmortemConfig {
                        mode,
                        kernel,
                        scheduler: Scheduler::new(partitioner, g),
                        num_multiwindows: multiwindows,
                        ..Default::default()
                    };
                    let (_, t) = time_postmortem(&log, spec, cfg, opts);
                    println!(
                        "{:<8} {:<18} {:<6} {:>12} {:>10.3} {:>8.1}x",
                        label_part(partitioner),
                        label_mode(mode),
                        label_kernel(kernel),
                        g,
                        t.as_secs_f64(),
                        t_str.as_secs_f64() / t.as_secs_f64().max(1e-9)
                    );
                }
            }
        }
    }
}

pub(crate) fn label_part(p: Partitioner) -> &'static str {
    match p {
        Partitioner::Auto => "auto",
        Partitioner::Simple => "simple",
        Partitioner::Static => "static",
    }
}

pub(crate) fn label_mode(m: ParallelMode) -> &'static str {
    match m {
        ParallelMode::Sequential => "sequential",
        ParallelMode::WindowLevel => "window-level",
        ParallelMode::ApplicationLevel => "pr-level",
        ParallelMode::Nested => "nested",
    }
}

pub(crate) fn label_kernel(k: KernelKind) -> &'static str {
    match k {
        KernelKind::SpMV => "spmv",
        KernelKind::SpMM { .. } => "spmm",
        KernelKind::PushBlocking => "block",
    }
}
