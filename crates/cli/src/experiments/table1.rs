//! Table 1: graphs and parameters.

use crate::common::Opts;
use tempopr_datagen::{Dataset, DAY};

/// Prints the dataset inventory with full and scaled sizes plus the
/// (sw, δ) grids.
pub fn run(opts: &Opts) {
    println!("# Table 1: Graphs and Parameters (scale = {})", opts.scale);
    println!(
        "{:<24} {:>12} {:>12} {:>10} {:<22} window sizes (days)",
        "name", "events(full)", "events(run)", "vertices", "sliding offsets"
    );
    for d in Dataset::all() {
        let s = d.spec();
        let sws: Vec<String> = s
            .sliding_offsets
            .iter()
            .map(|&x| {
                if x % DAY == 0 {
                    format!("{}d", x / DAY)
                } else {
                    format!("{}h", x / 3600)
                }
            })
            .collect();
        let deltas: Vec<String> = s
            .window_sizes
            .iter()
            .map(|&x| (x / DAY).to_string())
            .collect();
        println!(
            "{:<24} {:>12} {:>12} {:>10} {:<22} {}",
            d.name(),
            s.full_events,
            s.scaled_events(opts.scale),
            s.scaled_vertices(opts.scale),
            sws.join(","),
            deltas.join(",")
        );
    }
}
