//! User-facing tool subcommands beyond the paper's figures: run the
//! analyses on your own event files and convert between formats.

use crate::common::{fail, parse_dataset, warn_if_degraded, Opts};
use tempopr_core::{PostmortemConfig, PostmortemEngine, RetainMode};
use tempopr_datagen::DAY;
use tempopr_graph::{io, EventLog, ParseMode, WindowSpec};

/// Loads an event log from a path, picking the format by extension
/// (`.bin` = binary, anything else = text). With `lenient`, malformed
/// text lines (and trailing bytes after a binary file's declared records)
/// are skipped and the ingest report is echoed to stderr.
fn load(path: &str, lenient: bool) -> EventLog {
    let mode = if lenient {
        ParseMode::Lenient {
            max_bad_records: usize::MAX,
        }
    } else {
        ParseMode::Strict
    };
    let result = if path.ends_with(".bin") {
        io::read_binary_file_report(path, mode)
    } else {
        io::read_text_file_report(path, mode)
    };
    match result {
        Ok((log, report)) => {
            if lenient || !report.is_clean() {
                eprintln!("{path}: {}", report.summary());
            }
            log
        }
        Err(e) => fail(format!("failed to read {path}: {e}")),
    }
}

/// `tempopr convert <in> <out> [--lenient]`: converts between the text and
/// binary event formats (directions inferred from extensions).
pub fn convert(input: &str, output: &str, lenient: bool) {
    let log = load(input, lenient);
    let result = if output.ends_with(".bin") {
        io::write_binary_file(&log, output)
    } else {
        io::write_text_file(&log, output)
    };
    if let Err(e) = result {
        fail(format!("failed to write {output}: {e}"));
    }
    println!(
        "wrote {} events over {} vertices to {output}",
        log.len(),
        log.num_vertices()
    );
}

/// `tempopr pagerank <file-or-dataset> --delta-days D --sw-days S`:
/// postmortem PageRank time series with the top vertex per window.
pub fn pagerank(
    source: &str,
    delta_days: i64,
    sw_days: i64,
    top: usize,
    lenient: bool,
    opts: &Opts,
) {
    let log = match parse_dataset(source) {
        Some(d) => d.spec().generate(opts.scale, opts.seed),
        None => load(source, lenient),
    };
    let spec_result = WindowSpec::covering(&log, delta_days * DAY, sw_days * DAY);
    let mut spec = spec_result.unwrap_or_else(|e| fail(format!("window parameters: {e}")));
    if opts.max_windows > 0 {
        spec.count = spec.count.min(opts.max_windows);
    }
    let cfg = PostmortemConfig {
        retain: RetainMode::Full,
        threads: opts.threads,
        ..tempopr_core::suggest(&log, &spec, opts.threads)
    };
    let engine = PostmortemEngine::new(&log, spec, cfg)
        .unwrap_or_else(|e| fail(format!("engine build: {e}")));
    let out = engine.run();
    warn_if_degraded("postmortem", &out);
    println!(
        "# postmortem pagerank: {} events, {} vertices, {} windows (delta={}d, sw={}d)",
        log.len(),
        log.num_vertices(),
        spec.count,
        delta_days,
        sw_days
    );
    println!(
        "{:<8} {:>10} {:>6}  top-{top}",
        "window", "vertices", "iters"
    );
    for w in &out.windows {
        if let tempopr_core::WindowStatus::Failed { diagnostic } = &w.status {
            println!("{:<8} FAILED: {diagnostic}", w.window);
            continue;
        }
        let Some(ranks) = w.ranks.as_ref() else {
            continue;
        };
        let mut pairs: Vec<(u32, f64)> = ranks
            .vertices
            .iter()
            .copied()
            .zip(ranks.values.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs.truncate(top);
        let tops: Vec<String> = pairs
            .into_iter()
            .map(|(v, r)| format!("{v}:{r:.4}"))
            .collect();
        println!(
            "{:<8} {:>10} {:>6}  {}",
            w.window,
            w.stats.active_vertices,
            w.stats.iterations,
            tops.join(" ")
        );
    }
}

/// `tempopr structure <file-or-dataset> --delta-days D --sw-days S`:
/// per-window structure metrics (components, k-core, triangles).
pub fn structure(source: &str, delta_days: i64, sw_days: i64, lenient: bool, opts: &Opts) {
    let log = match parse_dataset(source) {
        Some(d) => d.spec().generate(opts.scale, opts.seed),
        None => load(source, lenient),
    };
    let spec_result = WindowSpec::covering(&log, delta_days * DAY, sw_days * DAY);
    let mut spec = spec_result.unwrap_or_else(|e| fail(format!("window parameters: {e}")));
    if opts.max_windows > 0 {
        spec.count = spec.count.min(opts.max_windows);
    }
    let summaries = tempopr_analytics::temporal_structure(
        &log,
        spec,
        &tempopr_analytics::StructureConfig::default(),
    )
    .unwrap_or_else(|e| fail(format!("analysis: {e}")));
    println!(
        "# temporal structure: {} events, {} windows (delta={}d, sw={}d)",
        log.len(),
        spec.count,
        delta_days,
        sw_days
    );
    println!(
        "{:>6} {:>9} {:>9} {:>7} {:>8} {:>11} {:>8} {:>5} {:>10}",
        "window",
        "vertices",
        "edges",
        "maxdeg",
        "meandeg",
        "components",
        "largest",
        "core",
        "triangles"
    );
    for s in &summaries {
        println!(
            "{:>6} {:>9} {:>9} {:>7} {:>8.2} {:>11} {:>8} {:>5} {:>10}",
            s.window,
            s.active_vertices,
            s.edges,
            s.max_degree,
            s.mean_degree,
            s.components.unwrap_or(0),
            s.largest_component.unwrap_or(0),
            s.degeneracy.unwrap_or(0),
            s.triangles.unwrap_or(0),
        );
    }
}
