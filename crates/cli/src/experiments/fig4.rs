//! Figure 4: temporal edge distribution over the time period.

use crate::common::{fail, parse_dataset, Opts};
use tempopr_datagen::{Dataset, DAY};

/// Prints, for each dataset, the event count in each of 40 equal time bins
/// — the series behind Fig. 4's seven panels.
pub fn run(opts: &Opts, only: Option<&str>) {
    println!(
        "# Figure 4: temporal edge distribution (scale = {})",
        opts.scale
    );
    println!("{:<24} {:>10} {:>12}", "dataset", "bin_day", "events");
    let datasets: Vec<Dataset> = match only {
        Some(name) => {
            vec![parse_dataset(name).unwrap_or_else(|| fail(format!("unknown dataset: {name}")))]
        }
        None => Dataset::all().to_vec(),
    };
    const BINS: usize = 40;
    for d in datasets {
        let spec = d.spec();
        let log = spec.generate(opts.scale, opts.seed);
        let span = spec.span_seconds().max(1);
        let mut bins = vec![0usize; BINS];
        for e in log.events() {
            let i = ((e.t as u128 * BINS as u128) / (span as u128 + 1)) as usize;
            bins[i.min(BINS - 1)] += 1;
        }
        for (i, &c) in bins.iter().enumerate() {
            let day = (i as i64 * span / BINS as i64) / DAY;
            println!("{:<24} {:>10} {:>12}", d.name(), day, c);
        }
    }
}
