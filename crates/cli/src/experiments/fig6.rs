//! Figure 6: impact of partial initialization (full/partial speedup).

use crate::common::{time_postmortem, workload, Opts};
use tempopr_core::{InitMode, KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::{Dataset, DAY};

/// Runs postmortem PageRank with and without partial initialization on
/// stackoverflow and wiki-talk (sw = 43 200 s) over the paper's window
/// sizes, reporting the full/partial time ratio and iteration counts.
pub fn run(opts: &Opts) {
    println!(
        "# Figure 6: partial initialization speedup (scale = {})",
        opts.scale
    );
    println!(
        "{:<24} {:>12} {:>8} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "dataset",
        "delta_days",
        "windows",
        "full_s",
        "partial_s",
        "speedup",
        "iters_full",
        "iters_part"
    );
    for dataset in [Dataset::StackOverflow, Dataset::WikiTalk] {
        for delta_days in [10i64, 15, 90, 180] {
            let (log, spec) = workload(dataset, DAY / 2, delta_days * DAY, opts);
            let base = PostmortemConfig {
                kernel: KernelKind::SpMV,
                mode: ParallelMode::ApplicationLevel,
                ..Default::default()
            };
            let (out_full, t_full) = time_postmortem(
                &log,
                spec,
                PostmortemConfig {
                    init_mode: InitMode::Full,
                    ..base.clone()
                },
                opts,
            );
            let (out_part, t_part) = time_postmortem(
                &log,
                spec,
                PostmortemConfig {
                    init_mode: InitMode::Partial,
                    ..base
                },
                opts,
            );
            println!(
                "{:<24} {:>12} {:>8} {:>10.3} {:>10.3} {:>8.2}x {:>11} {:>11}",
                dataset.name(),
                delta_days,
                spec.count,
                t_full.as_secs_f64(),
                t_part.as_secs_f64(),
                t_full.as_secs_f64() / t_part.as_secs_f64().max(1e-9),
                out_full.total_iterations(),
                out_part.total_iterations(),
            );
        }
    }
}
