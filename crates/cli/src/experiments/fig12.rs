//! Figure 12: postmortem performance with the advisor's suggested
//! parameters on wiki-talk.

use crate::common::{time_postmortem, time_streaming, workload, Opts};
use tempopr_core::suggest;
use tempopr_datagen::{Dataset, DAY};

/// Runs the §6.3.6 rules (SpMM, auto partitioner with small granularity,
/// level chosen from the measured load balance) across the wiki-talk grid.
pub fn run(opts: &Opts) {
    println!(
        "# Figure 12: suggested parameters on wiki-talk (scale = {})",
        opts.scale
    );
    println!(
        "{:<8} {:>11} {:>8} {:>12} {:>12} {:>9}  chosen",
        "sw_s", "delta_days", "windows", "streaming_s", "suggested_s", "speedup"
    );
    let dataset = Dataset::WikiTalk;
    for (sw, delta) in dataset.spec().param_grid() {
        let (log, spec) = workload(dataset, sw, delta, opts);
        let (_, t_str) = time_streaming(&log, spec, opts);
        let cfg = suggest(&log, &spec, opts.threads);
        let (_, t) = time_postmortem(&log, spec, cfg.clone(), opts);
        println!(
            "{:<8} {:>11} {:>8} {:>12.3} {:>12.3} {:>8.0}x  mode={:?} mw={}",
            sw,
            delta / DAY,
            spec.count,
            t_str.as_secs_f64(),
            t.as_secs_f64(),
            t_str.as_secs_f64() / t.as_secs_f64().max(1e-9),
            cfg.mode,
            cfg.num_multiwindows,
        );
    }
}
