//! `tempopr run` — the durable window runner: execute any of the three
//! drivers over a synthetic workload with checkpoint/resume
//! ([`tempopr_core::checkpoint`]), crash injection for testing, and an
//! exit code that distinguishes clean, degraded-but-recovered, and failed
//! runs.
//!
//! This is the harness the `crash-resume` CI job drives: kill a run at
//! window *k* (`--crash-at`), resume it (`--resume`), and diff the printed
//! per-window fingerprints against an uninterrupted run.

use crate::common::{fail, parse_dataset, pr_config, workload, Opts};
use tempopr_core::{
    CheckpointOptions, OfflineConfig, PostmortemConfig, PostmortemEngine, RecoveryPolicy,
    RetainMode, RunOutput, WindowStatus,
};
use tempopr_datagen::{Dataset, DAY};
use tempopr_stream::{run_streaming_durable, StreamingConfig};
use tempopr_telemetry::Telemetry;

/// Which execution model `tempopr run` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// The postmortem engine (in-order bare-bone configuration, so resume
    /// is supported).
    #[default]
    Postmortem,
    /// The offline rebuild-per-window baseline.
    Offline,
    /// The streaming store-replay baseline.
    Streaming,
}

impl Driver {
    /// Parses a `--driver` value.
    pub fn parse(s: &str) -> Option<Driver> {
        Some(match s {
            "postmortem" => Driver::Postmortem,
            "offline" => Driver::Offline,
            "streaming" => Driver::Streaming,
            _ => return None,
        })
    }
}

/// Durability/recovery arguments of `tempopr run` (parsed in `main`).
#[derive(Debug, Clone, Default)]
pub struct DurableArgs {
    /// Execution model to run.
    pub driver: Driver,
    /// Checkpoint directory to write (`--checkpoint-dir`).
    pub checkpoint_dir: Option<String>,
    /// Flush cadence in windows (`--checkpoint-every`, default 1).
    pub checkpoint_every: usize,
    /// Checkpoint directory to resume from (`--resume`).
    pub resume: Option<String>,
    /// Recovery rungs: `Some(true)` = full ladder, `Some(false)` =
    /// fail-only, `None` = the driver's default.
    pub recovery_ladder: Option<bool>,
    /// Abort the process after window k's record is durable
    /// (`--crash-at`; testing).
    pub crash_at: Option<usize>,
}

/// Process exit code for a completed run: 0 clean, 3 degraded but every
/// window recovered, 4 at least one window failed.
pub fn exit_code(out: &RunOutput) -> i32 {
    let mut code = 0;
    for w in &out.windows {
        match w.status {
            WindowStatus::Ok => {}
            WindowStatus::Recovered { .. } => code = code.max(3),
            WindowStatus::Failed { .. } => code = code.max(4),
        }
    }
    code
}

/// Runs one driver durably and exits with [`exit_code`].
pub fn run(opts: &Opts, dataset: Option<&str>, args: &DurableArgs, sw_days: i64, delta_days: i64) {
    let ds = match dataset {
        Some(name) => {
            parse_dataset(name).unwrap_or_else(|| fail(format!("unknown dataset '{name}'")))
        }
        None => Dataset::Enron,
    };
    let (log, spec) = workload(ds, sw_days * DAY, delta_days * DAY, opts);
    let ckpt = CheckpointOptions {
        dir: args.checkpoint_dir.clone().map(Into::into),
        every: args.checkpoint_every.max(1),
        resume: args.resume.clone().map(Into::into),
    };
    let tele = if opts.metrics_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::noop()
    };
    let out = match args.driver {
        Driver::Postmortem => {
            let mut cfg = PostmortemConfig::bare_bone();
            cfg.retain = RetainMode::Summary;
            cfg.threads = opts.threads;
            cfg.pr = pr_config();
            cfg.pr.simd = opts.simd;
            cfg.pr.compaction = opts.compaction;
            cfg.pipeline = opts.pipeline;
            if let Some(init_mode) = opts.init_mode {
                cfg.init_mode = init_mode;
            }
            if let Some(ladder) = args.recovery_ladder {
                cfg.recovery = recovery(ladder);
            }
            cfg.faults.crash_after_checkpoint = args.crash_at;
            let engine = PostmortemEngine::with_telemetry(&log, spec, cfg, tele.clone())
                .unwrap_or_else(|e| fail(format!("engine build: {e}")));
            engine
                .run_durable(&ckpt)
                .unwrap_or_else(|e| fail(format!("postmortem run: {e}")))
        }
        Driver::Offline => {
            let mut cfg = OfflineConfig {
                pr: pr_config(),
                retain: RetainMode::Summary,
                threads: opts.threads,
                ..Default::default()
            };
            if let Some(ladder) = args.recovery_ladder {
                cfg.recovery = recovery(ladder);
            }
            cfg.faults.crash_after_checkpoint = args.crash_at;
            tempopr_core::run_offline_durable(&log, spec, &cfg, &ckpt, &tele)
                .unwrap_or_else(|e| fail(format!("offline run: {e}")))
        }
        Driver::Streaming => {
            let mut cfg = StreamingConfig {
                pr: pr_config(),
                retain: RetainMode::Summary,
                threads: opts.threads,
                ..Default::default()
            };
            if let Some(ladder) = args.recovery_ladder {
                cfg.recovery = recovery(ladder);
            }
            cfg.faults.crash_after_checkpoint = args.crash_at;
            run_streaming_durable(&log, spec, &cfg, &ckpt, &tele)
                .unwrap_or_else(|e| fail(format!("streaming run: {e}")))
        }
    };
    println!(
        "# run: driver={:?} dataset={} windows={} resumed_from={}",
        args.driver,
        ds.name(),
        spec.count,
        args.resume.as_deref().unwrap_or("-"),
    );
    println!("{:>8} {:>10} {:>18}", "window", "status", "fingerprint");
    for w in &out.windows {
        let status = match &w.status {
            WindowStatus::Ok => "ok",
            WindowStatus::Recovered { .. } => "recovered",
            WindowStatus::Failed { .. } => "failed",
        };
        println!(
            "{:>8} {:>10} {:>18}",
            w.window,
            status,
            format!("{:016x}", w.fingerprint.to_bits())
        );
    }
    if let Some(path) = &opts.metrics_out {
        crate::common::write_metrics(path, &tele);
    }
    std::process::exit(exit_code(&out));
}

/// Maps the `--recovery` choice onto a policy.
fn recovery(ladder: bool) -> RecoveryPolicy {
    if ladder {
        RecoveryPolicy::ladder()
    } else {
        RecoveryPolicy::fail_only()
    }
}
