//! Figure 5: performance of Offline, Streaming, and Postmortem PageRank.
//!
//! Postmortem runs the paper's "bare-bone" configuration: partial
//! initialization, 6 multi-window graphs, application-level parallelism,
//! static scheduler — deliberately untuned.

use crate::common::{
    secs, time_offline, time_postmortem_traced, time_streaming, workload, write_metrics, Opts,
};
use tempopr_core::PostmortemConfig;
use tempopr_datagen::{Dataset, DAY};
use tempopr_telemetry::Telemetry;

/// The paper's four panels: (dataset, sw, window sizes).
fn panels() -> Vec<(Dataset, i64, Vec<i64>)> {
    vec![
        (Dataset::Enron, 2 * DAY, vec![730 * DAY, 1460 * DAY]),
        (Dataset::Youtube, DAY, vec![60 * DAY, 90 * DAY]),
        (Dataset::Epinions, DAY, vec![60 * DAY, 90 * DAY]),
        (
            Dataset::WikiTalk,
            3 * DAY,
            vec![10 * DAY, 15 * DAY, 90 * DAY, 180 * DAY],
        ),
    ]
}

/// Runs all three models on the four panels and prints their wall times.
pub fn run(opts: &Opts) {
    println!(
        "# Figure 5: Offline vs Streaming vs Postmortem (scale = {})",
        opts.scale
    );
    println!(
        "{:<24} {:>8} {:>12} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "dataset",
        "sw_days",
        "delta_days",
        "windows",
        "offline_s",
        "streaming_s",
        "postmortem_s",
        "pm_vs_str",
        "pm_vs_off"
    );
    // One sink accumulates across every panel's postmortem run; enabling
    // it is opt-in via --metrics-out (observation is bit-identical but
    // costs trace memory).
    let tele = if opts.metrics_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::noop()
    };
    for (dataset, sw, deltas) in panels() {
        for delta in deltas {
            let (log, spec) = workload(dataset, sw, delta, opts);
            let (_, t_off) = time_offline(&log, spec, opts);
            let (_, t_str) = time_streaming(&log, spec, opts);
            let (_, t_pm) = time_postmortem_traced(
                &log,
                spec,
                PostmortemConfig::bare_bone(),
                opts,
                tele.clone(),
            );
            println!(
                "{:<24} {:>8} {:>12} {:>8} {:>12} {:>12} {:>12} {:>9.1}x {:>9.1}x",
                dataset.name(),
                sw / DAY,
                delta / DAY,
                spec.count,
                secs(t_off),
                secs(t_str),
                secs(t_pm),
                t_str.as_secs_f64() / t_pm.as_secs_f64().max(1e-9),
                t_off.as_secs_f64() / t_pm.as_secs_f64().max(1e-9),
            );
        }
    }
    if let Some(path) = &opts.metrics_out {
        println!("\n## Postmortem phase breakdown (all panels)");
        println!("{}", tele.report().summary_table());
        write_metrics(path, &tele);
    }
}
