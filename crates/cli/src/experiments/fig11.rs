//! Figure 11: best postmortem speedup over streaming, across each
//! dataset's full (sw, δ) grid.

use crate::common::{fail, parse_dataset, time_postmortem, time_streaming, workload, Opts};
use tempopr_core::{KernelKind, ParallelMode, PostmortemConfig};
use tempopr_datagen::{Dataset, DAY};
use tempopr_kernel::{Partitioner, Scheduler};

/// For every (sw, δ) cell of a dataset's Table 1 grid, times streaming once
/// and takes the best postmortem time over a small configuration sweep
/// (3 levels × 2 kernels, auto partitioner, g = 2), printing the heatmap
/// cell value.
pub fn run(opts: &Opts, only: Option<&str>) {
    println!(
        "# Figure 11: best postmortem speedup over streaming (scale = {})",
        opts.scale
    );
    println!(
        "{:<24} {:>8} {:>11} {:>8} {:>12} {:>12} {:>9}",
        "dataset", "sw_s", "delta_days", "windows", "streaming_s", "best_pm_s", "speedup"
    );
    let datasets: Vec<Dataset> = match only {
        Some(name) => {
            vec![parse_dataset(name).unwrap_or_else(|| fail(format!("unknown dataset: {name}")))]
        }
        None => Dataset::all().to_vec(),
    };
    for dataset in datasets {
        for (sw, delta) in dataset.spec().param_grid() {
            let (log, spec) = workload(dataset, sw, delta, opts);
            let (_, t_str) = time_streaming(&log, spec, opts);
            let mut best = f64::INFINITY;
            let mw = 0; // automatic (engine sizes parts per kernel)
            for mode in [
                ParallelMode::Nested,
                ParallelMode::ApplicationLevel,
                ParallelMode::WindowLevel,
            ] {
                for kernel in [KernelKind::SpMM { lanes: 16 }, KernelKind::SpMV] {
                    let cfg = PostmortemConfig {
                        mode,
                        kernel,
                        scheduler: Scheduler::new(Partitioner::Auto, 2),
                        num_multiwindows: mw,
                        ..Default::default()
                    };
                    let (_, t) = time_postmortem(&log, spec, cfg, opts);
                    best = best.min(t.as_secs_f64());
                }
            }
            println!(
                "{:<24} {:>8} {:>11} {:>8} {:>12.3} {:>12.3} {:>8.0}x",
                dataset.name(),
                sw,
                delta / DAY,
                spec.count,
                t_str.as_secs_f64(),
                best,
                t_str.as_secs_f64() / best.max(1e-9)
            );
        }
    }
}
