//! The sliding-window model (paper §2.1, Fig. 1).
//!
//! A temporal analysis looks at the sequence of graphs
//! `G_i = G(T_i, T_i + δ)` with `T_i = T_0 + i·sw`: a window of fixed width
//! `δ` slid forward by `sw` time units per step. [`WindowSpec`] captures the
//! parameters, [`TimeRange`] a single window's `[start, end]` span.

use crate::error::GraphError;
use crate::events::{EventLog, Timestamp};

/// An inclusive time interval `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive lower bound `Ts`.
    pub start: Timestamp,
    /// Inclusive upper bound `Te`.
    pub end: Timestamp,
}

impl TimeRange {
    /// Constructs a range; `start` may exceed `end`, yielding an empty range.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange { start, end }
    }

    /// Whether `t` falls inside the window (`Ts <= t <= Te`).
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the range contains no timestamps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start > self.end
    }

    /// The smallest range covering both `self` and `other`.
    #[inline]
    pub fn hull(&self, other: &TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether the two ranges share at least one timestamp.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start <= other.end && other.start <= self.end
    }
}

/// Parameters of the sliding-window sequence: origin `T0`, window width `δ`,
/// sliding offset `sw`, and the number of windows `m + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Start time of the first window (`T0`).
    pub t0: Timestamp,
    /// Window width `δ` (time units).
    pub delta: Timestamp,
    /// Sliding offset `sw` (time units).
    pub sw: Timestamp,
    /// Number of windows in the sequence (`m + 1`).
    pub count: usize,
}

impl WindowSpec {
    /// Builds a spec with an explicit window count.
    pub fn new(
        t0: Timestamp,
        delta: Timestamp,
        sw: Timestamp,
        count: usize,
    ) -> Result<Self, GraphError> {
        if delta <= 0 {
            return Err(GraphError::InvalidWindowSpec(format!(
                "window width delta must be positive, got {delta}"
            )));
        }
        if sw <= 0 {
            return Err(GraphError::InvalidWindowSpec(format!(
                "sliding offset sw must be positive, got {sw}"
            )));
        }
        if count == 0 {
            return Err(GraphError::InvalidWindowSpec(
                "window count must be at least 1".into(),
            ));
        }
        Ok(WindowSpec {
            t0,
            delta,
            sw,
            count,
        })
    }

    /// Builds the spec covering an event log: `T0` is the first event's
    /// timestamp and windows are generated while the window start does not
    /// exceed the last event's timestamp (paper: "`T0` is set by the
    /// beginning of the dataset").
    ///
    /// ```
    /// use tempopr_graph::{Event, EventLog, WindowSpec};
    /// let log = EventLog::from_unsorted(
    ///     (0..10).map(|i| Event::new(i, (i + 1) % 10, i as i64 * 10)).collect(),
    ///     10,
    /// ).unwrap();
    /// // Width-30 windows sliding by 20: starts at 0, 20, 40, 60, 80.
    /// let spec = WindowSpec::covering(&log, 30, 20).unwrap();
    /// assert_eq!(spec.count, 5);
    /// assert_eq!(spec.window(1).start, 20);
    /// assert_eq!(spec.window(1).end, 50);
    /// ```
    pub fn covering(log: &EventLog, delta: Timestamp, sw: Timestamp) -> Result<Self, GraphError> {
        let t0 = log.first_time();
        let t_last = log.last_time();
        // Validate before the division below; Self::new re-checks and
        // produces the error messages.
        if delta <= 0 || sw <= 0 {
            return Self::new(t0, delta, sw, 1);
        }
        let m = ((t_last - t0) / sw) as usize;
        Self::new(t0, delta, sw, m + 1)
    }

    /// The `i`-th window `[T0 + i*sw, T0 + i*sw + δ]`.
    ///
    /// # Panics
    /// Panics if `i >= count`.
    #[inline]
    pub fn window(&self, i: usize) -> TimeRange {
        assert!(
            i < self.count,
            "window index {i} out of range {}",
            self.count
        );
        let start = self.t0 + (i as Timestamp) * self.sw;
        TimeRange::new(start, start + self.delta)
    }

    /// Iterates over all windows in order.
    pub fn windows(&self) -> impl Iterator<Item = TimeRange> + '_ {
        (0..self.count).map(move |i| self.window(i))
    }

    /// The hull `[T0, T0 + (count-1)*sw + δ]` spanning every window.
    pub fn span(&self) -> TimeRange {
        self.window(0).hull(&self.window(self.count - 1))
    }

    /// The hull spanning windows `range.start..range.end` (used by
    /// multi-window graphs).
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn span_of(&self, range: std::ops::Range<usize>) -> TimeRange {
        assert!(
            range.start < range.end && range.end <= self.count,
            "invalid window range {range:?} for {} windows",
            self.count
        );
        self.window(range.start).hull(&self.window(range.end - 1))
    }

    /// Whether consecutive windows overlap (`sw < δ`), i.e. each graph
    /// shares edges with its predecessor — the regime where partial
    /// initialization pays off.
    #[inline]
    pub fn overlapping(&self) -> bool {
        self.sw < self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn small_log() -> EventLog {
        EventLog::from_sorted(
            vec![
                Event::new(0, 1, 100),
                Event::new(1, 2, 150),
                Event::new(2, 3, 260),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn time_range_contains_is_inclusive() {
        let r = TimeRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
        assert!(!r.is_empty());
        assert!(TimeRange::new(5, 4).is_empty());
    }

    #[test]
    fn hull_and_overlap() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 20);
        let c = TimeRange::new(11, 12);
        assert_eq!(a.hull(&b), TimeRange::new(0, 20));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::new(0, 0, 1, 1).is_err());
        assert!(WindowSpec::new(0, 1, 0, 1).is_err());
        assert!(WindowSpec::new(0, 1, 1, 0).is_err());
        assert!(WindowSpec::new(0, 1, 1, 1).is_ok());
    }

    #[test]
    fn covering_counts_windows() {
        let log = small_log();
        // t0 = 100, last = 260, sw = 50 => m = 3 => 4 windows.
        let spec = WindowSpec::covering(&log, 80, 50).unwrap();
        assert_eq!(spec.t0, 100);
        assert_eq!(spec.count, 4);
        assert_eq!(spec.window(0), TimeRange::new(100, 180));
        assert_eq!(spec.window(3), TimeRange::new(250, 330));
        // Last window start (250) <= last event (260); a 5th would start at
        // 300 > 260.
    }

    #[test]
    fn covering_single_window_when_sw_large() {
        let log = small_log();
        let spec = WindowSpec::covering(&log, 10, 1000).unwrap();
        assert_eq!(spec.count, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_index_out_of_range_panics() {
        let spec = WindowSpec::new(0, 10, 5, 3).unwrap();
        let _ = spec.window(3);
    }

    #[test]
    fn span_and_span_of() {
        let spec = WindowSpec::new(0, 10, 5, 4).unwrap();
        assert_eq!(spec.span(), TimeRange::new(0, 25));
        assert_eq!(spec.span_of(1..3), TimeRange::new(5, 20));
    }

    #[test]
    fn overlapping_flag() {
        assert!(WindowSpec::new(0, 10, 5, 2).unwrap().overlapping());
        assert!(!WindowSpec::new(0, 5, 10, 2).unwrap().overlapping());
    }

    #[test]
    fn windows_iterator_matches_indexing() {
        let spec = WindowSpec::new(7, 9, 4, 5).unwrap();
        let via_iter: Vec<_> = spec.windows().collect();
        let via_index: Vec<_> = (0..5).map(|i| spec.window(i)).collect();
        assert_eq!(via_iter, via_index);
    }
}
