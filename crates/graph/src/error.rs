//! Error types for temporal graph construction.

use std::fmt;

/// Errors produced while validating events or building graph representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The event log contains no events.
    EmptyEvents,
    /// An event references a vertex id outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The declared number of vertices.
        num_vertices: usize,
    },
    /// A window specification is degenerate (non-positive width or offset,
    /// or zero windows).
    InvalidWindowSpec(String),
    /// A multi-window partition was requested with zero parts.
    ZeroMultiWindows,
    /// A self-loop event `(u, u, t)` was encountered where disallowed.
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: u32,
        /// The event timestamp.
        time: i64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyEvents => write!(f, "event log is empty"),
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidWindowSpec(msg) => write!(f, "invalid window spec: {msg}"),
            GraphError::ZeroMultiWindows => {
                write!(f, "multi-window partition requires at least one part")
            }
            GraphError::SelfLoop { vertex, time } => {
                write!(f, "self-loop on vertex {vertex} at time {time}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(GraphError::EmptyEvents.to_string(), "event log is empty");
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("4 vertices"));
        let e = GraphError::InvalidWindowSpec("sw must be positive".into());
        assert!(e.to_string().contains("sw must be positive"));
        let e = GraphError::SelfLoop { vertex: 3, time: 7 };
        assert!(e.to_string().contains("vertex 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::EmptyEvents);
    }
}
