//! Multi-window graphs (paper §4.1).
//!
//! When the analysis spans many windows, the full temporal CSR stores every
//! event, so a single SpMV costs `Θ(|Events|)` regardless of how few edges a
//! particular window has. The fix is to partition the window sequence into
//! `Y` *multi-window graphs*, each a temporal CSR over only the events whose
//! timestamps fall in its group's time span, with vertices renumbered to a
//! dense local id space. SpMV for a window then costs `Θ(|E_w|)` of its
//! multi-window, at the price of duplicating events that straddle group
//! boundaries (`Σ_w |E_w| >= |Events|`).

use crate::error::GraphError;
use crate::events::{Event, EventLog, VertexId};
use crate::tcsr::TemporalCsr;
use crate::window::{TimeRange, WindowSpec};
use crate::windowindex::{WindowIndex, WindowIndexView};
use std::ops::Range;
use std::sync::OnceLock;

/// How windows are grouped into multi-window graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Equal number of windows per group — the paper's scheme
    /// ("we distribute the graphs uniformly to the multi-window graphs").
    #[default]
    EqualWindows,
    /// Group boundaries chosen so groups hold roughly equal numbers of
    /// events — the balanced decomposition the paper's §7 leaves as future
    /// work.
    EqualEvents,
}

/// One multi-window graph: a contiguous group of windows plus the temporal
/// CSR of the events in their joint time span, over a local vertex space.
#[derive(Debug)]
pub struct MultiWindowGraph {
    windows: Range<usize>,
    span: TimeRange,
    /// Sorted map local id -> global id.
    vertices: Box<[VertexId]>,
    tcsr: TemporalCsr,
    /// In-edge transpose, present only for directed builds (symmetric
    /// builds pull and push from the same structure).
    transpose: Option<TemporalCsr>,
    /// Time range of each served window, aligned with `windows`.
    ranges: Box<[TimeRange]>,
    /// Per-window activity/degree index, built lazily on first use.
    index: OnceLock<WindowIndex>,
}

impl Clone for MultiWindowGraph {
    fn clone(&self) -> Self {
        // OnceLock is not Clone; carry over an already-built index so a
        // clone doesn't silently lose the precomputation.
        let index = OnceLock::new();
        if let Some(built) = self.index.get() {
            let _ = index.set(built.clone());
        }
        MultiWindowGraph {
            windows: self.windows.clone(),
            span: self.span,
            vertices: self.vertices.clone(),
            tcsr: self.tcsr.clone(),
            transpose: self.transpose.clone(),
            ranges: self.ranges.clone(),
            index,
        }
    }
}

impl MultiWindowGraph {
    /// Global indices of the windows this graph serves.
    #[inline]
    pub fn windows(&self) -> Range<usize> {
        self.windows.clone()
    }

    /// Number of windows served.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// Whether global window `i` belongs to this graph.
    #[inline]
    pub fn contains_window(&self, i: usize) -> bool {
        self.windows.contains(&i)
    }

    /// The joint time span of all served windows.
    #[inline]
    pub fn span(&self) -> TimeRange {
        self.span
    }

    /// The local temporal CSR of out-edges (vertex ids are local).
    #[inline]
    pub fn tcsr(&self) -> &TemporalCsr {
        &self.tcsr
    }

    /// The in-edge structure for pull-style kernels: the stored transpose
    /// for a directed build, the out-structure itself for a symmetric one.
    #[inline]
    pub fn pull_tcsr(&self) -> &TemporalCsr {
        self.transpose.as_ref().unwrap_or(&self.tcsr)
    }

    /// Number of local vertices `|V_w|` (vertices appearing in the span).
    #[inline]
    pub fn num_local_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Maps a local vertex id back to its global id.
    #[inline]
    pub fn global_id(&self, local: VertexId) -> VertexId {
        self.vertices[local as usize]
    }

    /// The sorted local -> global vertex map.
    #[inline]
    pub fn vertex_map(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Maps a global vertex id to its local id, if present in this graph.
    pub fn local_id(&self, global: VertexId) -> Option<VertexId> {
        self.vertices
            .binary_search(&global)
            .ok()
            .map(|i| i as VertexId)
    }

    /// The time range of each served window, aligned with [`Self::windows`].
    #[inline]
    pub fn window_ranges(&self) -> &[TimeRange] {
        &self.ranges
    }

    /// The per-window activity/degree index, building it on first use.
    ///
    /// The build is a single pass over this part's temporal CSR(s) covering
    /// every served window; afterwards a kernel's degree/activity setup for
    /// window `w` is an `O(|V_w active|)` copy out of
    /// [`Self::index_view`]. Thread-safe: concurrent callers block on one
    /// build.
    pub fn window_index(&self) -> &WindowIndex {
        self.index
            .get_or_init(|| WindowIndex::build(&self.tcsr, self.transpose.as_ref(), &self.ranges))
    }

    /// The index if it has already been built (e.g. for memory accounting
    /// without forcing a build).
    #[inline]
    pub fn window_index_built(&self) -> Option<&WindowIndex> {
        self.index.get()
    }

    /// The index view of **global** window `i`, building the index on
    /// first use.
    ///
    /// # Panics
    /// Panics if this graph does not serve window `i`.
    pub fn index_view(&self, window: usize) -> WindowIndexView<'_> {
        assert!(
            self.contains_window(window),
            "window {window} not served by part covering {:?}",
            self.windows
        );
        self.window_index().view(window - self.windows.start)
    }

    /// Approximate heap footprint in bytes (vertex map + temporal CSR(s) +
    /// window ranges + the activity index if built).
    pub fn memory_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<VertexId>()
            + self.tcsr.memory_bytes()
            + self.transpose.as_ref().map_or(0, |t| t.memory_bytes())
            + self.ranges.len() * std::mem::size_of::<TimeRange>()
            + self.index.get().map_or(0, |i| i.memory_bytes())
    }
}

/// The complete postmortem representation: the window spec plus the
/// multi-window graphs covering it.
#[derive(Debug, Clone)]
pub struct MultiWindowSet {
    spec: WindowSpec,
    graphs: Vec<MultiWindowGraph>,
    num_global_vertices: usize,
}

impl MultiWindowSet {
    /// Partitions `spec`'s windows into (at most) `num_parts` groups and
    /// builds one [`MultiWindowGraph`] per group.
    ///
    /// `num_parts` is clamped to the window count. Events outside every
    /// window's span are dropped.
    pub fn build(
        log: &EventLog,
        spec: WindowSpec,
        num_parts: usize,
        symmetric: bool,
        strategy: PartitionStrategy,
    ) -> Result<Self, GraphError> {
        if num_parts == 0 {
            return Err(GraphError::ZeroMultiWindows);
        }
        let parts = num_parts.min(spec.count);
        let boundaries = match strategy {
            PartitionStrategy::EqualWindows => equal_window_boundaries(spec.count, parts),
            PartitionStrategy::EqualEvents => equal_event_boundaries(log, &spec, parts),
        };
        debug_assert_eq!(boundaries.len(), parts + 1);
        let mut graphs = Vec::with_capacity(parts);
        // Reusable global -> local scratch map (u32::MAX = absent).
        let mut local_of = vec![VertexId::MAX; log.num_vertices()];
        for p in 0..parts {
            let windows = boundaries[p]..boundaries[p + 1];
            let span = spec.span_of(windows.clone());
            let events = log.slice_by_time(span.start, span.end);
            let ranges: Vec<TimeRange> = windows.clone().map(|w| spec.window(w)).collect();
            graphs.push(build_part(
                windows,
                span,
                ranges,
                events,
                symmetric,
                &mut local_of,
            ));
        }
        Ok(MultiWindowSet {
            spec,
            graphs,
            num_global_vertices: log.num_vertices(),
        })
    }

    /// The window spec this set covers.
    #[inline]
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Number of multi-window graphs `Y`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.graphs.len()
    }

    /// Size of the global vertex universe.
    #[inline]
    pub fn num_global_vertices(&self) -> usize {
        self.num_global_vertices
    }

    /// All multi-window graphs, in window order.
    #[inline]
    pub fn graphs(&self) -> &[MultiWindowGraph] {
        &self.graphs
    }

    /// The multi-window graph serving global window `i`.
    pub fn part_of(&self, window: usize) -> &MultiWindowGraph {
        assert!(window < self.spec.count, "window {window} out of range");
        let idx = self.graphs.partition_point(|g| g.windows().end <= window);
        &self.graphs[idx]
    }

    /// Total stored entries across all parts (>= entries of the single
    /// temporal CSR, because straddling events are duplicated).
    pub fn total_entries(&self) -> usize {
        self.graphs.iter().map(|g| g.tcsr().num_entries()).sum()
    }

    /// Approximate total heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(|g| g.memory_bytes()).sum()
    }
}

/// The paper's memory rule (§4.1): "a window graph should be accommodated
/// by the system memory when computing Pagerank". Returns the smallest
/// part count whose largest part's estimated footprint fits
/// `budget_bytes`, or `spec.count` if even single-window parts exceed it
/// (callers then know the budget is infeasible and may stream instead).
///
/// The estimate is `encoding · (|V_w| + 2·|E_w|)` with 64-bit-dominant
/// encoding, as in the paper; `|V_w|` is bounded by `2·events` and the
/// universe size, and `|E_w|` by the events in the part's span (×2 for a
/// symmetric build).
pub fn parts_for_memory_budget(
    log: &EventLog,
    spec: &WindowSpec,
    budget_bytes: usize,
    symmetric: bool,
) -> usize {
    let estimate = |parts: usize| -> usize {
        let b = equal_window_boundaries(spec.count, parts);
        let mut worst = 0usize;
        for p in 0..parts {
            if b[p] == b[p + 1] {
                continue;
            }
            let span = spec.span_of(b[p]..b[p + 1]);
            let events = log.index_range_by_time(span.start, span.end).len();
            let entries = if symmetric { 2 * events } else { events };
            let verts = (2 * events).min(log.num_vertices());
            // row (8B/vertex) + bounds (16B/vertex) + col (4B) + time (8B).
            worst = worst.max(24 * verts + 12 * entries);
        }
        worst
    };
    // The worst part shrinks monotonically with more parts; binary search
    // the smallest feasible count.
    let (mut lo, mut hi) = (1usize, spec.count);
    if estimate(hi) > budget_bytes {
        return spec.count;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if estimate(mid) <= budget_bytes {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Equal-count window boundaries: `parts + 1` fenceposts, first group(s)
/// take the ceiling share.
fn equal_window_boundaries(count: usize, parts: usize) -> Vec<usize> {
    let mut b = Vec::with_capacity(parts + 1);
    for p in 0..=parts {
        // Balanced split: part p starts at floor(p * count / parts).
        b.push(p * count / parts);
    }
    b
}

/// Boundaries chosen so each group's span holds roughly `total/parts`
/// events, while every group keeps at least one window.
///
/// Window ends are nondecreasing in `w`, so a single forward cursor over
/// the time-sorted event list tracks how many events fall at or before the
/// current candidate window's end — `O(W + E)` total, instead of one
/// `O(log E)` binary search per candidate window per boundary (which
/// degraded to `Θ(W · log E)` on heavily skewed logs where the cursor
/// barely advances between boundaries).
fn equal_event_boundaries(log: &EventLog, spec: &WindowSpec, parts: usize) -> Vec<usize> {
    let total = log.len();
    let events = log.events();
    let mut b = Vec::with_capacity(parts + 1);
    b.push(0usize);
    let mut w = 0usize;
    // Events with `t <= spec.window(w).end` seen so far; only ever moves
    // forward because window ends are nondecreasing.
    let mut consumed = 0usize;
    for p in 1..parts {
        let target = p * total / parts;
        // Advance w until the events at or before window w's end reach the
        // target, but leave at least one window per remaining group.
        let max_w = spec.count - (parts - p);
        while w + 1 < max_w {
            let end = spec.window(w).end;
            while consumed < total && events[consumed].t <= end {
                consumed += 1;
            }
            if consumed >= target {
                break;
            }
            w += 1;
        }
        w = (w + 1).min(max_w);
        b.push(w);
    }
    b.push(spec.count);
    b
}

fn build_part(
    windows: Range<usize>,
    span: TimeRange,
    ranges: Vec<TimeRange>,
    events: &[Event],
    symmetric: bool,
    local_of: &mut [VertexId],
) -> MultiWindowGraph {
    // Collect the distinct vertices of this span, sorted for binary-search
    // lookup of global ids later.
    let mut vertices: Vec<VertexId> = Vec::new();
    for e in events {
        for x in [e.u, e.v] {
            if local_of[x as usize] == VertexId::MAX {
                local_of[x as usize] = 0; // mark seen
                vertices.push(x);
            }
        }
    }
    vertices.sort_unstable();
    for (i, &g) in vertices.iter().enumerate() {
        local_of[g as usize] = i as VertexId;
    }
    // Remap events to local ids and build the local temporal CSR.
    let local_events: Vec<Event> = events
        .iter()
        .map(|e| Event::new(local_of[e.u as usize], local_of[e.v as usize], e.t))
        .collect();
    let tcsr = TemporalCsr::from_events(vertices.len(), &local_events, symmetric);
    let transpose = (!symmetric).then(|| tcsr.transpose());
    // Reset the scratch map for the next part.
    for &g in &vertices {
        local_of[g as usize] = VertexId::MAX;
    }
    MultiWindowGraph {
        windows,
        span,
        vertices: vertices.into_boxed_slice(),
        tcsr,
        transpose,
        ranges: ranges.into_boxed_slice(),
        index: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    fn log() -> EventLog {
        EventLog::from_sorted(
            vec![
                ev(0, 1, 0),
                ev(1, 2, 10),
                ev(2, 3, 20),
                ev(3, 4, 30),
                ev(4, 5, 40),
                ev(5, 6, 50),
                ev(6, 7, 60),
                ev(7, 0, 70),
            ],
            8,
        )
        .unwrap()
    }

    #[test]
    fn equal_window_boundaries_are_balanced() {
        assert_eq!(equal_window_boundaries(8, 2), vec![0, 4, 8]);
        assert_eq!(equal_window_boundaries(7, 3), vec![0, 2, 4, 7]);
        assert_eq!(equal_window_boundaries(3, 3), vec![0, 1, 2, 3]);
        assert_eq!(equal_window_boundaries(5, 1), vec![0, 5]);
    }

    #[test]
    fn build_covers_all_windows_contiguously() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap(); // 8 windows
        let set =
            MultiWindowSet::build(&log, spec, 3, true, PartitionStrategy::EqualWindows).unwrap();
        assert_eq!(set.num_parts(), 3);
        let mut next = 0;
        for g in set.graphs() {
            assert_eq!(g.windows().start, next);
            next = g.windows().end;
        }
        assert_eq!(next, spec.count);
    }

    #[test]
    fn parts_clamped_to_window_count() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 40).unwrap(); // 2 windows
        let set =
            MultiWindowSet::build(&log, spec, 10, true, PartitionStrategy::EqualWindows).unwrap();
        assert_eq!(set.num_parts(), 2);
    }

    #[test]
    fn zero_parts_rejected() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        assert_eq!(
            MultiWindowSet::build(&log, spec, 0, true, PartitionStrategy::EqualWindows)
                .unwrap_err(),
            GraphError::ZeroMultiWindows
        );
    }

    #[test]
    fn part_of_finds_serving_graph() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 3, true, PartitionStrategy::EqualWindows).unwrap();
        for w in 0..spec.count {
            assert!(set.part_of(w).contains_window(w), "window {w}");
        }
    }

    #[test]
    fn local_vertex_maps_roundtrip() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 4, true, PartitionStrategy::EqualWindows).unwrap();
        for g in set.graphs() {
            for local in 0..g.num_local_vertices() as u32 {
                let global = g.global_id(local);
                assert_eq!(g.local_id(global), Some(local));
            }
            // A vertex absent from the span maps to None. Part 0 spans
            // windows near t=0 and must not contain vertex 7's id unless an
            // event in span references it.
        }
    }

    #[test]
    fn straddling_events_are_duplicated() {
        let log = log();
        let spec = WindowSpec::covering(&log, 25, 10).unwrap(); // overlapping windows
        let set =
            MultiWindowSet::build(&log, spec, 4, true, PartitionStrategy::EqualWindows).unwrap();
        // Entries across parts exceed the single-CSR entry count because
        // overlapping spans duplicate events.
        let single = TemporalCsr::from_log(&log, true);
        assert!(set.total_entries() >= single.num_entries());
    }

    #[test]
    fn per_part_edges_match_bruteforce() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 3, true, PartitionStrategy::EqualWindows).unwrap();
        // For every window, the set of active edges (in global ids) equals
        // the brute-force filter of the event list.
        for w in 0..spec.count {
            let range = spec.window(w);
            let g = set.part_of(w);
            let mut got: Vec<(u32, u32)> = Vec::new();
            for lv in 0..g.num_local_vertices() as u32 {
                for n in g.tcsr().active_neighbors(lv, range) {
                    got.push((g.global_id(lv), g.global_id(n)));
                }
            }
            got.sort_unstable();
            let mut expect: Vec<(u32, u32)> = Vec::new();
            for e in log.events() {
                if range.contains(e.t) {
                    expect.push((e.u, e.v));
                    expect.push((e.v, e.u));
                }
            }
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(got, expect, "window {w}");
        }
    }

    #[test]
    fn equal_events_boundaries_cover_and_are_monotonic() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        for parts in 1..=4 {
            let b = equal_event_boundaries(&log, &spec, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), spec.count);
            for w in b.windows(2) {
                assert!(w[0] < w[1], "boundaries must strictly increase: {b:?}");
            }
        }
    }

    #[test]
    fn equal_events_strategy_builds_valid_set() {
        // Skewed log: most events early.
        let mut events = Vec::new();
        for i in 0..50 {
            events.push(ev(i % 5, (i + 1) % 5, (i / 10) as i64));
        }
        events.push(ev(0, 1, 100));
        events.push(ev(1, 2, 200));
        let log = EventLog::from_unsorted(events, 5).unwrap();
        let spec = WindowSpec::covering(&log, 20, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 4, true, PartitionStrategy::EqualEvents).unwrap();
        let mut next = 0;
        for g in set.graphs() {
            assert_eq!(g.windows().start, next);
            assert!(!g.windows().is_empty());
            next = g.windows().end;
        }
        assert_eq!(next, spec.count);
    }

    #[test]
    fn memory_budget_rule_picks_feasible_minimum() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        // A huge budget needs only one part.
        assert_eq!(parts_for_memory_budget(&log, &spec, usize::MAX, true), 1);
        // A tiny budget is infeasible: falls back to one part per window.
        assert_eq!(parts_for_memory_budget(&log, &spec, 1, true), spec.count);
        // A middling budget: the chosen count is feasible and the one
        // below it is not.
        let set1 =
            MultiWindowSet::build(&log, spec, 1, true, PartitionStrategy::EqualWindows).unwrap();
        let budget = set1.graphs()[0].memory_bytes() / 2;
        let parts = parts_for_memory_budget(&log, &spec, budget, true);
        assert!(parts >= 2);
        let set = MultiWindowSet::build(&log, spec, parts, true, PartitionStrategy::EqualWindows)
            .unwrap();
        let worst = set.graphs().iter().map(|g| g.memory_bytes()).max().unwrap();
        // The estimate is an upper bound, so the real footprint fits too.
        assert!(
            worst <= budget,
            "worst part {worst} exceeds budget {budget}"
        );
    }

    /// Reference implementation of [`equal_event_boundaries`]: the original
    /// per-candidate binary-search formulation, kept only to pin the
    /// incremental-cursor rewrite's output.
    fn equal_event_boundaries_reference(
        log: &EventLog,
        spec: &WindowSpec,
        parts: usize,
    ) -> Vec<usize> {
        let total = log.len();
        let mut b = vec![0usize];
        let mut w = 0usize;
        for p in 1..parts {
            let target = p * total / parts;
            let max_w = spec.count - (parts - p);
            while w + 1 < max_w {
                let end = spec.window(w).end;
                let consumed = log.index_range_by_time(log.first_time(), end).end;
                if consumed >= target {
                    break;
                }
                w += 1;
            }
            w += 1;
            b.push(w.min(max_w));
            w = *b.last().unwrap();
        }
        b.push(spec.count);
        b
    }

    #[test]
    fn equal_events_incremental_cursor_matches_reference_on_skewed_logs() {
        // Heavily skewed logs are the regression case: almost all events in
        // a tiny time slice, then a long sparse tail of windows the cursor
        // must walk through without re-searching the dense prefix.
        let skews: [Vec<Event>; 3] = [
            // Dense burst at the start, sparse tail.
            (0..400)
                .map(|i| {
                    ev(
                        i % 7,
                        (i + 3) % 7,
                        if i < 380 { (i % 5) as i64 } else { i as i64 },
                    )
                })
                .collect(),
            // Dense burst at the end.
            (0..400)
                .map(|i| ev(i % 7, (i + 3) % 7, if i < 20 { i as i64 } else { 395 }))
                .collect(),
            // Dense burst in the middle.
            (0..400)
                .map(|i| {
                    ev(
                        i % 7,
                        (i + 3) % 7,
                        if (180..220).contains(&i) {
                            200
                        } else {
                            i as i64
                        },
                    )
                })
                .collect(),
        ];
        for events in skews {
            let log = EventLog::from_unsorted(events, 7).unwrap();
            for (delta, sw) in [(10, 5), (25, 10), (5, 20)] {
                let spec = WindowSpec::covering(&log, delta, sw).unwrap();
                for parts in 1..=spec.count.min(9) {
                    assert_eq!(
                        equal_event_boundaries(&log, &spec, parts),
                        equal_event_boundaries_reference(&log, &spec, parts),
                        "delta={delta} sw={sw} parts={parts}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_ranges_match_spec() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 3, true, PartitionStrategy::EqualWindows).unwrap();
        for g in set.graphs() {
            let ranges = g.window_ranges();
            assert_eq!(ranges.len(), g.num_windows());
            for (j, w) in g.windows().enumerate() {
                assert_eq!(ranges[j], spec.window(w));
            }
        }
    }

    #[test]
    fn window_index_lazy_build_and_clone_carryover() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 2, true, PartitionStrategy::EqualWindows).unwrap();
        let g = &set.graphs()[0];
        assert!(g.window_index_built().is_none());
        let before = g.memory_bytes();
        let idx = g.window_index();
        assert_eq!(idx.num_windows(), g.num_windows());
        // Memory accounting includes the built index.
        assert!(g.memory_bytes() > before);
        // Cloning preserves an already-built index; cloning an unbuilt one
        // stays unbuilt.
        let cloned = g.clone();
        assert_eq!(cloned.window_index_built(), Some(idx));
        let unbuilt = &set.graphs()[1];
        assert!(unbuilt.clone().window_index_built().is_none());
    }

    #[test]
    fn index_view_matches_tcsr_bruteforce_per_window() {
        let log = log();
        let spec = WindowSpec::covering(&log, 25, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 3, true, PartitionStrategy::EqualWindows).unwrap();
        for w in 0..spec.count {
            let g = set.part_of(w);
            let view = g.index_view(w);
            assert_eq!(view.range, spec.window(w));
            for lv in 0..g.num_local_vertices() as u32 {
                let deg = g.tcsr().active_degree(lv, view.range) as u32;
                match view.vertices.binary_search(&lv) {
                    Ok(i) => assert_eq!(view.deg_out[i], deg, "window {w} vertex {lv}"),
                    Err(_) => assert_eq!(deg, 0, "window {w} vertex {lv} missing from index"),
                }
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let log = log();
        let spec = WindowSpec::covering(&log, 15, 10).unwrap();
        let set =
            MultiWindowSet::build(&log, spec, 2, true, PartitionStrategy::EqualWindows).unwrap();
        assert!(set.memory_bytes() > 0);
        assert_eq!(
            set.memory_bytes(),
            set.graphs().iter().map(|g| g.memory_bytes()).sum::<usize>()
        );
    }
}
