//! # tempopr-graph
//!
//! Temporal graph representations for postmortem analysis, reproducing the
//! data layer of Hossain & Saule, *Postmortem Computation of Pagerank on
//! Temporal Graphs* (ICPP '22).
//!
//! A temporal graph is defined by an [`events::EventLog`] — a time-sorted
//! set of `(u, v, t)` relational events — observed through a
//! [`window::WindowSpec`] sliding-window model. The postmortem
//! representation is the [`tcsr::TemporalCsr`] (CSR with one entry per
//! event plus a timestamp array, Fig. 3 of the paper), partitioned into
//! [`multiwindow::MultiWindowGraph`]s so per-window work stays proportional
//! to per-window edges (§4.1). The static [`csr::Csr`] is what the offline
//! baseline rebuilds per window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod csr;
pub mod error;
pub mod events;
pub mod io;
pub mod multiwindow;
pub mod tcsr;
pub mod window;
pub mod windowindex;

pub use csr::Csr;
pub use error::GraphError;
pub use events::{Event, EventLog, Timestamp, VertexId};
pub use io::{IngestReport, IoError, ParseMode};
pub use multiwindow::{
    parts_for_memory_budget, MultiWindowGraph, MultiWindowSet, PartitionStrategy,
};
pub use tcsr::{NeighborRun, TemporalCsr};
pub use window::{TimeRange, WindowSpec};
pub use windowindex::{WindowIndex, WindowIndexView};
