//! Static CSR graphs, as rebuilt per-window by the *offline* execution model
//! (paper §3.3.1).
//!
//! The offline model extracts each window's events, deduplicates them into a
//! simple graph, and builds a fresh CSR before every PageRank run. The cost
//! of this construction is exactly what the postmortem representation
//! amortizes away, so the builder here is deliberately the natural,
//! well-optimized implementation (counting sort + per-row dedup) rather than
//! a strawman.

use crate::events::{Event, VertexId};

/// A compressed-sparse-row adjacency structure over `num_vertices` vertices.
///
/// `row` has `V + 1` entries; vertex `v`'s neighbors are
/// `col[row[v]..row[v+1]]`, sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    num_vertices: usize,
    row: Vec<usize>,
    col: Vec<VertexId>,
}

impl Csr {
    /// Builds a simple (deduplicated) CSR from directed edge pairs.
    ///
    /// If `symmetric` is true every pair contributes both directions,
    /// matching the paper's treatment of event graphs (Fig. 3 stores both
    /// `(1,2)` and `(2,1)` for event `(1,2)`).
    pub fn from_edges<I>(num_vertices: usize, edges: I, symmetric: bool) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for (u, v) in edges {
            debug_assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            pairs.push((u, v));
            if symmetric && u != v {
                pairs.push((v, u));
            }
        }
        Self::from_pairs(num_vertices, pairs)
    }

    /// Builds a simple CSR from a window of events (offline model's
    /// per-window construction).
    pub fn from_events(num_vertices: usize, events: &[Event], symmetric: bool) -> Self {
        let mut csr = Csr {
            num_vertices: 0,
            row: Vec::new(),
            col: Vec::new(),
        };
        csr.rebuild_from_events(num_vertices, events, symmetric);
        csr
    }

    /// Rebuilds this CSR in place from a new window of events, reusing the
    /// row and column allocations of the previous window.
    ///
    /// Produces exactly the graph [`Csr::from_events`] would (bit-identical
    /// arrays), but a driver walking many same-universe windows reaches a
    /// steady state with zero allocations per rebuild — the adjacency of
    /// consecutive sliding windows has roughly constant size, so the
    /// buffers stop growing after the first few windows.
    pub fn rebuild_from_events(&mut self, num_vertices: usize, events: &[Event], symmetric: bool) {
        self.num_vertices = num_vertices;
        let row = &mut self.row;
        row.clear();
        row.resize(num_vertices + 1, 0);
        for e in events {
            debug_assert!((e.u as usize) < num_vertices && (e.v as usize) < num_vertices);
            row[e.u as usize + 1] += 1;
            if symmetric && e.u != e.v {
                row[e.v as usize + 1] += 1;
            }
        }
        for i in 0..num_vertices {
            row[i + 1] += row[i];
        }
        let total = row[num_vertices];
        self.col.clear();
        self.col.resize(total, 0);
        // Scatter, advancing row[v] from the start of v's range to its end
        // (afterwards row[v] holds v's end == v+1's start).
        for e in events {
            let c = &mut row[e.u as usize];
            self.col[*c] = e.v;
            *c += 1;
            if symmetric && e.u != e.v {
                let c = &mut row[e.v as usize];
                self.col[*c] = e.u;
                *c += 1;
            }
        }
        // Sort and dedup each row in place, compacting col and restoring
        // row[v] to v's (post-dedup) start offset. `write <= start` always,
        // so compaction never overtakes the unread portion.
        let mut write = 0usize;
        let mut start = 0usize;
        for r in row.iter_mut().take(num_vertices) {
            let end = *r;
            self.col[start..end].sort_unstable();
            *r = write;
            let mut prev: Option<VertexId> = None;
            for i in start..end {
                let n = self.col[i];
                if prev != Some(n) {
                    self.col[write] = n;
                    write += 1;
                    prev = Some(n);
                }
            }
            start = end;
        }
        row[num_vertices] = write;
        self.col.truncate(write);
    }

    fn from_pairs(num_vertices: usize, mut pairs: Vec<(VertexId, VertexId)>) -> Self {
        // Counting sort by source, then sort+dedup each row. This is the
        // standard O(E log d) CSR build the offline model pays per window.
        let mut counts = vec![0usize; num_vertices + 1];
        for &(u, _) in &pairs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let mut col = vec![0 as VertexId; pairs.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &pairs {
            let c = &mut cursor[u as usize];
            col[*c] = v;
            *c += 1;
        }
        pairs.clear();
        // Sort and dedup each row in place, compacting the col array.
        let mut row = vec![0usize; num_vertices + 1];
        let mut write = 0usize;
        for v in 0..num_vertices {
            let (lo, hi) = (counts[v], counts[v + 1]);
            let slice = &mut col[lo..hi];
            slice.sort_unstable();
            row[v] = write;
            let mut prev: Option<VertexId> = None;
            for i in lo..hi {
                let n = col[i];
                if prev != Some(n) {
                    col[write] = n;
                    write += 1;
                    prev = Some(n);
                }
            }
        }
        row[num_vertices] = write;
        col.truncate(write);
        Csr {
            num_vertices,
            row,
            col,
        }
    }

    /// Number of vertices in the universe (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (directed) edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }

    /// The sorted, deduplicated neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.col[self.row[v as usize]..self.row[v as usize + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.row[v as usize + 1] - self.row[v as usize]
    }

    /// The row-offsets array (`V + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row
    }

    /// The concatenated adjacency array.
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col
    }

    /// Number of vertices with at least one incident stored edge.
    pub fn active_vertex_count(&self) -> usize {
        (0..self.num_vertices)
            .filter(|&v| self.row[v + 1] > self.row[v])
            .count()
    }

    /// Heap bytes held by the row/column arrays — the per-window
    /// construction cost the offline model's memory accounting reports.
    pub fn memory_bytes(&self) -> usize {
        self.row.len() * std::mem::size_of::<usize>()
            + self.col.len() * std::mem::size_of::<VertexId>()
    }

    /// The transpose graph (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let mut pairs = Vec::with_capacity(self.col.len());
        for v in 0..self.num_vertices {
            for &u in self.neighbors(v as VertexId) {
                pairs.push((u, v as VertexId));
            }
        }
        Csr::from_pairs(self.num_vertices, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dedups_and_sorts() {
        let g = Csr::from_edges(4, vec![(0, 2), (0, 1), (0, 2), (3, 0)], false);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn symmetric_build_adds_reverse() {
        let g = Csr::from_edges(3, vec![(0, 1), (1, 2)], true);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn symmetric_self_loop_counted_once() {
        let g = Csr::from_edges(2, vec![(0, 0), (0, 1)], true);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn from_events_matches_from_edges() {
        let events = vec![
            Event::new(0, 1, 5),
            Event::new(0, 1, 9),
            Event::new(2, 0, 7),
        ];
        let g = Csr::from_events(3, &events, false);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn active_vertex_count_ignores_isolated() {
        let g = Csr::from_edges(5, vec![(0, 1)], true);
        assert_eq!(g.active_vertex_count(), 2);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = Csr::from_edges(3, vec![(0, 1), (0, 2), (2, 1)], false);
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        // Transposing twice is the identity for a simple graph.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn rebuild_matches_fresh_build_and_reuses_buffers() {
        let windows: [&[Event]; 3] = [
            &[
                Event::new(0, 1, 1),
                Event::new(2, 3, 2),
                Event::new(0, 1, 3),
                Event::new(4, 0, 4),
            ],
            &[Event::new(3, 3, 5), Event::new(1, 2, 6)],
            &[],
        ];
        for symmetric in [false, true] {
            let mut csr = Csr::from_events(5, windows[0], symmetric);
            for events in &windows[1..] {
                let cap = (csr.row.capacity(), csr.col.capacity());
                csr.rebuild_from_events(5, events, symmetric);
                let fresh = Csr::from_events(5, events, symmetric);
                assert_eq!(csr, fresh, "symmetric={symmetric}");
                // Later, no-larger windows reuse the existing allocations.
                assert_eq!(csr.row.capacity(), cap.0);
                assert_eq!(csr.col.capacity(), cap.1);
            }
        }
    }

    #[test]
    fn empty_edge_list_yields_isolated_graph() {
        let g = Csr::from_edges(3, Vec::<(u32, u32)>::new(), false);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.active_vertex_count(), 0);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
    }
}
