//! Temporal event sets: the raw input of a postmortem analysis.
//!
//! An *event* is a triple `(u, v, t)` recording that a relation between
//! vertices `u` and `v` was observed at integer timestamp `t` (paper §2.1).
//! The whole analysis input is an [`EventLog`]: a sequence of events sorted
//! by non-decreasing timestamp. In the postmortem model the entire log is
//! known up front, which is what lets us build time-indexed representations
//! such as the temporal CSR ([`crate::tcsr::TemporalCsr`]).

use crate::error::GraphError;

/// Vertex identifier. 32 bits keeps adjacency arrays compact (perf-book:
/// smaller integers for indices); the paper's largest dataset has ~48M
/// events and far fewer vertices.
pub type VertexId = u32;

/// Integer timestamp (e.g. seconds since an epoch). The unit is up to the
/// application; sliding offsets and window widths use the same unit.
pub type Timestamp = i64;

/// A single temporal relational event `(u, v, t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Source vertex.
    pub u: VertexId,
    /// Destination vertex.
    pub v: VertexId,
    /// Arrival timestamp.
    pub t: Timestamp,
}

impl Event {
    /// Convenience constructor.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, t: Timestamp) -> Self {
        Event { u, v, t }
    }
}

/// A validated, time-sorted temporal edge set.
///
/// Invariants maintained by every constructor:
/// - at least one event;
/// - events sorted by non-decreasing timestamp;
/// - every vertex id is `< num_vertices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
    num_vertices: usize,
}

impl EventLog {
    /// Builds a log from events already sorted by non-decreasing time.
    ///
    /// `num_vertices` declares the universe `V` (paper: "the elements of V
    /// known because of offline behavior"). Returns an error if the list is
    /// empty, unsorted, or references an out-of-range vertex.
    pub fn from_sorted(events: Vec<Event>, num_vertices: usize) -> Result<Self, GraphError> {
        if events.is_empty() {
            return Err(GraphError::EmptyEvents);
        }
        for w in events.windows(2) {
            if w[0].t > w[1].t {
                return Err(GraphError::InvalidWindowSpec(format!(
                    "events not sorted by time: {} before {}",
                    w[0].t, w[1].t
                )));
            }
        }
        Self::validate_vertices(&events, num_vertices)?;
        Ok(EventLog {
            events,
            num_vertices,
        })
    }

    /// Builds a log from events in arbitrary order, sorting them by time.
    ///
    /// The sort is stable so events with equal timestamps keep their input
    /// order, which keeps downstream representations deterministic.
    ///
    /// ```
    /// use tempopr_graph::{Event, EventLog};
    /// let log = EventLog::from_unsorted(
    ///     vec![Event::new(0, 1, 9), Event::new(1, 2, 3)],
    ///     3,
    /// ).unwrap();
    /// assert_eq!(log.first_time(), 3);
    /// assert_eq!(log.len(), 2);
    /// ```
    pub fn from_unsorted(mut events: Vec<Event>, num_vertices: usize) -> Result<Self, GraphError> {
        if events.is_empty() {
            return Err(GraphError::EmptyEvents);
        }
        Self::validate_vertices(&events, num_vertices)?;
        events.sort_by_key(|e| e.t);
        Ok(EventLog {
            events,
            num_vertices,
        })
    }

    /// Builds a log inferring `num_vertices` as `max(id) + 1`.
    pub fn from_unsorted_auto(events: Vec<Event>) -> Result<Self, GraphError> {
        let n = events
            .iter()
            .map(|e| e.u.max(e.v) as usize + 1)
            .max()
            .ok_or(GraphError::EmptyEvents)?;
        Self::from_unsorted(events, n)
    }

    fn validate_vertices(events: &[Event], num_vertices: usize) -> Result<(), GraphError> {
        for e in events {
            let m = e.u.max(e.v);
            if m as usize >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: m,
                    num_vertices,
                });
            }
        }
        Ok(())
    }

    /// Number of events `|Events|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty (never true for a constructed log).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Size of the vertex universe `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// All events, sorted by non-decreasing timestamp.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Timestamp of the first (earliest) event.
    #[inline]
    pub fn first_time(&self) -> Timestamp {
        self.events[0].t
    }

    /// Timestamp of the last (latest) event.
    #[inline]
    pub fn last_time(&self) -> Timestamp {
        self.events[self.events.len() - 1].t
    }

    /// The contiguous slice of events with timestamps in `[start, end]`
    /// (both inclusive, matching the paper's `Ts <= t <= Te`).
    ///
    /// Because the log is time-sorted this is two binary searches, so the
    /// offline model can extract any window in `O(log |Events| + k)`.
    pub fn slice_by_time(&self, start: Timestamp, end: Timestamp) -> &[Event] {
        if start > end {
            return &[];
        }
        let lo = self.events.partition_point(|e| e.t < start);
        let hi = self.events.partition_point(|e| e.t <= end);
        &self.events[lo..hi]
    }

    /// Index range of events with timestamps in `[start, end]`.
    pub fn index_range_by_time(&self, start: Timestamp, end: Timestamp) -> std::ops::Range<usize> {
        if start > end {
            return 0..0;
        }
        let lo = self.events.partition_point(|e| e.t < start);
        let hi = self.events.partition_point(|e| e.t <= end);
        lo..hi
    }

    /// Consumes the log and returns its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn from_sorted_accepts_sorted() {
        let log = EventLog::from_sorted(vec![ev(0, 1, 1), ev(1, 2, 2), ev(0, 2, 2)], 3).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.num_vertices(), 3);
        assert_eq!(log.first_time(), 1);
        assert_eq!(log.last_time(), 2);
    }

    #[test]
    fn from_sorted_rejects_unsorted() {
        let err = EventLog::from_sorted(vec![ev(0, 1, 5), ev(1, 2, 2)], 3).unwrap_err();
        assert!(matches!(err, GraphError::InvalidWindowSpec(_)));
    }

    #[test]
    fn from_unsorted_sorts() {
        let log = EventLog::from_unsorted(vec![ev(0, 1, 9), ev(1, 2, 2), ev(2, 0, 5)], 3).unwrap();
        let ts: Vec<i64> = log.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![2, 5, 9]);
    }

    #[test]
    fn from_unsorted_is_stable_on_ties() {
        let log =
            EventLog::from_unsorted(vec![ev(0, 1, 2), ev(1, 2, 1), ev(2, 3, 2), ev(3, 4, 2)], 5)
                .unwrap();
        let pairs: Vec<(u32, u32)> = log.events().iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(pairs, vec![(1, 2), (0, 1), (2, 3), (3, 4)]);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            EventLog::from_sorted(vec![], 3).unwrap_err(),
            GraphError::EmptyEvents
        );
        assert_eq!(
            EventLog::from_unsorted(vec![], 3).unwrap_err(),
            GraphError::EmptyEvents
        );
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let err = EventLog::from_sorted(vec![ev(0, 7, 1)], 3).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 3
            }
        );
    }

    #[test]
    fn auto_vertex_count() {
        let log = EventLog::from_unsorted_auto(vec![ev(0, 4, 1), ev(2, 1, 0)]).unwrap();
        assert_eq!(log.num_vertices(), 5);
    }

    #[test]
    fn slice_by_time_inclusive_bounds() {
        let log = EventLog::from_sorted(
            vec![ev(0, 1, 10), ev(1, 2, 20), ev(2, 3, 20), ev(3, 4, 30)],
            5,
        )
        .unwrap();
        assert_eq!(log.slice_by_time(10, 20).len(), 3);
        assert_eq!(log.slice_by_time(11, 19).len(), 0);
        assert_eq!(log.slice_by_time(20, 20).len(), 2);
        assert_eq!(log.slice_by_time(0, 100).len(), 4);
        assert_eq!(log.slice_by_time(31, 100).len(), 0);
        assert_eq!(log.slice_by_time(30, 10).len(), 0);
    }

    #[test]
    fn index_range_matches_slice() {
        let log = EventLog::from_sorted(
            vec![ev(0, 1, 10), ev(1, 2, 20), ev(2, 3, 20), ev(3, 4, 30)],
            5,
        )
        .unwrap();
        let r = log.index_range_by_time(15, 25);
        assert_eq!(&log.events()[r], log.slice_by_time(15, 25));
    }
}
