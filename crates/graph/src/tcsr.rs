//! The temporal CSR representation (paper §4.1, Fig. 3).
//!
//! A [`TemporalCsr`] is a CSR whose adjacency array carries one entry per
//! *event* rather than per edge, plus a parallel `timeA` array of
//! timestamps. Each vertex's entries are sorted by `(neighbor, time)`, so
//! the (possibly many) events between the same pair of vertices form a
//! contiguous *run* with ascending timestamps. An edge exists in window
//! `[Ts, Te]` iff its run contains a timestamp in that range, which a short
//! forward scan decides with early exit.
//!
//! One PageRank SpMV over a window traverses every stored entry once:
//! `Θ(entries)` — which is why the representation is partitioned into
//! [multi-window graphs](crate::multiwindow) when the full log is much
//! larger than any single window.

use crate::events::{Event, EventLog, Timestamp, VertexId};
use crate::window::TimeRange;

/// Temporal CSR: `row` (V+1 offsets), `col` (event neighbor per entry),
/// `time` (event timestamp per entry), entries per vertex sorted by
/// `(neighbor, time)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalCsr {
    num_vertices: usize,
    row: Box<[usize]>,
    col: Box<[VertexId]>,
    time: Box<[Timestamp]>,
    /// Per-vertex `(min, max)` event timestamp — `(i64::MAX, i64::MIN)` for
    /// isolated vertices. Lets window passes skip vertices whose whole
    /// history misses the window without touching their adjacency.
    bounds: Box<[(Timestamp, Timestamp)]>,
}

/// A maximal group of consecutive entries of one vertex that share the same
/// neighbor: all the events ever observed between the pair, timestamps
/// ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborRun<'a> {
    /// The neighbor vertex.
    pub neighbor: VertexId,
    /// Event timestamps for this pair, ascending.
    pub times: &'a [Timestamp],
}

impl<'a> NeighborRun<'a> {
    /// Whether the edge exists in `range`: some event timestamp falls in
    /// `[range.start, range.end]`. Runs are short in practice, so a forward
    /// scan with early exit beats binary search and keeps the memory access
    /// pattern streaming.
    #[inline]
    pub fn active_in(&self, range: TimeRange) -> bool {
        run_active(self.times, range)
    }
}

/// Scan a sorted timestamp run for membership in `range`.
#[inline]
pub(crate) fn run_active(times: &[Timestamp], range: TimeRange) -> bool {
    for &t in times {
        if t > range.end {
            return false;
        }
        if t >= range.start {
            return true;
        }
    }
    false
}

/// Iterator over the neighbor runs of one vertex.
pub struct RunIter<'a> {
    col: &'a [VertexId],
    time: &'a [Timestamp],
    pos: usize,
}

impl<'a> Iterator for RunIter<'a> {
    type Item = NeighborRun<'a>;

    #[inline]
    fn next(&mut self) -> Option<NeighborRun<'a>> {
        if self.pos >= self.col.len() {
            return None;
        }
        let start = self.pos;
        let neighbor = self.col[start];
        let mut end = start + 1;
        while end < self.col.len() && self.col[end] == neighbor {
            end += 1;
        }
        self.pos = end;
        Some(NeighborRun {
            neighbor,
            times: &self.time[start..end],
        })
    }
}

impl TemporalCsr {
    /// Builds the temporal CSR from an event log.
    ///
    /// With `symmetric = true` (the paper's default, cf. Fig. 3) each event
    /// `(u, v, t)` stores entries in both `u`'s and `v`'s adjacency;
    /// self-loop events store a single entry.
    pub fn from_log(log: &EventLog, symmetric: bool) -> Self {
        Self::from_events(log.num_vertices(), log.events(), symmetric)
    }

    /// Builds the temporal CSR from a raw slice of events (any order).
    ///
    /// ```
    /// use tempopr_graph::{Event, TemporalCsr, TimeRange};
    /// let t = TemporalCsr::from_events(
    ///     3,
    ///     &[Event::new(0, 1, 5), Event::new(0, 1, 50), Event::new(1, 2, 60)],
    ///     true,
    /// );
    /// // Edge (0,1) exists in any window containing t=5 or t=50.
    /// assert_eq!(t.active_degree(0, TimeRange::new(0, 10)), 1);
    /// assert_eq!(t.active_degree(0, TimeRange::new(10, 40)), 0);
    /// // Within one window, the two (0,1) events count as one edge.
    /// assert_eq!(t.active_degree(0, TimeRange::new(0, 100)), 1);
    /// ```
    pub fn from_events(num_vertices: usize, events: &[Event], symmetric: bool) -> Self {
        // Pass 1: count entries per vertex.
        let mut row = vec![0usize; num_vertices + 1];
        for e in events {
            debug_assert!(
                (e.u as usize) < num_vertices && (e.v as usize) < num_vertices,
                "event vertex out of range"
            );
            row[e.u as usize + 1] += 1;
            if symmetric && e.u != e.v {
                row[e.v as usize + 1] += 1;
            }
        }
        for i in 0..num_vertices {
            row[i + 1] += row[i];
        }
        let total = row[num_vertices];
        // Pass 2: scatter (col, time) pairs with a cursor array.
        let mut col = vec![0 as VertexId; total];
        let mut time = vec![0 as Timestamp; total];
        let mut cursor: Vec<usize> = row[..num_vertices].to_vec();
        let mut place = |src: VertexId, dst: VertexId, t: Timestamp| {
            let c = &mut cursor[src as usize];
            col[*c] = dst;
            time[*c] = t;
            *c += 1;
        };
        for e in events {
            place(e.u, e.v, e.t);
            if symmetric && e.u != e.v {
                place(e.v, e.u, e.t);
            }
        }
        // `place` borrows col/time mutably; it falls out of use here.
        // Pass 3: sort each row by (neighbor, time). Sorting index pairs via
        // a scratch buffer keeps col/time parallel.
        let mut scratch: Vec<(VertexId, Timestamp)> = Vec::new();
        for v in 0..num_vertices {
            let (lo, hi) = (row[v], row[v + 1]);
            if hi - lo <= 1 {
                continue;
            }
            scratch.clear();
            scratch.extend(
                col[lo..hi]
                    .iter()
                    .copied()
                    .zip(time[lo..hi].iter().copied()),
            );
            scratch.sort_unstable();
            for (i, &(c, t)) in scratch.iter().enumerate() {
                col[lo + i] = c;
                time[lo + i] = t;
            }
        }
        // Per-vertex time bounds for window pruning.
        let mut bounds = vec![(Timestamp::MAX, Timestamp::MIN); num_vertices];
        for v in 0..num_vertices {
            for &t in &time[row[v]..row[v + 1]] {
                let b = &mut bounds[v];
                b.0 = b.0.min(t);
                b.1 = b.1.max(t);
            }
        }
        TemporalCsr {
            num_vertices,
            row: row.into_boxed_slice(),
            col: col.into_boxed_slice(),
            time: time.into_boxed_slice(),
            bounds: bounds.into_boxed_slice(),
        }
    }

    /// Builds the transpose: every stored entry `(u -> v, t)` becomes
    /// `(v -> u, t)`. For a symmetric build this is a (wasteful) identity;
    /// it exists for the directed mode where pull-PageRank needs in-edges.
    pub fn transpose(&self) -> TemporalCsr {
        let mut events = Vec::with_capacity(self.col.len());
        for v in 0..self.num_vertices {
            let (lo, hi) = (self.row[v], self.row[v + 1]);
            for i in lo..hi {
                events.push(Event::new(self.col[i], v as VertexId, self.time[i]));
            }
        }
        TemporalCsr::from_events(self.num_vertices, &events, false)
    }

    /// Number of vertices in the universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of stored entries (= events, ×2 for a symmetric build minus
    /// self-loops).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.col.len()
    }

    /// Row offsets (`V + 1` entries) — the paper's `rowA`.
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row
    }

    /// Neighbor per entry — the paper's `colA`.
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col
    }

    /// Timestamp per entry — the paper's `timeA`.
    #[inline]
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.time
    }

    /// Iterates over the neighbor runs of vertex `v`.
    #[inline]
    pub fn runs(&self, v: VertexId) -> RunIter<'_> {
        let (lo, hi) = (self.row[v as usize], self.row[v as usize + 1]);
        RunIter {
            col: &self.col[lo..hi],
            time: &self.time[lo..hi],
            pos: 0,
        }
    }

    /// The raw `(col, time)` entry slices of vertex `v`.
    #[inline]
    pub fn entries(&self, v: VertexId) -> (&[VertexId], &[Timestamp]) {
        let (lo, hi) = (self.row[v as usize], self.row[v as usize + 1]);
        (&self.col[lo..hi], &self.time[lo..hi])
    }

    /// Iterates over the neighbors of `v` active in `range` (deduplicated:
    /// one yield per run with at least one in-window event).
    pub fn active_neighbors<'a>(
        &'a self,
        v: VertexId,
        range: TimeRange,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.runs(v)
            .filter(move |r| r.active_in(range))
            .map(|r| r.neighbor)
    }

    /// Whether `v` has *any* event whose timestamp could fall in `range`
    /// (constant-time pre-check from per-vertex time bounds; a `true` is
    /// necessary but not sufficient for window membership).
    #[inline]
    pub fn vertex_may_be_active(&self, v: VertexId, range: TimeRange) -> bool {
        let (lo, hi) = self.bounds[v as usize];
        lo <= range.end && hi >= range.start
    }

    /// Degree of `v` in the window `range` (distinct active neighbors).
    #[inline]
    pub fn active_degree(&self, v: VertexId, range: TimeRange) -> usize {
        if !self.vertex_may_be_active(v, range) {
            return 0;
        }
        self.runs(v).filter(|r| r.active_in(range)).count()
    }

    /// [`TemporalCsr::active_degree`] without the time-bounds pre-check —
    /// exists for the ablation bench measuring what the pruning buys.
    pub fn active_degree_unpruned(&self, v: VertexId, range: TimeRange) -> usize {
        self.runs(v).filter(|r| r.active_in(range)).count()
    }

    /// Fills `deg[v]` with the active degree of every vertex for `range`.
    /// `deg` must have `num_vertices` entries.
    pub fn active_degrees(&self, range: TimeRange, deg: &mut [u32]) {
        assert_eq!(deg.len(), self.num_vertices);
        for (v, d) in deg.iter_mut().enumerate() {
            *d = self.active_degree(v as VertexId, range) as u32;
        }
    }

    /// Total number of directed active edges in `range`
    /// (= Σ_v active_degree(v)).
    pub fn active_edge_count(&self, range: TimeRange) -> usize {
        (0..self.num_vertices)
            .map(|v| self.active_degree(v as VertexId, range))
            .sum()
    }

    /// Number of vertices with at least one active edge in `range` — the
    /// paper's per-window vertex set `|V_i|`.
    pub fn active_vertex_count(&self, range: TimeRange) -> usize {
        (0..self.num_vertices)
            .filter(|&v| {
                self.vertex_may_be_active(v as VertexId, range)
                    && self.runs(v as VertexId).any(|r| r.active_in(range))
            })
            .count()
    }

    /// Approximate heap footprint in bytes: `8*(V+1) + (4+8)*entries` plus
    /// the 16-byte per-vertex time bounds (the paper's
    /// `encoding * (V + 2E)` with mixed 32/64-bit encoding).
    pub fn memory_bytes(&self) -> usize {
        self.row.len() * std::mem::size_of::<usize>()
            + self.col.len() * std::mem::size_of::<VertexId>()
            + self.time.len() * std::mem::size_of::<Timestamp>()
            + self.bounds.len() * std::mem::size_of::<(Timestamp, Timestamp)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    /// The 7-vertex example of the paper's Fig. 2/3, with vertex ids shifted
    /// to 0-based and dates mapped to day numbers (06/21 -> 0, etc.).
    fn paper_example() -> Vec<Event> {
        vec![
            ev(0, 1, 0),   // 06/21
            ev(2, 4, 4),   // 06/25
            ev(3, 5, 20),  // 07/11
            ev(1, 2, 41),  // 08/01
            ev(1, 3, 51),  // 08/11
            ev(4, 5, 84),  // 09/13
            ev(1, 6, 103), // 10/02
            ev(3, 6, 106), // 10/05
            ev(4, 6, 107), // 10/06
            ev(5, 6, 110), // 10/09
            ev(0, 1, 137), // 11/05
            ev(0, 2, 138), // 11/06
            ev(1, 4, 141), // 11/09
            ev(2, 4, 144), // 11/12
        ]
    }

    #[test]
    fn build_sorts_runs_by_neighbor_then_time() {
        let t = TemporalCsr::from_events(7, &paper_example(), true);
        // Vertex 0 (paper's vertex 1): neighbors 1 (t=0,137) and 2 (t=138).
        let runs: Vec<(u32, Vec<i64>)> =
            t.runs(0).map(|r| (r.neighbor, r.times.to_vec())).collect();
        assert_eq!(runs, vec![(1, vec![0, 137]), (2, vec![138])]);
        // Vertex 1 (paper's vertex 2) has 6 entries: 0(x2), 2, 3, 4, 6.
        let runs: Vec<u32> = t.runs(1).map(|r| r.neighbor).collect();
        assert_eq!(runs, vec![0, 2, 3, 4, 6]);
        assert_eq!(t.entries(1).0.len(), 6);
    }

    #[test]
    fn entry_count_is_twice_events_for_symmetric() {
        let events = paper_example();
        let t = TemporalCsr::from_events(7, &events, true);
        assert_eq!(t.num_entries(), 2 * events.len());
        let d = TemporalCsr::from_events(7, &events, false);
        assert_eq!(d.num_entries(), events.len());
    }

    #[test]
    fn self_loops_stored_once_in_symmetric_build() {
        let t = TemporalCsr::from_events(2, &[ev(0, 0, 3), ev(0, 1, 4)], true);
        assert_eq!(t.num_entries(), 3);
        let runs: Vec<u32> = t.runs(0).map(|r| r.neighbor).collect();
        assert_eq!(runs, vec![0, 1]);
    }

    #[test]
    fn run_active_scans_inclusive() {
        let r = TimeRange::new(10, 20);
        assert!(run_active(&[10], r));
        assert!(run_active(&[20], r));
        assert!(run_active(&[1, 15, 99], r));
        assert!(!run_active(&[1, 9, 21, 99], r));
        assert!(!run_active(&[], r));
    }

    #[test]
    fn window_membership_matches_paper_intervals() {
        // Paper Fig. 2a: T1 = days [-20, 86] approx (6/1 - 9/15). With our
        // day numbering (06/21 = 0), T1 ≈ [-20, 86], T2 ≈ [10, 116],
        // T3 ≈ [41, 208].
        let t = TemporalCsr::from_events(7, &paper_example(), true);
        let t1 = TimeRange::new(-20, 86);
        let t2 = TimeRange::new(10, 116);
        let t3 = TimeRange::new(41, 208);
        // Edge (1,2) [paper (2,3)] arrives 08/01 = day 41: active in all.
        assert!(t.runs(1).find(|r| r.neighbor == 2).unwrap().active_in(t1));
        assert!(t.runs(1).find(|r| r.neighbor == 2).unwrap().active_in(t2));
        assert!(t.runs(1).find(|r| r.neighbor == 2).unwrap().active_in(t3));
        // Edge (0,1) [paper (1,2)] arrives day 0 and day 137: active in T1
        // and T3 but *not* T2.
        let run_presence = |range| {
            t.runs(0)
                .find(|r| r.neighbor == 1)
                .unwrap()
                .active_in(range)
        };
        assert!(run_presence(t1));
        assert!(!run_presence(t2));
        assert!(run_presence(t3));
        // Edge (1,6) [paper (2,7)] arrives 10/02 = day 103: T2 and T3 only.
        let run_presence = |range| {
            t.runs(1)
                .find(|r| r.neighbor == 6)
                .unwrap()
                .active_in(range)
        };
        assert!(!run_presence(t1));
        assert!(run_presence(t2));
        assert!(run_presence(t3));
    }

    #[test]
    fn active_degree_dedups_multi_events() {
        // Two events on the same pair within the window: degree counts 1.
        let t = TemporalCsr::from_events(2, &[ev(0, 1, 5), ev(0, 1, 7)], true);
        assert_eq!(t.active_degree(0, TimeRange::new(0, 10)), 1);
        assert_eq!(t.active_degree(0, TimeRange::new(6, 10)), 1);
        assert_eq!(t.active_degree(0, TimeRange::new(8, 10)), 0);
    }

    #[test]
    fn active_counts_and_vertex_sets() {
        let t = TemporalCsr::from_events(7, &paper_example(), true);
        let t1 = TimeRange::new(-20, 86);
        // T1 active edges (paper Fig. 2a): (1,2),(3,5),(4,6),(2,3),(2,4),(5,6)
        // in 1-based ids = 6 undirected edges = 12 directed.
        assert_eq!(t.active_edge_count(t1), 12);
        assert_eq!(t.active_vertex_count(t1), 6); // vertex 7 (0-based 6) absent
    }

    #[test]
    fn active_degrees_bulk_matches_single() {
        let t = TemporalCsr::from_events(7, &paper_example(), true);
        let range = TimeRange::new(10, 116);
        let mut deg = vec![0u32; 7];
        t.active_degrees(range, &mut deg);
        for v in 0..7u32 {
            assert_eq!(deg[v as usize] as usize, t.active_degree(v, range));
        }
    }

    #[test]
    fn transpose_of_directed_reverses() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(0, 2, 2), ev(2, 1, 3)], false);
        let tt = t.transpose();
        let runs: Vec<(u32, Vec<i64>)> =
            tt.runs(1).map(|r| (r.neighbor, r.times.to_vec())).collect();
        assert_eq!(runs, vec![(0, vec![1]), (2, vec![3])]);
        assert_eq!(tt.num_entries(), t.num_entries());
    }

    #[test]
    fn from_log_equals_from_events() {
        let events = paper_example();
        let log = EventLog::from_unsorted(events.clone(), 7).unwrap();
        let a = TemporalCsr::from_log(&log, true);
        let b = TemporalCsr::from_events(7, &events, true);
        assert_eq!(a, b);
    }

    #[test]
    fn time_bounds_prune_correctly() {
        let t = TemporalCsr::from_events(4, &[ev(0, 1, 10), ev(2, 3, 100)], true);
        // Vertex 0's only event is at t=10.
        assert!(t.vertex_may_be_active(0, TimeRange::new(0, 20)));
        assert!(!t.vertex_may_be_active(0, TimeRange::new(50, 200)));
        assert!(t.vertex_may_be_active(2, TimeRange::new(50, 200)));
        // Pruned and unpruned degrees agree everywhere.
        for v in 0..4u32 {
            for range in [
                TimeRange::new(0, 20),
                TimeRange::new(50, 200),
                TimeRange::new(0, 5),
            ] {
                assert_eq!(
                    t.active_degree(v, range),
                    t.active_degree_unpruned(v, range),
                    "vertex {v} range {range:?}"
                );
            }
        }
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let t = TemporalCsr::from_events(2, &[ev(0, 1, 5)], true);
        // row: 3*8, col: 2*4, time: 2*8, bounds: 2*16
        assert_eq!(t.memory_bytes(), 24 + 8 + 16 + 32);
    }
}
