//! Event-file I/O: the SNAP-style text format the paper's datasets ship
//! in, plus a compact binary format for fast reloads.
//!
//! Text format: one event per line, `u v t` separated by whitespace.
//! Lines starting with `#` or `%` are comments (SNAP and network-repository
//! conventions). Vertices are `u32`, timestamps `i64`.
//!
//! Binary format: magic `TPRE`, version byte, little-endian `u64` vertex
//! count and event count, then `(u32, u32, i64)` triples.
//!
//! Real-world postmortem logs are messy: truncated downloads, forged or
//! corrupted headers, mixed-in garbage lines. Every reader here is
//! panic-free on arbitrary bytes; the text path additionally supports a
//! [`ParseMode::Lenient`] mode that skips (and counts) malformed records
//! instead of aborting, reporting what it saw in an [`IngestReport`].

use crate::error::GraphError;
use crate::events::{Event, EventLog};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading event files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line (1-based index reported) failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Lenient parsing gave up: more bad records than the configured cap.
    TooManyBadRecords {
        /// How many records were bad when the reader gave up.
        bad: usize,
        /// The configured cap.
        max_bad_records: usize,
    },
    /// The parsed events failed graph validation.
    Graph(GraphError),
    /// The binary header was malformed (bad magic/version, or a declared
    /// record count inconsistent with the actual input size).
    BadHeader(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::TooManyBadRecords {
                bad,
                max_bad_records,
            } => write!(
                f,
                "giving up after {bad} bad records (lenient cap {max_bad_records})"
            ),
            IoError::Graph(e) => write!(f, "invalid event set: {e}"),
            IoError::BadHeader(m) => write!(f, "bad binary header: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// How the text parser treats malformed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Any malformed line aborts the read with a line-numbered error.
    #[default]
    Strict,
    /// Malformed lines are skipped and counted in the [`IngestReport`];
    /// the read aborts only when more than `max_bad_records` lines were
    /// dropped (a cap of `usize::MAX` means "never give up").
    Lenient {
        /// Maximum number of records to drop before aborting.
        max_bad_records: usize,
    },
}

/// What an ingest pass saw, beyond the events it accepted.
///
/// The counts are diagnostic, not corrective: self-loops, duplicates, and
/// out-of-order lines are *legal* (the log is re-sorted on load) and are
/// kept; only malformed / overflowing records are dropped, and only in
/// [`ParseMode::Lenient`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Non-comment, non-blank data lines seen.
    pub lines: usize,
    /// Events accepted into the log.
    pub accepted: usize,
    /// Malformed lines dropped (lenient mode only).
    pub skipped_bad: usize,
    /// Lines dropped because a vertex id exceeded `u32` range.
    pub overflow: usize,
    /// Accepted events with `u == v`.
    pub self_loops: usize,
    /// Accepted events identical to another `(u, v, t)` event.
    pub duplicates: usize,
    /// Lines whose timestamp was smaller than the preceding line's.
    pub out_of_order: usize,
    /// Bytes found after the last declared binary record (binary readers
    /// only; strict mode rejects them instead of counting).
    pub trailing_bytes: usize,
    /// First few per-line messages for the dropped records.
    pub diagnostics: Vec<String>,
}

impl IngestReport {
    /// How many per-line diagnostics are retained verbatim.
    pub const MAX_DIAGNOSTICS: usize = 8;

    fn note(&mut self, line: usize, msg: &str) {
        if self.diagnostics.len() < Self::MAX_DIAGNOSTICS {
            self.diagnostics.push(format!("line {line}: {msg}"));
        }
    }

    /// Total records dropped.
    pub fn dropped(&self) -> usize {
        self.skipped_bad + self.overflow
    }

    /// True when nothing unusual was seen (no drops, loops, duplicates,
    /// reordering, or trailing bytes).
    pub fn is_clean(&self) -> bool {
        self.dropped() == 0
            && self.self_loops == 0
            && self.duplicates == 0
            && self.out_of_order == 0
            && self.trailing_bytes == 0
    }

    /// One-line human summary, suitable for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "ingest: {} lines, {} events accepted, {} dropped ({} malformed, {} overflow), \
             {} self-loops, {} duplicates, {} out-of-order, {} trailing bytes",
            self.lines,
            self.accepted,
            self.dropped(),
            self.skipped_bad,
            self.overflow,
            self.self_loops,
            self.duplicates,
            self.out_of_order,
            self.trailing_bytes
        )
    }
}

/// Parses a text event stream (`u v t` per line, `#`/`%` comments).
///
/// Strict-mode convenience wrapper around [`read_text_report`].
///
/// ```
/// let log = tempopr_graph::io::read_text("# comment\n0 1 10\n1 2 20\n".as_bytes()).unwrap();
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.num_vertices(), 3);
/// ```
pub fn read_text<R: Read>(reader: R) -> Result<EventLog, IoError> {
    read_text_report(reader, ParseMode::Strict).map(|(log, _)| log)
}

/// Parses a text event stream under the given [`ParseMode`], reporting
/// everything unusual it saw in an [`IngestReport`].
pub fn read_text_report<R: Read>(
    reader: R,
    mode: ParseMode,
) -> Result<(EventLog, IngestReport), IoError> {
    let mut events = Vec::new();
    let mut report = IngestReport::default();
    let mut line_buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    let mut prev_t: Option<i64> = None;
    // Workhorse-string loop (perf-book): one allocation for the whole file.
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        report.lines += 1;
        let mut it = line.split_whitespace();
        let parse = |field: Option<&str>, what: &str| -> Result<i64, String> {
            field
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<i64>()
                .map_err(|e| format!("bad {what}: {e}"))
        };
        let parsed = parse(it.next(), "source vertex")
            .and_then(|u| parse(it.next(), "destination vertex").map(|v| (u, v)))
            .and_then(|(u, v)| parse(it.next(), "timestamp").map(|t| (u, v, t)));
        let (u, v, t) = match parsed {
            Ok(rec) => rec,
            Err(message) => match mode {
                ParseMode::Strict => {
                    return Err(IoError::Parse {
                        line: lineno,
                        message,
                    })
                }
                ParseMode::Lenient { max_bad_records } => {
                    report.skipped_bad += 1;
                    report.note(lineno, &message);
                    if report.dropped() > max_bad_records {
                        return Err(IoError::TooManyBadRecords {
                            bad: report.dropped(),
                            max_bad_records,
                        });
                    }
                    continue;
                }
            },
        };
        if !(0..=u32::MAX as i64).contains(&u) || !(0..=u32::MAX as i64).contains(&v) {
            let message = format!("vertex id out of u32 range: {u} {v}");
            match mode {
                ParseMode::Strict => {
                    return Err(IoError::Parse {
                        line: lineno,
                        message,
                    })
                }
                ParseMode::Lenient { max_bad_records } => {
                    report.overflow += 1;
                    report.note(lineno, &message);
                    if report.dropped() > max_bad_records {
                        return Err(IoError::TooManyBadRecords {
                            bad: report.dropped(),
                            max_bad_records,
                        });
                    }
                    continue;
                }
            }
        }
        if u == v {
            report.self_loops += 1;
        }
        if prev_t.is_some_and(|p| t < p) {
            report.out_of_order += 1;
        }
        prev_t = Some(t);
        events.push(Event::new(u as u32, v as u32, t));
    }
    report.accepted = events.len();
    let log = EventLog::from_unsorted_auto(events)?;
    // Duplicate counting needs (u, v) order *within* each timestamp, but
    // the log's stable time sort must otherwise be preserved (text
    // round-trips keep their within-timestamp event order), so sort a
    // scratch copy of each equal-t run instead of the events themselves.
    let evs = log.events();
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < evs.len() {
        let mut j = i + 1;
        while j < evs.len() && evs[j].t == evs[i].t {
            j += 1;
        }
        if j - i > 1 {
            scratch.clear();
            scratch.extend(evs[i..j].iter().map(|e| (e.u, e.v)));
            scratch.sort_unstable();
            report.duplicates += scratch.windows(2).filter(|w| w[0] == w[1]).count();
        }
        i = j;
    }
    Ok((log, report))
}

/// Reads a text event file from `path`.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<EventLog, IoError> {
    read_text(std::fs::File::open(path)?)
}

/// Reads a text event file from `path` under the given [`ParseMode`].
pub fn read_text_file_report<P: AsRef<Path>>(
    path: P,
    mode: ParseMode,
) -> Result<(EventLog, IngestReport), IoError> {
    read_text_report(std::fs::File::open(path)?, mode)
}

/// Writes the log as text (`u v t` per line) with a comment header.
pub fn write_text<W: Write>(log: &EventLog, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# temporal edge set: {} events, {} vertices",
        log.len(),
        log.num_vertices()
    )?;
    for e in log.events() {
        writeln!(w, "{} {} {}", e.u, e.v, e.t)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a text event file to `path`.
pub fn write_text_file<P: AsRef<Path>>(log: &EventLog, path: P) -> Result<(), IoError> {
    write_text(log, std::fs::File::create(path)?)
}

const MAGIC: &[u8; 4] = b"TPRE";
const VERSION: u8 = 1;
const RECORD_LEN: usize = 16;
const HEADER_LEN: u64 = 21; // magic(4) + version(1) + vertices(8) + count(8)

/// Preallocation cap for the binary reader: a forged header can declare
/// any record count, so never trust it for more than this many records up
/// front — the vector grows normally as records actually arrive.
const MAX_PREALLOC_RECORDS: usize = 1 << 20;

/// Writes the compact binary format.
pub fn write_binary<W: Write>(log: &EventLog, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(log.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(log.len() as u64).to_le_bytes())?;
    for e in log.events() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format.
///
/// The header-declared record count is treated as a claim, not a fact: the
/// reader never preallocates more than a fixed cap on its say-so (a forged
/// multi-terabyte count must not OOM the process), and when the total
/// input size is known ([`read_binary_file`]) the count is cross-checked
/// against it before any allocation. Bytes *after* the last declared
/// record are rejected (a truncated header count silently hiding data is
/// as corrupt as a forged one); use [`read_binary_report`] in
/// [`ParseMode::Lenient`] to accept-and-count them instead.
pub fn read_binary<R: Read>(reader: R) -> Result<EventLog, IoError> {
    read_binary_impl(reader, None, ParseMode::Strict).map(|(log, _)| log)
}

/// Reads the compact binary format under the given [`ParseMode`],
/// reporting anything unusual in an [`IngestReport`].
///
/// The only mode-sensitive condition is trailing garbage after the last
/// declared record: strict mode rejects it as a bad header, lenient mode
/// counts it in [`IngestReport::trailing_bytes`] and keeps the declared
/// records. Everything before the end of the declared section (bad magic,
/// bad version, truncation) is a hard error in both modes — there is no
/// record-level resynchronization in a fixed-stride format.
pub fn read_binary_report<R: Read>(
    reader: R,
    mode: ParseMode,
) -> Result<(EventLog, IngestReport), IoError> {
    read_binary_impl(reader, None, mode)
}

fn read_binary_impl<R: Read>(
    reader: R,
    total_len: Option<u64>,
    mode: ParseMode,
) -> Result<(EventLog, IngestReport), IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadHeader(format!("magic {magic:?}")));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(IoError::BadHeader(format!(
            "unsupported version {}",
            ver[0]
        )));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let num_vertices = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf);
    // Sanity: the declared counts must be representable and, when the
    // input size is known, consistent with the bytes actually present.
    if num_vertices > u32::MAX as u64 + 1 {
        return Err(IoError::BadHeader(format!(
            "vertex count {num_vertices} exceeds u32 id space"
        )));
    }
    let body = count
        .checked_mul(RECORD_LEN as u64)
        .ok_or_else(|| IoError::BadHeader(format!("record count {count} overflows byte length")))?;
    if let Some(total) = total_len {
        let available = total.saturating_sub(HEADER_LEN);
        if body > available {
            return Err(IoError::BadHeader(format!(
                "header declares {count} records ({body} bytes) but only {available} bytes follow"
            )));
        }
    }
    let count = count as usize;
    let mut events = Vec::with_capacity(count.min(MAX_PREALLOC_RECORDS));
    let mut rec = [0u8; RECORD_LEN];
    let mut word4 = [0u8; 4];
    let mut word8 = [0u8; 8];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        word4.copy_from_slice(&rec[0..4]);
        let u = u32::from_le_bytes(word4);
        word4.copy_from_slice(&rec[4..8]);
        let v = u32::from_le_bytes(word4);
        word8.copy_from_slice(&rec[8..16]);
        let t = i64::from_le_bytes(word8);
        events.push(Event::new(u, v, t));
    }
    let mut report = IngestReport {
        lines: count,
        accepted: events.len(),
        ..IngestReport::default()
    };
    // Probe past the declared section: a well-formed file ends exactly
    // after the last record, so any further byte means the header's count
    // disagrees with the content.
    let mut trailing = 0usize;
    let mut probe = [0u8; 4096];
    loop {
        match r.read(&mut probe) {
            Ok(0) => break,
            Ok(n) => trailing += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if trailing > 0 {
        let message = format!("{trailing} trailing bytes after the declared {count} records");
        match mode {
            ParseMode::Strict => return Err(IoError::BadHeader(message)),
            ParseMode::Lenient { .. } => {
                report.trailing_bytes = trailing;
                if report.diagnostics.len() < IngestReport::MAX_DIAGNOSTICS {
                    report.diagnostics.push(message);
                }
            }
        }
    }
    let log = EventLog::from_unsorted(events, num_vertices as usize)?;
    Ok((log, report))
}

/// Writes the binary format to `path`.
pub fn write_binary_file<P: AsRef<Path>>(log: &EventLog, path: P) -> Result<(), IoError> {
    write_binary(log, std::fs::File::create(path)?)
}

/// Reads the binary format from `path`, cross-checking the declared
/// record count against the file size before allocating.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<EventLog, IoError> {
    read_binary_file_report(path, ParseMode::Strict).map(|(log, _)| log)
}

/// Reads the binary format from `path` under the given [`ParseMode`]
/// (see [`read_binary_report`]), cross-checking the declared record count
/// against the file size before allocating.
pub fn read_binary_file_report<P: AsRef<Path>>(
    path: P,
    mode: ParseMode,
) -> Result<(EventLog, IngestReport), IoError> {
    let f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    read_binary_impl(f, Some(len), mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventLog {
        EventLog::from_unsorted(
            vec![
                Event::new(0, 1, 10),
                Event::new(2, 3, 5),
                Event::new(1, 4, 20),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_text(&log, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back.events(), log.events());
        assert_eq!(back.num_vertices(), 5);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let input = "# header\n% other comment\n\n0 1 10\n  2 3 5 \n";
        let log = read_text(input.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_time(), 5);
    }

    #[test]
    fn text_reports_line_numbers_on_errors() {
        let input = "0 1 10\n0 x 3\n";
        match read_text(input.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("destination"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let input = "0 1\n";
        match read_text(input.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("missing timestamp"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_rejects_out_of_range_vertices() {
        let input = "0 4294967296 1\n";
        assert!(matches!(
            read_text(input.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn text_negative_timestamps_allowed() {
        let log = read_text("0 1 -5\n1 2 3\n".as_bytes()).unwrap();
        assert_eq!(log.first_time(), -5);
    }

    #[test]
    fn empty_text_is_an_error() {
        assert!(matches!(
            read_text("# only comments\n".as_bytes()),
            Err(IoError::Graph(GraphError::EmptyEvents))
        ));
    }

    #[test]
    fn lenient_skips_and_counts_bad_lines() {
        let input = "0 1 10\ngarbage line\n2 3 5\n0 x 7\n1 4 20\n";
        let (log, report) = read_text_report(
            input.as_bytes(),
            ParseMode::Lenient {
                max_bad_records: 10,
            },
        )
        .unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(report.lines, 5);
        assert_eq!(report.accepted, 3);
        assert_eq!(report.skipped_bad, 2);
        assert_eq!(report.dropped(), 2);
        assert_eq!(report.diagnostics.len(), 2);
        assert!(report.diagnostics[0].contains("line 2"), "{report:?}");
    }

    #[test]
    fn lenient_cap_aborts() {
        let input = "x\ny\nz\n0 1 5\n";
        let err = read_text_report(input.as_bytes(), ParseMode::Lenient { max_bad_records: 2 })
            .unwrap_err();
        assert!(matches!(
            err,
            IoError::TooManyBadRecords {
                bad: 3,
                max_bad_records: 2
            }
        ));
    }

    #[test]
    fn report_counts_loops_duplicates_and_disorder() {
        let input = "0 1 10\n2 2 4\n0 1 10\n3 4 2\n";
        let (log, report) = read_text_report(input.as_bytes(), ParseMode::Strict).unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(report.self_loops, 1);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.out_of_order, 2); // 4 after 10, 2 after 10
        assert_eq!(report.skipped_bad, 0);
        assert!(!report.is_clean());
        assert!(report.summary().contains("4 events accepted"));
    }

    #[test]
    fn clean_ingest_reports_clean() {
        let (_, report) = read_text_report("0 1 1\n1 2 2\n".as_bytes(), ParseMode::Strict).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn strict_mode_still_errors_in_report_api() {
        assert!(matches!(
            read_text_report("bogus\n".as_bytes(), ParseMode::Strict),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_binary(&log, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(&bad[..]), Err(IoError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(read_binary(&bad[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn binary_trailing_garbage_rejected_strict() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"junk after the last record");
        match read_binary(&buf[..]) {
            Err(IoError::BadHeader(m)) => {
                assert!(m.contains("trailing"), "{m}");
                assert!(m.contains("26"), "{m}");
            }
            other => panic!("expected BadHeader, got {other:?}"),
        }
        // The file path rejects it too.
        let dir = std::env::temp_dir().join(format!("tempopr_io_trail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trail.bin");
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            read_binary_file(&path),
            Err(IoError::BadHeader(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_trailing_garbage_counted_lenient() {
        let log = sample();
        let mut buf = Vec::new();
        write_binary(&log, &mut buf).unwrap();
        buf.extend_from_slice(&[0xAB; 7]);
        let (back, report) = read_binary_report(
            &buf[..],
            ParseMode::Lenient {
                max_bad_records: usize::MAX,
            },
        )
        .unwrap();
        assert_eq!(back, log);
        assert_eq!(report.trailing_bytes, 7);
        assert_eq!(report.accepted, 3);
        assert!(!report.is_clean());
        assert!(
            report.summary().contains("7 trailing bytes"),
            "{}",
            report.summary()
        );
        assert!(report.diagnostics[0].contains("trailing"), "{report:?}");
    }

    #[test]
    fn binary_clean_report_is_clean() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        let (_, report) = read_binary_report(&buf[..], ParseMode::Strict).unwrap();
        assert_eq!(report.trailing_bytes, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn binary_truncation_is_io_error() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
    }

    #[test]
    fn forged_record_count_does_not_preallocate() {
        // A header claiming 2^40 records (a 16 TiB body) with an empty
        // body must fail fast (EOF on the first record) without
        // attempting a huge allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&5u64.to_le_bytes()); // vertices
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes()); // forged count
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
        // A count whose byte length overflows u64 is rejected at the
        // header, before any read.
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(MAGIC);
        buf2.push(VERSION);
        buf2.extend_from_slice(&5u64.to_le_bytes());
        buf2.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf2[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn forged_vertex_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd vertex count
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn forged_header_count_rejected_against_file_size() {
        // Via the file path the declared count is checked against the
        // actual file size before any allocation.
        let dir = std::env::temp_dir().join("tempopr_io_forged_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forged.bin");
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        // Forge the count field (bytes 13..21) to claim a million records.
        buf[13..21].copy_from_slice(&1_000_000u64.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        match read_binary_file(&path) {
            Err(IoError::BadHeader(m)) => assert!(m.contains("1000000"), "{m}"),
            other => panic!("expected BadHeader, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("tempopr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = sample();
        let tpath = dir.join("events.txt");
        write_text_file(&log, &tpath).unwrap();
        assert_eq!(read_text_file(&tpath).unwrap().events(), log.events());
        let bpath = dir.join("events.bin");
        write_binary_file(&log, &bpath).unwrap();
        assert_eq!(read_binary_file(&bpath).unwrap(), log);
        std::fs::remove_dir_all(&dir).ok();
    }
}
