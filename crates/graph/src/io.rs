//! Event-file I/O: the SNAP-style text format the paper's datasets ship
//! in, plus a compact binary format for fast reloads.
//!
//! Text format: one event per line, `u v t` separated by whitespace.
//! Lines starting with `#` or `%` are comments (SNAP and network-repository
//! conventions). Vertices are `u32`, timestamps `i64`.
//!
//! Binary format: magic `TPRE`, version byte, little-endian `u64` vertex
//! count and event count, then `(u32, u32, i64)` triples.

use crate::error::GraphError;
use crate::events::{Event, EventLog};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading event files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line (1-based index reported) failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The parsed events failed graph validation.
    Graph(GraphError),
    /// The binary header was malformed.
    BadHeader(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Graph(e) => write!(f, "invalid event set: {e}"),
            IoError::BadHeader(m) => write!(f, "bad binary header: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Parses a text event stream (`u v t` per line, `#`/`%` comments).
///
/// ```
/// let log = tempopr_graph::io::read_text("# comment\n0 1 10\n1 2 20\n".as_bytes()).unwrap();
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.num_vertices(), 3);
/// ```
pub fn read_text<R: Read>(reader: R) -> Result<EventLog, IoError> {
    let mut events = Vec::new();
    let mut line_buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    // Workhorse-string loop (perf-book): one allocation for the whole file.
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |field: Option<&str>, what: &str, lineno: usize| -> Result<i64, IoError> {
            field
                .ok_or_else(|| IoError::Parse {
                    line: lineno,
                    message: format!("missing {what}"),
                })?
                .parse::<i64>()
                .map_err(|e| IoError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
        };
        let u = parse(it.next(), "source vertex", lineno)?;
        let v = parse(it.next(), "destination vertex", lineno)?;
        let t = parse(it.next(), "timestamp", lineno)?;
        if !(0..=u32::MAX as i64).contains(&u) || !(0..=u32::MAX as i64).contains(&v) {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("vertex id out of u32 range: {u} {v}"),
            });
        }
        events.push(Event::new(u as u32, v as u32, t));
    }
    Ok(EventLog::from_unsorted_auto(events)?)
}

/// Reads a text event file from `path`.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<EventLog, IoError> {
    read_text(std::fs::File::open(path)?)
}

/// Writes the log as text (`u v t` per line) with a comment header.
pub fn write_text<W: Write>(log: &EventLog, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# temporal edge set: {} events, {} vertices",
        log.len(),
        log.num_vertices()
    )?;
    for e in log.events() {
        writeln!(w, "{} {} {}", e.u, e.v, e.t)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a text event file to `path`.
pub fn write_text_file<P: AsRef<Path>>(log: &EventLog, path: P) -> Result<(), IoError> {
    write_text(log, std::fs::File::create(path)?)
}

const MAGIC: &[u8; 4] = b"TPRE";
const VERSION: u8 = 1;

/// Writes the compact binary format.
pub fn write_binary<W: Write>(log: &EventLog, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(log.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(log.len() as u64).to_le_bytes())?;
    for e in log.events() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<EventLog, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadHeader(format!("magic {magic:?}")));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(IoError::BadHeader(format!(
            "unsupported version {}",
            ver[0]
        )));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let num_vertices = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    let mut events = Vec::with_capacity(count);
    let mut rec = [0u8; 16];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let t = i64::from_le_bytes(rec[8..16].try_into().unwrap());
        events.push(Event::new(u, v, t));
    }
    Ok(EventLog::from_unsorted(events, num_vertices)?)
}

/// Writes the binary format to `path`.
pub fn write_binary_file<P: AsRef<Path>>(log: &EventLog, path: P) -> Result<(), IoError> {
    write_binary(log, std::fs::File::create(path)?)
}

/// Reads the binary format from `path`.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<EventLog, IoError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventLog {
        EventLog::from_unsorted(
            vec![
                Event::new(0, 1, 10),
                Event::new(2, 3, 5),
                Event::new(1, 4, 20),
            ],
            5,
        )
        .unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_text(&log, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back.events(), log.events());
        assert_eq!(back.num_vertices(), 5);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let input = "# header\n% other comment\n\n0 1 10\n  2 3 5 \n";
        let log = read_text(input.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_time(), 5);
    }

    #[test]
    fn text_reports_line_numbers_on_errors() {
        let input = "0 1 10\n0 x 3\n";
        match read_text(input.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("destination"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let input = "0 1\n";
        match read_text(input.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("missing timestamp"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_rejects_out_of_range_vertices() {
        let input = "0 4294967296 1\n";
        assert!(matches!(
            read_text(input.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn text_negative_timestamps_allowed() {
        let log = read_text("0 1 -5\n1 2 3\n".as_bytes()).unwrap();
        assert_eq!(log.first_time(), -5);
    }

    #[test]
    fn empty_text_is_an_error() {
        assert!(matches!(
            read_text("# only comments\n".as_bytes()),
            Err(IoError::Graph(GraphError::EmptyEvents))
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_binary(&log, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(&bad[..]), Err(IoError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(read_binary(&bad[..]), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn binary_truncation_is_io_error() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("tempopr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = sample();
        let tpath = dir.join("events.txt");
        write_text_file(&log, &tpath).unwrap();
        assert_eq!(read_text_file(&tpath).unwrap().events(), log.events());
        let bpath = dir.join("events.bin");
        write_binary_file(&log, &bpath).unwrap();
        assert_eq!(read_binary_file(&bpath).unwrap(), log);
        std::fs::remove_dir_all(&dir).ok();
    }
}
