//! Per-window activity/degree index for multi-window graphs.
//!
//! Every PageRank kernel needs, per window: the active vertex set, the
//! out-degree (and its reciprocal) of each active vertex, and the dangling
//! vertices. Deriving these on demand costs one full scan of the part's
//! temporal CSR *per window per kernel invocation* — `Θ(entries)` of setup
//! before a single iteration runs. A [`WindowIndex`] precomputes all of it
//! for every window a [`MultiWindowGraph`](crate::MultiWindowGraph) serves
//! in **one** pass over the part's CSR, so a kernel's degree/activity phase
//! collapses to an `O(|V_w active|)` copy out of [`WindowIndexView`].
//!
//! ## Build algorithm
//! A timestamp `t` belongs to the contiguous block of windows whose
//! `[start, end]` span contains it (windows slide by a fixed offset, so the
//! block is an interval of window indices computed arithmetically). For
//! each vertex, each neighbor run's ascending timestamps yield ascending
//! window intervals which are merged on the fly; every merged interval adds
//! `+1` to a per-vertex difference array over window indices. A prefix sum
//! over the touched sub-range recovers the vertex's active degree in every
//! window, giving total build cost
//! `O(entries + Σ_w |V_w active| + V)` — independent of the window count
//! except through the output itself.

use crate::events::{Timestamp, VertexId};
use crate::tcsr::TemporalCsr;
use crate::window::TimeRange;
use std::ops::Range;

/// Precomputed per-window active lists, degrees, and dangling sets for all
/// windows served by one multi-window graph. Vertex ids are the part's
/// local ids (the same space its [`TemporalCsr`] uses).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowIndex {
    /// The time range of each indexed window, in window order.
    ranges: Box<[TimeRange]>,
    /// Offsets into the aligned per-active-vertex arrays (`W + 1` entries).
    off: Box<[usize]>,
    /// Active vertices per window, ascending within each window.
    vertex: Box<[VertexId]>,
    /// Out-degree aligned with `vertex` (0 for dangling vertices).
    deg_out: Box<[u32]>,
    /// `1 / deg_out` aligned with `vertex` (0.0 for dangling vertices).
    inv_deg: Box<[f64]>,
    /// Offsets into `dangling` (`W + 1` entries).
    dang_off: Box<[usize]>,
    /// Dangling vertices (active with zero out-degree) per window, ascending.
    dangling: Box<[VertexId]>,
}

/// Borrowed slices of one window's index data — everything a kernel's
/// setup phase needs, sized by the window's active set.
#[derive(Debug, Clone, Copy)]
pub struct WindowIndexView<'a> {
    /// The window's time range.
    pub range: TimeRange,
    /// Vertices active in the window (local ids, ascending).
    pub vertices: &'a [VertexId],
    /// Out-degree per active vertex, aligned with `vertices`.
    pub deg_out: &'a [u32],
    /// Reciprocal out-degree per active vertex (0.0 where dangling).
    pub inv_deg: &'a [f64],
    /// Active vertices with zero out-degree, ascending.
    pub dangling: &'a [VertexId],
}

impl WindowIndexView<'_> {
    /// `|V_w|`: number of active vertices in the window.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.vertices.len()
    }
}

/// Maps a timestamp to the contiguous block of windows containing it.
/// Windows from a [`WindowSpec`](crate::WindowSpec) are uniformly spaced
/// and equally wide, which admits an O(1) arithmetic mapping; anything
/// else (sorted by start and end) falls back to binary search.
struct WindowGrid<'a> {
    ranges: &'a [TimeRange],
    /// `(s0, sw, delta)` when the windows are a uniform grid.
    uniform: Option<(Timestamp, Timestamp, Timestamp)>,
}

impl<'a> WindowGrid<'a> {
    fn new(ranges: &'a [TimeRange]) -> Self {
        debug_assert!(
            ranges
                .windows(2)
                .all(|p| p[0].start <= p[1].start && p[0].end <= p[1].end),
            "window ranges must be sorted by start and end"
        );
        let uniform = (ranges.len() >= 2)
            .then(|| {
                let sw = ranges[1].start - ranges[0].start;
                let delta = ranges[0].end - ranges[0].start;
                (sw > 0
                    && ranges
                        .windows(2)
                        .all(|p| p[1].start - p[0].start == sw && p[1].end - p[1].start == delta))
                .then_some((ranges[0].start, sw, delta))
            })
            .flatten();
        WindowGrid { ranges, uniform }
    }

    /// The (possibly empty) interval of window indices whose range
    /// contains `t`.
    fn windows_containing(&self, t: Timestamp) -> Range<usize> {
        match self.uniform {
            Some((s0, sw, delta)) => {
                let w = self.ranges.len();
                // j satisfies j*sw <= t - s0 <= j*sw + delta.
                let hi = (t - s0).div_euclid(sw);
                if hi < 0 {
                    return 0..0;
                }
                let hi = (hi as usize).min(w - 1);
                let lo = (t - s0 - delta + sw - 1).div_euclid(sw).max(0) as usize;
                if lo > hi {
                    0..0
                } else {
                    lo..hi + 1
                }
            }
            None => {
                let lo = self.ranges.partition_point(|r| r.end < t);
                let hi = self.ranges.partition_point(|r| r.start <= t);
                lo..hi.max(lo)
            }
        }
    }
}

/// One pass over `tcsr`: for every vertex and window, the number of
/// neighbor runs active in that window. Emits `(window, vertex, degree)`
/// with vertices ascending within each window, degree always positive.
fn scan_degrees(
    tcsr: &TemporalCsr,
    grid: &WindowGrid<'_>,
    num_windows: usize,
    mut emit: impl FnMut(u32, VertexId, u32),
) {
    let n = tcsr.num_vertices();
    // Per-vertex difference array over window indices; only the touched
    // sub-range is swept and reset, so a vertex costs O(its entries + the
    // window span of its activity), not O(W).
    let mut diff = vec![0i32; num_windows + 1];
    for v in 0..n {
        let mut lo_touched = num_windows;
        let mut hi_touched = 0usize;
        for run in tcsr.runs(v as VertexId) {
            // Ascending timestamps give ascending window intervals; merge
            // adjacent/overlapping ones so each run counts once per window.
            let mut cur: Option<(usize, usize)> = None;
            for &t in run.times {
                let w = grid.windows_containing(t);
                if w.is_empty() {
                    continue;
                }
                let (a, b) = (w.start, w.end - 1);
                cur = match cur {
                    Some((ca, cb)) if a <= cb + 1 => Some((ca, cb.max(b))),
                    Some((ca, cb)) => {
                        diff[ca] += 1;
                        diff[cb + 1] -= 1;
                        lo_touched = lo_touched.min(ca);
                        hi_touched = hi_touched.max(cb);
                        Some((a, b))
                    }
                    None => Some((a, b)),
                };
            }
            if let Some((ca, cb)) = cur {
                diff[ca] += 1;
                diff[cb + 1] -= 1;
                lo_touched = lo_touched.min(ca);
                hi_touched = hi_touched.max(cb);
            }
        }
        if lo_touched <= hi_touched {
            let mut acc = 0i32;
            for (j, d) in diff[lo_touched..=hi_touched].iter_mut().enumerate() {
                acc += *d;
                *d = 0;
                if acc > 0 {
                    emit((lo_touched + j) as u32, v as VertexId, acc as u32);
                }
            }
            diff[hi_touched + 1] = 0;
        }
    }
}

/// Counting-sorts `(window, ..)` tuples into window-major order, keeping
/// the per-window vertex order (ascending, because generation is
/// vertex-major). Returns `W + 1` offsets.
fn sort_by_window<T: Copy + Default>(
    entries: &[(u32, VertexId, T)],
    num_windows: usize,
) -> (Vec<usize>, Vec<(VertexId, T)>) {
    let mut off = vec![0usize; num_windows + 1];
    for &(w, _, _) in entries {
        off[w as usize + 1] += 1;
    }
    for j in 0..num_windows {
        off[j + 1] += off[j];
    }
    let mut sorted = vec![(0 as VertexId, T::default()); entries.len()];
    let mut cursor = off[..num_windows].to_vec();
    for &(w, v, x) in entries {
        let c = &mut cursor[w as usize];
        sorted[*c] = (v, x);
        *c += 1;
    }
    (off, sorted)
}

impl WindowIndex {
    /// Builds the index over `ranges` for a part whose out-edges live in
    /// `push`. For directed builds, `pull` must be the in-edge transpose so
    /// vertices that only *receive* edges still join the active set; pass
    /// `None` for symmetric builds (out-activity is all activity there).
    pub fn build(push: &TemporalCsr, pull: Option<&TemporalCsr>, ranges: &[TimeRange]) -> Self {
        let w = ranges.len();
        let grid = WindowGrid::new(ranges);

        let mut out_entries: Vec<(u32, VertexId, u32)> = Vec::new();
        scan_degrees(push, &grid, w, |win, v, deg| {
            out_entries.push((win, v, deg));
        });
        let (out_off, out_sorted) = sort_by_window(&out_entries, w);
        drop(out_entries);

        let (in_off, in_sorted) = match pull {
            Some(pt) => {
                debug_assert_eq!(pt.num_vertices(), push.num_vertices());
                let mut in_entries: Vec<(u32, VertexId, ())> = Vec::new();
                scan_degrees(pt, &grid, w, |win, v, _| {
                    in_entries.push((win, v, ()));
                });
                sort_by_window(&in_entries, w)
            }
            None => (vec![0usize; w + 1], Vec::new()),
        };

        // Merge out- and in-activity per window into the final layout.
        let mut off = Vec::with_capacity(w + 1);
        let mut vertex = Vec::with_capacity(out_sorted.len());
        let mut deg_out = Vec::with_capacity(out_sorted.len());
        let mut inv_deg = Vec::with_capacity(out_sorted.len());
        let mut dang_off = Vec::with_capacity(w + 1);
        let mut dangling = Vec::new();
        off.push(0);
        dang_off.push(0);
        for j in 0..w {
            let outs = &out_sorted[out_off[j]..out_off[j + 1]];
            let ins = &in_sorted[in_off[j]..in_off[j + 1]];
            let (mut a, mut b) = (0usize, 0usize);
            while a < outs.len() || b < ins.len() {
                let (v, d) = match (outs.get(a), ins.get(b)) {
                    (Some(&(vo, d)), Some(&(vi, _))) if vo < vi => {
                        a += 1;
                        (vo, d)
                    }
                    (Some(&(vo, d)), Some(&(vi, _))) if vo == vi => {
                        a += 1;
                        b += 1;
                        (vo, d)
                    }
                    (_, Some(&(vi, _))) => {
                        b += 1;
                        (vi, 0)
                    }
                    (Some(&(vo, d)), None) => {
                        a += 1;
                        (vo, d)
                    }
                    (None, None) => break, // both sides exhausted
                };
                vertex.push(v);
                deg_out.push(d);
                if d > 0 {
                    inv_deg.push(1.0 / d as f64);
                } else {
                    inv_deg.push(0.0);
                    dangling.push(v);
                }
            }
            off.push(vertex.len());
            dang_off.push(dangling.len());
        }

        WindowIndex {
            ranges: ranges.to_vec().into_boxed_slice(),
            off: off.into_boxed_slice(),
            vertex: vertex.into_boxed_slice(),
            deg_out: deg_out.into_boxed_slice(),
            inv_deg: inv_deg.into_boxed_slice(),
            dang_off: dang_off.into_boxed_slice(),
            dangling: dangling.into_boxed_slice(),
        }
    }

    /// Number of indexed windows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.ranges.len()
    }

    /// The indexed windows' time ranges, in order.
    #[inline]
    pub fn ranges(&self) -> &[TimeRange] {
        &self.ranges
    }

    /// The view of local window `j`.
    ///
    /// # Panics
    /// Panics if `j >= num_windows()`.
    #[inline]
    pub fn view(&self, j: usize) -> WindowIndexView<'_> {
        let (lo, hi) = (self.off[j], self.off[j + 1]);
        WindowIndexView {
            range: self.ranges[j],
            vertices: &self.vertex[lo..hi],
            deg_out: &self.deg_out[lo..hi],
            inv_deg: &self.inv_deg[lo..hi],
            dangling: &self.dangling[self.dang_off[j]..self.dang_off[j + 1]],
        }
    }

    /// Total active-list entries across all windows (`Σ_w |V_w active|`).
    #[inline]
    pub fn total_active_entries(&self) -> usize {
        self.vertex.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ranges.len() * std::mem::size_of::<TimeRange>()
            + (self.off.len() + self.dang_off.len()) * std::mem::size_of::<usize>()
            + (self.vertex.len() + self.dangling.len()) * std::mem::size_of::<VertexId>()
            + self.deg_out.len() * std::mem::size_of::<u32>()
            + self.inv_deg.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn spec_ranges(t0: Timestamp, delta: Timestamp, sw: Timestamp, count: usize) -> Vec<TimeRange> {
        (0..count)
            .map(|i| {
                let s = t0 + i as Timestamp * sw;
                TimeRange::new(s, s + delta)
            })
            .collect()
    }

    /// Brute-force index check against `TemporalCsr::active_degree`.
    fn check_against_bruteforce(
        push: &TemporalCsr,
        pull: Option<&TemporalCsr>,
        ranges: &[TimeRange],
    ) {
        let idx = WindowIndex::build(push, pull, ranges);
        assert_eq!(idx.num_windows(), ranges.len());
        for (j, &range) in ranges.iter().enumerate() {
            let view = idx.view(j);
            assert_eq!(view.range, range);
            let mut expect: Vec<(VertexId, u32)> = Vec::new();
            for v in 0..push.num_vertices() as VertexId {
                let d = push.active_degree(v, range) as u32;
                let active = d > 0 || pull.is_some_and(|p| p.active_degree(v, range) > 0);
                if active {
                    expect.push((v, d));
                }
            }
            let got: Vec<(VertexId, u32)> = view
                .vertices
                .iter()
                .copied()
                .zip(view.deg_out.iter().copied())
                .collect();
            assert_eq!(got, expect, "window {j}");
            let expect_dangling: Vec<VertexId> = expect
                .iter()
                .filter(|&&(_, d)| d == 0)
                .map(|&(v, _)| v)
                .collect();
            assert_eq!(view.dangling, &expect_dangling[..], "window {j} dangling");
            for (i, &v) in view.vertices.iter().enumerate() {
                let d = view.deg_out[i];
                if d > 0 {
                    assert!(
                        (view.inv_deg[i] - 1.0 / d as f64).abs() < 1e-15,
                        "vertex {v}"
                    );
                } else {
                    assert_eq!(view.inv_deg[i], 0.0);
                }
            }
        }
    }

    fn sample_events() -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..150u32 {
            let u = (i * 13 + 2) % 20;
            let v = (i * 7 + 5) % 20;
            if u != v {
                events.push(Event::new(u, v, (i * 3) as i64));
            }
        }
        // A burst of repeated events on one pair, to exercise run merging.
        for t in 100..120 {
            events.push(Event::new(1, 2, t));
        }
        events
    }

    #[test]
    fn symmetric_index_matches_bruteforce() {
        let t = TemporalCsr::from_events(20, &sample_events(), true);
        let ranges = spec_ranges(0, 90, 40, 11);
        check_against_bruteforce(&t, None, &ranges);
    }

    #[test]
    fn directed_index_matches_bruteforce() {
        let out = TemporalCsr::from_events(20, &sample_events(), false);
        let pull = out.transpose();
        let ranges = spec_ranges(0, 90, 40, 11);
        check_against_bruteforce(&out, Some(&pull), &ranges);
    }

    #[test]
    fn overlapping_and_disjoint_grids() {
        let t = TemporalCsr::from_events(20, &sample_events(), true);
        // Heavy overlap (delta >> sw), no overlap, and sparse coverage.
        for (delta, sw) in [(200, 10), (30, 30), (10, 120)] {
            let count = (460 / sw + 1) as usize;
            check_against_bruteforce(&t, None, &spec_ranges(0, delta, sw, count));
        }
    }

    #[test]
    fn single_window_uses_fallback_path() {
        let t = TemporalCsr::from_events(20, &sample_events(), true);
        check_against_bruteforce(&t, None, &spec_ranges(50, 100, 1, 1));
    }

    #[test]
    fn negative_origin_grid() {
        let events = vec![
            Event::new(0, 1, -50),
            Event::new(1, 2, -10),
            Event::new(2, 3, 25),
        ];
        let t = TemporalCsr::from_events(4, &events, true);
        check_against_bruteforce(&t, None, &spec_ranges(-60, 40, 25, 5));
    }

    #[test]
    fn empty_windows_have_empty_views() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let ranges = spec_ranges(100, 10, 10, 3);
        let idx = WindowIndex::build(&t, None, &ranges);
        for j in 0..3 {
            assert_eq!(idx.view(j).active_count(), 0);
            assert!(idx.view(j).dangling.is_empty());
        }
        assert_eq!(idx.total_active_entries(), 0);
    }

    #[test]
    fn memory_bytes_positive_and_scales() {
        let t = TemporalCsr::from_events(20, &sample_events(), true);
        let small = WindowIndex::build(&t, None, &spec_ranges(0, 50, 100, 2));
        let large = WindowIndex::build(&t, None, &spec_ranges(0, 200, 20, 20));
        assert!(small.memory_bytes() > 0);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn grid_mapping_agrees_with_contains() {
        let ranges = spec_ranges(-7, 33, 12, 9);
        let grid = WindowGrid::new(&ranges);
        assert!(grid.uniform.is_some());
        for t in -60..160 {
            let got = grid.windows_containing(t);
            let expect: Vec<usize> = (0..ranges.len())
                .filter(|&j| ranges[j].contains(t))
                .collect();
            assert_eq!(got.collect::<Vec<_>>(), expect, "t={t}");
        }
    }
}
