//! Unified error taxonomy for the execution layer.
//!
//! Every failure that can stop a run is an [`EngineError`]; failures that
//! the engine *contains* (a single poisoned window) never surface here —
//! they become [`crate::result::WindowStatus::Failed`] entries in an
//! otherwise-complete [`crate::result::RunOutput`].

use tempopr_graph::io::IoError;
use tempopr_graph::GraphError;
use tempopr_kernel::KernelError;

/// Which phase of a run an error belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reading / parsing input events.
    Ingest,
    /// Building the multi-window representation.
    Build,
    /// Thread-pool or kernel setup.
    Setup,
    /// Power iteration of one window.
    Iterate,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Ingest => "ingest",
            Phase::Build => "build",
            Phase::Setup => "setup",
            Phase::Iterate => "iterate",
        };
        f.write_str(s)
    }
}

/// Any failure that can abort an execution-layer entry point.
#[derive(Debug)]
pub enum EngineError {
    /// Event-set or window-spec validation failed.
    Graph(GraphError),
    /// Reading an event file failed.
    Io(IoError),
    /// A kernel failed, with the run context attached.
    Kernel {
        /// Global window index, when the failure is window-scoped.
        window: Option<usize>,
        /// Multi-window part index, when part-scoped.
        part: Option<usize>,
        /// Phase of the run.
        phase: Phase,
        /// The underlying kernel error.
        source: KernelError,
    },
    /// The worker thread pool could not be built.
    ThreadPool(String),
    /// A durable run could not write or resume from its checkpoint
    /// manifest (resume-time incompatibility or corruption; write-time
    /// failures after startup only degrade durability, never the run).
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl EngineError {
    /// Wraps a kernel error with window/part/phase context.
    pub fn kernel(
        window: Option<usize>,
        part: Option<usize>,
        phase: Phase,
        source: KernelError,
    ) -> Self {
        EngineError::Kernel {
            window,
            part,
            phase,
            source,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Kernel {
                window,
                part,
                phase,
                source,
            } => {
                write!(f, "kernel error ({phase}")?;
                if let Some(w) = window {
                    write!(f, ", window {w}")?;
                }
                if let Some(p) = part {
                    write!(f, ", part {p}")?;
                }
                write!(f, "): {source}")
            }
            EngineError::ThreadPool(m) => write!(f, "thread pool: {m}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Kernel { source, .. } => Some(source),
            EngineError::ThreadPool(_) => None,
            EngineError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<crate::checkpoint::CheckpointError> for EngineError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<IoError> for EngineError {
    fn from(e: IoError) -> Self {
        EngineError::Io(e)
    }
}

impl From<KernelError> for EngineError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::ThreadPool(m) => EngineError::ThreadPool(m),
            other => EngineError::Kernel {
                window: None,
                part: None,
                phase: Phase::Setup,
                source: other,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = EngineError::kernel(
            Some(7),
            Some(1),
            Phase::Iterate,
            KernelError::SingularSystem,
        );
        let s = e.to_string();
        assert!(s.contains("window 7"), "{s}");
        assert!(s.contains("part 1"), "{s}");
        assert!(s.contains("iterate"), "{s}");
    }

    #[test]
    fn conversions_and_source_chain() {
        let e: EngineError = GraphError::EmptyEvents.into();
        assert!(matches!(e, EngineError::Graph(_)));
        let e: EngineError = KernelError::SingularSystem.into();
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
