//! The postmortem PageRank engine (paper §4).
//!
//! [`PostmortemEngine::new`] builds the multi-window representation once
//! (§4.1); [`PostmortemEngine::run`] then computes PageRank for every
//! window under the configured parallelization level (§4.3), kernel
//! (SpMV or SpMM, §4.4), and partial-initialization policy (§4.2).
//!
//! ## How the paper's mechanisms map onto the run loop
//! - **Window-level parallelism** schedules *window indices* through the
//!   configured [`Scheduler`]; a grain of consecutive windows is processed
//!   in order on one thread, so partial initialization applies within the
//!   grain exactly as §4.3.1 describes for TBB work-stealing chunks.
//! - **Application-level parallelism** walks windows in order and hands the
//!   scheduler to the SpMV/SpMM kernel instead.
//! - **Nested** does both on one rayon pool.
//! - **SpMM region scheduling** splits each multi-window graph's windows
//!   into `lanes` contiguous regions and batches the `j`-th window of every
//!   region, so every batch after the first partially initializes from the
//!   previous batch (§4.4).
//! - Partial initialization never crosses a multi-window boundary (§4.2):
//!   vertex numberings differ between parts.

use crate::config::{KernelKind, ParallelMode, PostmortemConfig, RetainMode};
use crate::result::{hash01, RunOutput, SparseRanks, WindowOutput};
use tempopr_graph::{EventLog, GraphError, MultiWindowGraph, MultiWindowSet, WindowSpec};
use tempopr_kernel::{
    pagerank_batch, pagerank_batch_indexed, pagerank_window, pagerank_window_blocking,
    pagerank_window_blocking_indexed, pagerank_window_indexed, thread_pool, BlockingWorkspace,
    Init, PrStats, PrWorkspace, Scheduler, SpmmWorkspace,
};

/// A ready-to-run postmortem analysis: the multi-window representation plus
/// the execution configuration.
pub struct PostmortemEngine {
    set: MultiWindowSet,
    cfg: PostmortemConfig,
    pool: Option<rayon::ThreadPool>,
}

impl PostmortemEngine {
    /// Builds the multi-window representation for `log` under `spec`.
    ///
    /// This is the postmortem model's one-time graph construction — the
    /// cost the offline model pays per window and the streaming model pays
    /// per update batch.
    pub fn new(
        log: &EventLog,
        spec: WindowSpec,
        cfg: PostmortemConfig,
    ) -> Result<Self, GraphError> {
        let parts = if cfg.num_multiwindows == 0 {
            auto_multiwindows(&spec, cfg.kernel)
        } else {
            cfg.num_multiwindows
        };
        let set = MultiWindowSet::build(log, spec, parts, cfg.symmetric, cfg.partition)?;
        let pool = if cfg.threads > 0 {
            Some(thread_pool(cfg.threads))
        } else {
            None
        };
        Ok(PostmortemEngine { set, cfg, pool })
    }

    /// The underlying multi-window representation.
    pub fn set(&self) -> &MultiWindowSet {
        &self.set
    }

    /// The window spec covered.
    pub fn spec(&self) -> &WindowSpec {
        self.set.spec()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PostmortemConfig {
        &self.cfg
    }

    /// Computes PageRank for every window and returns the per-window
    /// outputs in window order.
    pub fn run(&self) -> RunOutput {
        let mut out = match &self.pool {
            Some(p) => p.install(|| self.run_inner()),
            None => self.run_inner(),
        };
        out.windows.sort_by_key(|w| w.window);
        out.assert_complete(self.spec().count);
        out
    }

    fn run_inner(&self) -> RunOutput {
        let windows = match self.cfg.kernel {
            KernelKind::SpMV => self.run_spmv(),
            KernelKind::SpMM { lanes } => self.run_spmm(lanes),
            KernelKind::PushBlocking => self.run_blocking(),
        };
        RunOutput { windows }
    }

    // --- SpMV path ------------------------------------------------------

    fn run_spmv(&self) -> Vec<WindowOutput> {
        let count = self.spec().count;
        let sched = &self.cfg.scheduler;
        match self.cfg.mode {
            ParallelMode::Sequential => self.spmv_chunk(0..count, None),
            ParallelMode::ApplicationLevel => self.spmv_chunk(0..count, Some(sched)),
            ParallelMode::WindowLevel => {
                sched.map_reduce_range(count, Vec::new(), |r| self.spmv_chunk(r, None), concat)
            }
            ParallelMode::Nested => sched.map_reduce_range(
                count,
                Vec::new(),
                |r| self.spmv_chunk(r, Some(sched)),
                concat,
            ),
        }
    }

    /// Processes a contiguous run of windows in order on the current
    /// thread, threading partial initialization through consecutive windows
    /// of the same multi-window graph.
    fn spmv_chunk(
        &self,
        windows: std::ops::Range<usize>,
        inner: Option<&Scheduler>,
    ) -> Vec<WindowOutput> {
        let mut out = Vec::with_capacity(windows.len());
        let mut ws = PrWorkspace::default();
        let mut prev: Vec<f64> = Vec::new();
        let mut prev_part: Option<usize> = None;
        for w in windows {
            let part_idx = self.part_index_of(w);
            let part = &self.set.graphs()[part_idx];
            let range = self.spec().window(w);
            let init = if self.cfg.partial_init && prev_part == Some(part_idx) {
                Init::Partial(&prev)
            } else {
                Init::Uniform
            };
            let (pull, push) = (part.pull_tcsr(), part.tcsr());
            let stats = if self.cfg.use_window_index {
                let view = part.index_view(w);
                pagerank_window_indexed(pull, push, &view, init, &self.cfg.pr, inner, &mut ws)
            } else {
                pagerank_window(pull, push, range, init, &self.cfg.pr, inner, &mut ws)
            };
            out.push(self.make_output(w, part, stats, ws.ranks()));
            // Keep this window's ranks as the next window's previous vector.
            prev.clear();
            prev.extend_from_slice(ws.ranks());
            prev_part = Some(part_idx);
        }
        out
    }

    /// Propagation-blocking path: same window walk as SpMV, sequential
    /// kernel (outer window-level parallelism still applies).
    fn run_blocking(&self) -> Vec<WindowOutput> {
        let count = self.spec().count;
        let sched = &self.cfg.scheduler;
        match self.cfg.mode {
            ParallelMode::Sequential | ParallelMode::ApplicationLevel => {
                self.blocking_chunk(0..count)
            }
            ParallelMode::WindowLevel | ParallelMode::Nested => {
                sched.map_reduce_range(count, Vec::new(), |r| self.blocking_chunk(r), concat)
            }
        }
    }

    fn blocking_chunk(&self, windows: std::ops::Range<usize>) -> Vec<WindowOutput> {
        let mut out = Vec::with_capacity(windows.len());
        let mut ws = BlockingWorkspace::default();
        let mut prev: Vec<f64> = Vec::new();
        let mut prev_part: Option<usize> = None;
        for w in windows {
            let part_idx = self.part_index_of(w);
            let part = &self.set.graphs()[part_idx];
            let range = self.spec().window(w);
            let init = if self.cfg.partial_init && prev_part == Some(part_idx) {
                Init::Partial(&prev)
            } else {
                Init::Uniform
            };
            let (pull, push) = (part.pull_tcsr(), part.tcsr());
            let stats = if self.cfg.use_window_index {
                let view = part.index_view(w);
                pagerank_window_blocking_indexed(pull, push, &view, init, &self.cfg.pr, &mut ws)
            } else {
                pagerank_window_blocking(pull, push, range, init, &self.cfg.pr, &mut ws)
            };
            out.push(self.make_output(w, part, stats, &ws.pr.x));
            prev.clear();
            prev.extend_from_slice(&ws.pr.x);
            prev_part = Some(part_idx);
        }
        out
    }

    // --- SpMM path ------------------------------------------------------

    fn run_spmm(&self, lanes: usize) -> Vec<WindowOutput> {
        let parts = self.set.num_parts();
        let sched = &self.cfg.scheduler;
        match self.cfg.mode {
            ParallelMode::Sequential => (0..parts)
                .flat_map(|p| self.spmm_part(p, lanes, None))
                .collect(),
            ParallelMode::ApplicationLevel => (0..parts)
                .flat_map(|p| self.spmm_part(p, lanes, Some(sched)))
                .collect(),
            ParallelMode::WindowLevel => sched.map_reduce_range(
                parts,
                Vec::new(),
                |r| r.flat_map(|p| self.spmm_part(p, lanes, None)).collect(),
                concat,
            ),
            ParallelMode::Nested => sched.map_reduce_range(
                parts,
                Vec::new(),
                |r| {
                    r.flat_map(|p| self.spmm_part(p, lanes, Some(sched)))
                        .collect()
                },
                concat,
            ),
        }
    }

    /// Computes every window of one multi-window graph with the batched
    /// kernel, using the paper's region scheduling: windows are split into
    /// `lanes` contiguous regions and batch `j` processes the `j`-th window
    /// of each region, partially initialized from batch `j-1`.
    fn spmm_part(
        &self,
        part_idx: usize,
        lanes: usize,
        inner: Option<&Scheduler>,
    ) -> Vec<WindowOutput> {
        let part = &self.set.graphs()[part_idx];
        let w0 = part.windows().start;
        let nw = part.num_windows();
        let mut vl = lanes.clamp(1, tempopr_kernel::MAX_LANES).min(nw);
        if self.cfg.partial_init {
            // Regions must span at least two windows or there is only one
            // batch and nothing ever gets partially initialized — the
            // paper's warning that a high vector length erodes the partial
            // initialization benefit, resolved in favor of partial init.
            vl = vl.min((nw / 2).max(1));
        }
        let region = nw.div_ceil(vl);
        let mut prev: Vec<Option<Vec<f64>>> = vec![None; vl];
        let mut ws = SpmmWorkspace::default();
        let mut out: Vec<WindowOutput> = Vec::with_capacity(nw);
        for j in 0..region {
            // Lane r handles part-local window r*region + j, if it exists.
            let mut lanes_now: Vec<usize> = Vec::with_capacity(vl);
            for r in 0..vl {
                let lw = r * region + j;
                if lw < nw {
                    lanes_now.push(lw);
                }
            }
            if lanes_now.is_empty() {
                break;
            }
            let ranges: Vec<_> = lanes_now
                .iter()
                .map(|&lw| self.spec().window(w0 + lw))
                .collect();
            let stats = {
                let inits: Vec<Init<'_>> = lanes_now
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let r = lanes_now[i] / region;
                        match (&prev[r], self.cfg.partial_init && j > 0) {
                            (Some(p), true) => Init::Partial(p),
                            _ => Init::Uniform,
                        }
                    })
                    .collect();
                let (pull, push) = (part.pull_tcsr(), part.tcsr());
                if self.cfg.use_window_index {
                    let index = part.window_index();
                    let views: Vec<_> = lanes_now.iter().map(|&lw| index.view(lw)).collect();
                    pagerank_batch_indexed(pull, push, &views, &inits, &self.cfg.pr, inner, &mut ws)
                } else {
                    pagerank_batch(pull, push, &ranges, &inits, &self.cfg.pr, inner, &mut ws)
                }
            };
            let nlanes = lanes_now.len();
            for (i, &lw) in lanes_now.iter().enumerate() {
                let lane = ws.lane(i, nlanes);
                out.push(self.make_output(w0 + lw, part, stats[i], &lane));
                prev[lw / region] = Some(lane);
            }
        }
        out
    }

    // --- Shared helpers ---------------------------------------------------

    fn part_index_of(&self, window: usize) -> usize {
        self.set
            .graphs()
            .partition_point(|g| g.windows().end <= window)
    }

    fn make_output(
        &self,
        window: usize,
        part: &MultiWindowGraph,
        stats: PrStats,
        local_ranks: &[f64],
    ) -> WindowOutput {
        let map = part.vertex_map();
        let fingerprint = local_ranks
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0.0)
            .map(|(l, &x)| x * hash01(map[l]))
            .sum();
        let ranks = match self.cfg.retain {
            RetainMode::Full => Some(SparseRanks::from_local(local_ranks, map)),
            RetainMode::Summary => None,
        };
        WindowOutput {
            window,
            stats,
            fingerprint,
            ranks,
        }
    }
}

fn concat(mut a: Vec<WindowOutput>, mut b: Vec<WindowOutput>) -> Vec<WindowOutput> {
    a.append(&mut b);
    a
}

/// Automatic multi-window count (used when `num_multiwindows == 0`).
///
/// A part spanning `w` consecutive windows makes one window's SpMV
/// traverse roughly `((w-1)·sw + δ) / δ` times the window's own events, so
/// for the SpMV kernel parts hold about `δ/sw` windows (≈ 2x traversal
/// overhead, ≈ 2x event duplication — the paper's memory/performance
/// tradeoff of §4.1 resolved at its knee). The SpMM kernel shares each
/// traversal across its lanes, so parts are kept wide enough to feed every
/// lane with two regions (preserving partial initialization, §4.4).
pub fn auto_multiwindows(spec: &WindowSpec, kernel: KernelKind) -> usize {
    let ratio = (spec.delta / spec.sw).max(1) as usize;
    let windows_per_part = match kernel {
        KernelKind::SpMV | KernelKind::PushBlocking => ratio.clamp(2, 64),
        KernelKind::SpMM { lanes } => ratio.max(2 * lanes.max(1)).clamp(2, 256),
    };
    spec.count.div_ceil(windows_per_part).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelKind, ParallelMode, PostmortemConfig};
    use tempopr_graph::Event;
    use tempopr_kernel::{Partitioner, PrConfig};

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..400u32 {
            let u = (i * 13 + 2) % 30;
            let v = (i * 7 + 5) % 30;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 30).unwrap()
    }

    fn tight_cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
        }
    }

    fn reference_run(log: &EventLog, spec: WindowSpec) -> Vec<SparseRanks> {
        // Offline brute force: per window, dedup edges, reference PageRank.
        use tempopr_kernel::reference_pagerank;
        (0..spec.count)
            .map(|w| {
                let r = spec.window(w);
                let mut edges = Vec::new();
                for e in log.events() {
                    if r.contains(e.t) {
                        edges.push((e.u, e.v));
                        if e.u != e.v {
                            edges.push((e.v, e.u));
                        }
                    }
                }
                let dense = reference_pagerank(log.num_vertices(), &edges, &tight_cfg());
                SparseRanks::from_dense(&dense)
            })
            .collect()
    }

    fn check_against_reference(cfg: PostmortemConfig) {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let expect = reference_run(&log, spec);
        let engine = PostmortemEngine::new(&log, spec, cfg).unwrap();
        let out = engine.run();
        assert_eq!(out.windows.len(), spec.count);
        for (w, wo) in out.windows.iter().enumerate() {
            let got = wo.ranks.as_ref().expect("full retention");
            let d = got.linf_distance(&expect[w]);
            assert!(d < 1e-7, "window {w}: linf {d}");
            assert!((wo.fingerprint - expect[w].fingerprint()).abs() < 1e-9);
        }
    }

    #[test]
    fn spmv_sequential_matches_reference() {
        check_against_reference(PostmortemConfig {
            kernel: KernelKind::SpMV,
            mode: ParallelMode::Sequential,
            pr: tight_cfg(),
            num_multiwindows: 3,
            ..Default::default()
        });
    }

    #[test]
    fn spmv_all_modes_match_reference() {
        for mode in [
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMV,
                mode,
                pr: tight_cfg(),
                num_multiwindows: 4,
                ..Default::default()
            });
        }
    }

    #[test]
    fn spmm_all_modes_match_reference() {
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMM { lanes: 4 },
                mode,
                pr: tight_cfg(),
                num_multiwindows: 3,
                ..Default::default()
            });
        }
    }

    #[test]
    fn partial_init_does_not_change_results() {
        for partial in [false, true] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMV,
                mode: ParallelMode::ApplicationLevel,
                partial_init: partial,
                pr: tight_cfg(),
                ..Default::default()
            });
        }
    }

    #[test]
    fn partial_init_saves_iterations_on_overlapping_windows() {
        // Hub-heavy graph: the stationary distribution is far from uniform,
        // so a warm start from the (similar) previous window pays off.
        let mut events = Vec::new();
        for i in 0..600u32 {
            let (u, v) = if i % 3 != 0 {
                (0, 1 + i % 29)
            } else {
                (1 + (i * 7) % 29, 1 + (i * 13) % 29)
            };
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        let log = EventLog::from_unsorted(events, 30).unwrap();
        let spec = WindowSpec::covering(&log, 200, 25).unwrap(); // heavy overlap
        let mk = |partial| PostmortemConfig {
            kernel: KernelKind::SpMV,
            mode: ParallelMode::Sequential,
            partial_init: partial,
            num_multiwindows: 2,
            pr: PrConfig {
                tol: 1e-10,
                ..Default::default()
            },
            ..Default::default()
        };
        let with = PostmortemEngine::new(&log, spec, mk(true)).unwrap().run();
        let without = PostmortemEngine::new(&log, spec, mk(false)).unwrap().run();
        assert!(
            with.total_iterations() < without.total_iterations(),
            "partial {} vs full {}",
            with.total_iterations(),
            without.total_iterations()
        );
    }

    #[test]
    fn indexed_and_unindexed_runs_are_identical() {
        // The window index must not change a single bit of the output:
        // fingerprints, iteration counts, and rank vectors all match across
        // every kernel and parallel mode.
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        for kernel in [
            KernelKind::SpMV,
            KernelKind::SpMM { lanes: 4 },
            KernelKind::PushBlocking,
        ] {
            for mode in [
                ParallelMode::Sequential,
                ParallelMode::WindowLevel,
                ParallelMode::ApplicationLevel,
                ParallelMode::Nested,
            ] {
                let mk = |use_window_index| PostmortemConfig {
                    kernel,
                    mode,
                    use_window_index,
                    pr: tight_cfg(),
                    num_multiwindows: 3,
                    ..Default::default()
                };
                let indexed = PostmortemEngine::new(&log, spec, mk(true)).unwrap().run();
                let plain = PostmortemEngine::new(&log, spec, mk(false)).unwrap().run();
                for (x, y) in indexed.windows.iter().zip(plain.windows.iter()) {
                    assert_eq!(x.window, y.window);
                    assert_eq!(x.stats, y.stats, "{kernel:?} {mode:?} window {}", x.window);
                    assert_eq!(
                        x.fingerprint, y.fingerprint,
                        "{kernel:?} {mode:?} window {}",
                        x.window
                    );
                }
            }
        }
    }

    #[test]
    fn many_multiwindows_match_few() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let mk = |y| PostmortemConfig {
            num_multiwindows: y,
            pr: tight_cfg(),
            ..Default::default()
        };
        let a = PostmortemEngine::new(&log, spec, mk(1)).unwrap().run();
        let b = PostmortemEngine::new(&log, spec, mk(spec.count))
            .unwrap()
            .run();
        for (x, y) in a.windows.iter().zip(b.windows.iter()) {
            let d = x
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(y.ranks.as_ref().unwrap());
            assert!(d < 1e-7, "window {}: {d}", x.window);
        }
    }

    #[test]
    fn all_partitioners_produce_identical_rankings() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let base = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for part in [Partitioner::Simple, Partitioner::Static] {
            for g in [1, 4, 64] {
                let cfg = PostmortemConfig {
                    scheduler: Scheduler::new(part, g),
                    pr: tight_cfg(),
                    ..Default::default()
                };
                let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
                for (x, y) in base.windows.iter().zip(out.windows.iter()) {
                    assert!((x.fingerprint - y.fingerprint).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn summary_retention_drops_vectors_but_keeps_fingerprint() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let full = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        let summary = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                retain: RetainMode::Summary,
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for (f, s) in full.windows.iter().zip(summary.windows.iter()) {
            assert!(s.ranks.is_none());
            assert!(f.ranks.is_some());
            assert!((f.fingerprint - s.fingerprint).abs() < 1e-9);
        }
    }

    #[test]
    fn explicit_thread_count_works() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let cfg = PostmortemConfig {
            threads: 2,
            pr: tight_cfg(),
            ..Default::default()
        };
        let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
        assert_eq!(out.windows.len(), spec.count);
    }

    #[test]
    fn equal_events_partitioning_matches_equal_windows() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let a = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        let b = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                partition: tempopr_graph::PartitionStrategy::EqualEvents,
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for (x, y) in a.windows.iter().zip(b.windows.iter()) {
            assert!(
                (x.fingerprint - y.fingerprint).abs() < 1e-9,
                "window {}",
                x.window
            );
        }
    }
}
