//! The postmortem PageRank engine (paper §4).
//!
//! [`PostmortemEngine::new`] builds the multi-window representation once
//! (§4.1); [`PostmortemEngine::run`] then computes PageRank for every
//! window under the configured parallelization level (§4.3), kernel
//! (SpMV or SpMM, §4.4), and partial-initialization policy (§4.2).
//!
//! ## How the paper's mechanisms map onto the run loop
//! - **Window-level parallelism** schedules *window indices* through the
//!   configured [`Scheduler`]; a grain of consecutive windows is processed
//!   in order on one thread, so partial initialization applies within the
//!   grain exactly as §4.3.1 describes for TBB work-stealing chunks.
//! - **Application-level parallelism** walks windows in order and hands the
//!   scheduler to the SpMV/SpMM kernel instead.
//! - **Nested** does both on one rayon pool.
//! - **SpMM region scheduling** splits each multi-window graph's windows
//!   into `lanes` contiguous regions and batches the `j`-th window of every
//!   region, so every batch after the first partially initializes from the
//!   previous batch (§4.4).
//! - Under [`InitMode::Partial`] reuse never crosses a multi-window
//!   boundary (§4.2): vertex numberings differ between parts. Under
//!   [`InitMode::Warm`] the in-order walks carry the last converged vector
//!   across the boundary by remapping it through the two parts' vertex
//!   maps ([`crate::warmstart`]), and the SpMM path additionally seeds
//!   every lane of a part's *first* batch from the carried vector — the
//!   two places a cold start previously survived despite heavy overlap.
//!   Part-parallel modes (window-level, nested SpMM over parts) have no
//!   previous part on-thread and keep their boundary cold starts.
//!
//! ## Failure semantics
//! Every window runs to a terminal [`WindowStatus`]; the ladder itself
//! lives in the shared execution layer ([`crate::exec`]) under the full
//! [`RecoveryPolicy::ladder`](crate::exec::RecoveryPolicy::ladder). A
//! kernel that errors or fails to converge escalates through the recovery
//! ladder — full-init retry for warm-started windows, then the dense Eq. 2
//! oracle for small windows — and a kernel that *panics* is caught and
//! isolated by [`crate::exec::isolate`]: the poisoned window reports
//! `Failed` with a diagnostic, its workspace is discarded, and every other
//! window completes normally. The run output carries a `degraded` flag; no
//! failure is silent and no failure aborts the run.

use crate::checkpoint::{
    self, CheckpointError, CheckpointOptions, CheckpointRecord, CheckpointSink,
};
use crate::config::{InitMode, KernelKind, ParallelMode, PostmortemConfig};
use crate::error::EngineError;
use crate::exec::{
    classify_converged, isolate, oracle_for, run_windows, Prefetcher, WindowExecutor, WindowSource,
};
use crate::observe::TelemetryKernelBridge;
use crate::result::{RunOutput, WindowOutput, WindowStatus};
use crate::warmstart;
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use tempopr_graph::{EventLog, MultiWindowGraph, MultiWindowSet, WindowSpec};
use tempopr_kernel::{
    pagerank_batch_indexed_obs, pagerank_batch_obs, pagerank_window_blocking_indexed_obs,
    pagerank_window_blocking_obs, pagerank_window_indexed_obs, pagerank_window_obs, thread_pool,
    BatchObs, BlockingWorkspace, Init, Obs, PrConfig, PrStats, PrWorkspace, Scheduler,
    SpmmWorkspace,
};
use tempopr_telemetry::{Phase as RunPhase, Telemetry};

pub use crate::exec::MAX_ORACLE_ACTIVE;

/// A ready-to-run postmortem analysis: the multi-window representation plus
/// the execution configuration.
pub struct PostmortemEngine {
    set: MultiWindowSet,
    cfg: PostmortemConfig,
    pool: Option<rayon::ThreadPool>,
    tele: Telemetry,
    /// Event-log fingerprint, fixed at build time for the checkpoint
    /// manifest header (the engine does not retain the log itself).
    log_fp: u64,
    /// Run-scoped durable sink, set only inside
    /// [`PostmortemEngine::run_durable`]; `executor()` attaches it so
    /// every finalized window is persisted without threading a parameter
    /// through the kernel walks.
    ckpt: Mutex<Option<Arc<CheckpointSink>>>,
}

/// Where a (possibly resumed) run starts and how its first window is
/// seeded: `seed` holds the part index and part-local ranks of the last
/// durable window, reproducing the in-order walk state an uninterrupted
/// run would have at `start`.
#[derive(Debug, Clone, Default)]
struct RunPlan {
    start: usize,
    seed: Option<(usize, Vec<f64>)>,
}

impl PostmortemEngine {
    /// Builds the multi-window representation for `log` under `spec`.
    ///
    /// This is the postmortem model's one-time graph construction — the
    /// cost the offline model pays per window and the streaming model pays
    /// per update batch.
    pub fn new(
        log: &EventLog,
        spec: WindowSpec,
        cfg: PostmortemConfig,
    ) -> Result<Self, EngineError> {
        Self::with_telemetry(log, spec, cfg, Telemetry::noop())
    }

    /// [`PostmortemEngine::new`] with a telemetry sink: the build phase is
    /// timed, and [`PostmortemEngine::run`] records phase times, counters,
    /// and the convergence trace into `tele`. Passing
    /// [`Telemetry::noop()`] is exactly [`PostmortemEngine::new`].
    pub fn with_telemetry(
        log: &EventLog,
        spec: WindowSpec,
        cfg: PostmortemConfig,
        tele: Telemetry,
    ) -> Result<Self, EngineError> {
        let build = tele.phase(RunPhase::Build);
        let parts = if cfg.num_multiwindows == 0 {
            auto_multiwindows(&spec, cfg.kernel)
        } else {
            cfg.num_multiwindows
        };
        let set = MultiWindowSet::build(log, spec, parts, cfg.symmetric, cfg.partition)?;
        drop(build);
        tele.set_gauge("run.multiwindows", set.num_parts() as f64);
        let pool = if cfg.threads > 0 {
            Some(thread_pool(cfg.threads)?)
        } else {
            None
        };
        let log_fp = checkpoint::log_fingerprint(log);
        Ok(PostmortemEngine {
            set,
            cfg,
            pool,
            tele,
            log_fp,
            ckpt: Mutex::new(None),
        })
    }

    /// The telemetry sink this engine records into (noop by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// The underlying multi-window representation.
    pub fn set(&self) -> &MultiWindowSet {
        &self.set
    }

    /// The window spec covered.
    pub fn spec(&self) -> &WindowSpec {
        self.set.spec()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PostmortemConfig {
        &self.cfg
    }

    /// Computes PageRank for every window and returns the per-window
    /// outputs in window order.
    ///
    /// This never fails as a whole: windows that cannot produce valid
    /// ranks (even through the recovery ladder) are reported as
    /// [`WindowStatus::Failed`] and the output's `degraded` flag is set.
    pub fn run(&self) -> RunOutput {
        self.run_with_plan(RunPlan::default(), Vec::new())
    }

    /// [`PostmortemEngine::run`] with durability: when `opts` names a
    /// checkpoint directory, every finalized window is persisted as a
    /// `tempopr.ckpt.v1` record ([`crate::checkpoint`]); when it names a
    /// resume source, the manifest's valid prefix is verified against this
    /// engine's config hash and event-log fingerprint, completed windows
    /// are restored instead of recomputed, and the in-order walk is
    /// re-seeded from the last durable window so the combined output is
    /// bit-identical to an uninterrupted run.
    ///
    /// Resuming a non-empty prefix requires an in-order mode
    /// ([`ParallelMode::Sequential`] or [`ParallelMode::ApplicationLevel`]):
    /// the part-parallel modes chain seeds per scheduler grain, which a
    /// trimmed window range cannot reproduce. Checkpoint *writing* works
    /// under every mode (records are reordered into window order before
    /// hitting disk). With the SpMM kernel the resume point is clipped
    /// down to the start of the part containing the first missing window —
    /// region scheduling interleaves a part's windows, so a partial part
    /// is recomputed whole (deterministically, yielding the same records).
    pub fn run_durable(&self, opts: &CheckpointOptions) -> Result<RunOutput, EngineError> {
        if opts.is_noop() {
            return Ok(self.run());
        }
        let header = checkpoint::ManifestHeader::new(
            checkpoint::DRIVER_POSTMORTEM,
            self.config_hash(),
            self.log_fp,
            self.spec(),
        );
        let count = self.spec().count;
        let mut prefix: Vec<CheckpointRecord> = Vec::new();
        if let Some(from) = &opts.resume {
            let scan = {
                let _t = self.tele.phase(RunPhase::ResumeScan);
                checkpoint::resume_scan(from, &header)?
            };
            self.tele
                .add("checkpoint.corrupt_discarded", scan.corrupt_discarded);
            prefix = scan.records;
            prefix.truncate(count);
            if !prefix.is_empty() {
                match self.cfg.mode {
                    ParallelMode::Sequential | ParallelMode::ApplicationLevel => {}
                    _ => {
                        return Err(CheckpointError::Unsupported(
                            "postmortem resume needs an in-order mode (sequential or \
                             application-level); part-parallel grain chains are not \
                             reproducible from a trimmed window range"
                                .into(),
                        )
                        .into())
                    }
                }
                if matches!(self.cfg.kernel, KernelKind::SpMM { .. }) && prefix.len() < count {
                    let boundary = self.set.graphs()[self.part_index_of(prefix.len())]
                        .windows()
                        .start;
                    prefix.truncate(boundary);
                }
            }
        }
        let k = prefix.len();
        self.tele.add("checkpoint.resume_skipped", k as u64);
        let seed = (k > 0 && k < count)
            .then(|| {
                let last = &prefix[k - 1];
                last.status.is_valid().then(|| {
                    let p = self.part_index_of(k - 1);
                    (p, last.ranks.to_local(self.set.graphs()[p].vertex_map()))
                })
            })
            .flatten();
        let restored: Vec<WindowOutput> = prefix
            .iter()
            .map(|r| r.to_output(self.cfg.retain))
            .collect();
        if let Some(dir) = &opts.dir {
            let sink = CheckpointSink::create(
                dir,
                &header,
                &prefix,
                opts.every,
                self.cfg.faults.crash_after_checkpoint,
                self.tele.clone(),
            )?;
            *lock(&self.ckpt) = Some(Arc::new(sink));
        }
        let out = self.run_with_plan(RunPlan { start: k, seed }, restored);
        if let Some(sink) = lock(&self.ckpt).take() {
            sink.finish();
        }
        Ok(out)
    }

    /// The compatibility hash of this run's configuration: FNV-1a over the
    /// config's `Debug` rendering with crash injection masked out (the
    /// crashed run and its resume differ exactly there).
    fn config_hash(&self) -> u64 {
        let mut c = self.cfg.clone();
        c.faults.crash_after_checkpoint = None;
        checkpoint::hash_config(&format!("{c:?}"))
    }

    fn run_with_plan(&self, plan: RunPlan, mut restored: Vec<WindowOutput>) -> RunOutput {
        self.tele.set_gauge(
            "init.mode",
            match self.cfg.init_mode {
                InitMode::Full => 0.0,
                InitMode::Partial => 1.0,
                InitMode::Warm => 2.0,
            },
        );
        let mut out = match &self.pool {
            Some(p) => p.install(|| self.run_inner(&plan)),
            None => self.run_inner(&plan),
        };
        out.windows.append(&mut restored);
        out.windows.sort_by_key(|w| w.window);
        out.finalize_status();
        out.assert_complete(self.spec().count);
        self.tele.add("windows.total", out.windows.len() as u64);
        self.tele
            .set_gauge("run.degraded", f64::from(u8::from(out.degraded)));
        // Measured after the run so lazily-built window indexes count.
        self.tele
            .set_gauge("memory.multiwindow_bytes", self.set.memory_bytes() as f64);
        out
    }

    fn run_inner(&self, plan: &RunPlan) -> RunOutput {
        let windows = match self.cfg.kernel {
            KernelKind::SpMV => self.run_spmv(plan),
            KernelKind::SpMM { lanes } => self.run_spmm(lanes, plan),
            KernelKind::PushBlocking => self.run_blocking(plan),
        };
        RunOutput {
            windows,
            degraded: false, // recomputed by finalize_status
        }
    }

    /// Whether any previous-rank seeding is enabled (`Partial` or `Warm`).
    fn reuse_ranks(&self) -> bool {
        self.cfg.init_mode != InitMode::Full
    }

    /// Whether cross-boundary carry is enabled.
    fn warm(&self) -> bool {
        self.cfg.init_mode == InitMode::Warm
    }

    /// Decides how the next window of an in-order walk is seeded, given
    /// which part produced the previous valid vector. A same-part
    /// predecessor is used directly (the Eq. 4 path); under
    /// [`InitMode::Warm`] a cross-part predecessor is remapped into
    /// `carry_buf`, falling back to a cold start (and counting the
    /// degenerate carry) when no usable mass survives the boundary.
    fn seed_for(
        &self,
        part_idx: usize,
        prev_part: Option<usize>,
        prev: &[f64],
        carry_buf: &mut Vec<f64>,
    ) -> Seed {
        match prev_part {
            Some(p) if p == part_idx && self.reuse_ranks() => Seed::InPart,
            Some(p) if p != part_idx && self.warm() => {
                let prev_map = self.set.graphs()[p].vertex_map();
                let new_map = self.set.graphs()[part_idx].vertex_map();
                match warmstart::carry_ranks(prev_map, prev, new_map, carry_buf) {
                    Some(_) => {
                        self.tele.add("warmstart.seeded_windows", 1);
                        Seed::Carried
                    }
                    None => {
                        self.tele.add("warmstart.degenerate_windows", 1);
                        Seed::Cold
                    }
                }
            }
            _ => Seed::Cold,
        }
    }

    // --- Execution-layer adapters -----------------------------------------

    /// The engine's [`WindowExecutor`]: the configured recovery policy
    /// (the full ladder by default — this is the postmortem driver)
    /// recording into the run's telemetry sink, with the run-scoped
    /// checkpoint sink attached when durability is on.
    fn executor(&self) -> WindowExecutor<'_> {
        WindowExecutor::new(&self.tele, &self.cfg.pr, self.cfg.recovery, self.cfg.retain)
            .with_checkpoint(lock(&self.ckpt).clone())
    }

    /// Computes one window with the SpMV kernel through the full recovery
    /// ladder, returning its final local rank vector.
    fn single_window(
        &self,
        part: &MultiWindowGraph,
        w: usize,
        prev: Option<&[f64]>,
        inner: Option<&Scheduler>,
        ws: &mut PrWorkspace,
    ) -> (PrStats, WindowStatus, Vec<f64>, u16) {
        let range = self.spec().window(w);
        let (pull, push) = (part.pull_tcsr(), part.tcsr());
        let prcfg = PrConfig {
            fault: self.cfg.faults.fault_for(w),
            ..self.cfg.pr
        };
        let n_local = pull.num_vertices();
        let warm = prev.is_some();
        // Each kernel invocation is a new recovery attempt; the bridge is
        // rebuilt per call so trace events carry the attempt label.
        let attempt_no = Cell::new(0u16);
        let (stats, status, override_ranks, attempts) = {
            let ws = &mut *ws;
            let attempt_no = &attempt_no;
            let kernel = move |uniform: bool| {
                let init = match prev {
                    Some(p) if !uniform => Init::Partial(p),
                    _ => Init::Uniform,
                };
                attempt_no.set(attempt_no.get() + 1);
                let bridge = TelemetryKernelBridge::new(&self.tele, attempt_no.get());
                let obs = if self.tele.is_enabled() {
                    Obs::new(&bridge, w as u32)
                } else {
                    Obs::off()
                };
                if self.cfg.use_window_index {
                    let view = part.index_view(w);
                    pagerank_window_indexed_obs(pull, push, &view, init, &prcfg, inner, ws, obs)
                } else {
                    pagerank_window_obs(pull, push, range, init, &prcfg, inner, ws, obs)
                }
            };
            let oracle = || oracle_for(pull, push, range, &self.cfg.pr, MAX_ORACLE_ACTIVE);
            self.executor()
                .drive(w as u32, warm, n_local, kernel, oracle)
        };
        if !status.is_valid() {
            // A panic may have left the workspace inconsistent.
            *ws = PrWorkspace::default();
        }
        let ranks = match override_ranks {
            Some(x) => x,
            None => ws.ranks().to_vec(),
        };
        (stats, status, ranks, attempts)
    }

    // --- SpMV path ------------------------------------------------------

    fn run_spmv(&self, plan: &RunPlan) -> Vec<WindowOutput> {
        let count = self.spec().count;
        let sched = &self.cfg.scheduler;
        let pf = self.prefetcher();
        let pf = pf.as_ref().map(|p| p as &dyn Prefetcher);
        match self.cfg.mode {
            ParallelMode::Sequential => {
                self.spmv_chunk(plan.start..count, None, pf, plan.seed.clone())
            }
            ParallelMode::ApplicationLevel => {
                self.spmv_chunk(plan.start..count, Some(sched), pf, plan.seed.clone())
            }
            // Resume never reaches the part-parallel modes (run_durable
            // rejects them with a non-empty prefix), so plan is trivial.
            ParallelMode::WindowLevel => sched.map_reduce_range(
                count,
                Vec::new(),
                |r| self.spmv_chunk(r, None, None, None),
                concat,
            ),
            ParallelMode::Nested => sched.map_reduce_range(
                count,
                Vec::new(),
                |r| self.spmv_chunk(r, Some(sched), None, None),
                concat,
            ),
        }
    }

    /// The window-index prefetcher, when the in-order walks should overlap
    /// the next part's index construction with the current kernel.
    fn prefetcher(&self) -> Option<PartIndexPrefetcher<'_>> {
        (self.cfg.pipeline && self.cfg.use_window_index && self.set.num_parts() > 1)
            .then_some(PartIndexPrefetcher { engine: self })
    }

    /// Processes a contiguous run of windows in order on the current
    /// thread, threading partial initialization through consecutive windows
    /// of the same multi-window graph.
    fn spmv_chunk(
        &self,
        windows: std::ops::Range<usize>,
        inner: Option<&Scheduler>,
        prefetcher: Option<&dyn Prefetcher>,
        resume: Option<(usize, Vec<f64>)>,
    ) -> Vec<WindowOutput> {
        let mut ws = PrWorkspace::default();
        // A resume seed replays the walk state as of the first window: the
        // last durable window's part and local ranks (absent if it failed,
        // so the first recomputed window cold-starts exactly as the
        // uninterrupted walk would after an invalid window).
        let (mut prev, mut prev_part): (Vec<f64>, Option<usize>) = match resume {
            Some((p, ranks)) => (ranks, Some(p)),
            None => (Vec::new(), None),
        };
        let mut carry_buf: Vec<f64> = Vec::new();
        let mut meter = SavingsMeter::default();
        let mut source = PartSource { engine: self };
        run_windows(
            &mut source,
            windows,
            prefetcher,
            &self.tele,
            |_, w, &part_idx| {
                let part = &self.set.graphs()[part_idx];
                let seed = self.seed_for(part_idx, prev_part, &prev, &mut carry_buf);
                let seed_ref = match seed {
                    Seed::Cold => None,
                    Seed::InPart => Some(prev.as_slice()),
                    Seed::Carried => Some(carry_buf.as_slice()),
                };
                let (stats, status, ranks, attempts) =
                    self.single_window(part, w, seed_ref, inner, &mut ws);
                let valid = status.is_valid();
                meter.record(&self.tele, seed, valid, stats.iterations);
                let output = self.make_output(w, part, stats, &ranks, status, attempts);
                // Keep this window's ranks as the next window's previous
                // vector; after a failed window the next one starts cold.
                if valid {
                    prev = ranks;
                    prev_part = Some(part_idx);
                } else {
                    prev_part = None;
                }
                output
            },
        )
    }

    /// Propagation-blocking path: same window walk as SpMV, sequential
    /// kernel (outer window-level parallelism still applies).
    fn run_blocking(&self, plan: &RunPlan) -> Vec<WindowOutput> {
        let count = self.spec().count;
        let sched = &self.cfg.scheduler;
        let pf = self.prefetcher();
        let pf = pf.as_ref().map(|p| p as &dyn Prefetcher);
        match self.cfg.mode {
            ParallelMode::Sequential | ParallelMode::ApplicationLevel => {
                self.blocking_chunk(plan.start..count, pf, plan.seed.clone())
            }
            ParallelMode::WindowLevel | ParallelMode::Nested => sched.map_reduce_range(
                count,
                Vec::new(),
                |r| self.blocking_chunk(r, None, None),
                concat,
            ),
        }
    }

    fn blocking_chunk(
        &self,
        windows: std::ops::Range<usize>,
        prefetcher: Option<&dyn Prefetcher>,
        resume: Option<(usize, Vec<f64>)>,
    ) -> Vec<WindowOutput> {
        let mut ws = BlockingWorkspace::default();
        let (mut prev, mut prev_part): (Vec<f64>, Option<usize>) = match resume {
            Some((p, ranks)) => (ranks, Some(p)),
            None => (Vec::new(), None),
        };
        let mut carry_buf: Vec<f64> = Vec::new();
        let mut meter = SavingsMeter::default();
        let mut source = PartSource { engine: self };
        run_windows(
            &mut source,
            windows,
            prefetcher,
            &self.tele,
            |_, w, &part_idx| {
                let part = &self.set.graphs()[part_idx];
                let range = self.spec().window(w);
                let seed = self.seed_for(part_idx, prev_part, &prev, &mut carry_buf);
                let seed_ref: Option<&[f64]> = match seed {
                    Seed::Cold => None,
                    Seed::InPart => Some(&prev),
                    Seed::Carried => Some(&carry_buf),
                };
                let (pull, push) = (part.pull_tcsr(), part.tcsr());
                let prcfg = PrConfig {
                    fault: self.cfg.faults.fault_for(w),
                    ..self.cfg.pr
                };
                let n_local = pull.num_vertices();
                let attempt_no = Cell::new(0u16);
                let (stats, status, override_ranks, attempts) = {
                    let ws = &mut ws;
                    let attempt_no = &attempt_no;
                    let kernel = move |uniform: bool| {
                        let init = match seed_ref {
                            Some(p) if !uniform => Init::Partial(p),
                            _ => Init::Uniform,
                        };
                        attempt_no.set(attempt_no.get() + 1);
                        let bridge = TelemetryKernelBridge::new(&self.tele, attempt_no.get());
                        let obs = if self.tele.is_enabled() {
                            Obs::new(&bridge, w as u32)
                        } else {
                            Obs::off()
                        };
                        if self.cfg.use_window_index {
                            let view = part.index_view(w);
                            pagerank_window_blocking_indexed_obs(
                                pull, push, &view, init, &prcfg, ws, obs,
                            )
                        } else {
                            pagerank_window_blocking_obs(pull, push, range, init, &prcfg, ws, obs)
                        }
                    };
                    let oracle = || oracle_for(pull, push, range, &self.cfg.pr, MAX_ORACLE_ACTIVE);
                    self.executor()
                        .drive(w as u32, seed_ref.is_some(), n_local, kernel, oracle)
                };
                if !status.is_valid() {
                    ws = BlockingWorkspace::default();
                }
                let valid = status.is_valid();
                meter.record(&self.tele, seed, valid, stats.iterations);
                let ranks: Vec<f64> = match override_ranks {
                    Some(x) => x,
                    None => ws.pr.x.clone(),
                };
                let output = self.make_output(w, part, stats, &ranks, status, attempts);
                if valid {
                    prev = ranks;
                    prev_part = Some(part_idx);
                } else {
                    prev_part = None;
                }
                output
            },
        )
    }

    // --- SpMM path ------------------------------------------------------

    fn run_spmm(&self, lanes: usize, plan: &RunPlan) -> Vec<WindowOutput> {
        let parts = self.set.num_parts();
        let sched = &self.cfg.scheduler;
        // The part-parallel modes cannot carry across parts (each part may
        // start before its predecessor finished); the carry chain belongs
        // to the in-order modes, mirroring the SpMV grain semantics.
        match self.cfg.mode {
            ParallelMode::Sequential => self.spmm_in_order(lanes, None, plan),
            ParallelMode::ApplicationLevel => self.spmm_in_order(lanes, Some(sched), plan),
            ParallelMode::WindowLevel => sched.map_reduce_range(
                parts,
                Vec::new(),
                |r| {
                    r.flat_map(|p| {
                        self.spmm_part(p, lanes, None, None, &mut SavingsMeter::default())
                            .0
                    })
                    .collect()
                },
                concat,
            ),
            ParallelMode::Nested => sched.map_reduce_range(
                parts,
                Vec::new(),
                |r| {
                    r.flat_map(|p| {
                        self.spmm_part(p, lanes, Some(sched), None, &mut SavingsMeter::default())
                            .0
                    })
                    .collect()
                },
                concat,
            ),
        }
    }

    /// The in-order SpMM walk over parts, threading the cross-part carry:
    /// each part's last converged window seeds the next part's first batch
    /// (remapped between local vertex spaces) under [`InitMode::Warm`].
    fn spmm_in_order(
        &self,
        lanes: usize,
        inner: Option<&Scheduler>,
        plan: &RunPlan,
    ) -> Vec<WindowOutput> {
        let mut out: Vec<WindowOutput> = Vec::new();
        let mut meter = SavingsMeter::default();
        // The previous part's final local ranks, and which part they're in.
        // A resume plan starts at a part boundary with exactly that shape:
        // the preceding part's last durable window as the incoming carry.
        let mut carry: Option<(usize, Vec<f64>)> = plan.seed.clone();
        let mut mapped: Vec<f64> = Vec::new();
        let start_part = self.part_index_of(plan.start);
        for p in start_part..self.set.num_parts() {
            let seed: Option<&[f64]> = match &carry {
                Some((q, ranks)) if self.warm() => {
                    let prev_map = self.set.graphs()[*q].vertex_map();
                    let new_map = self.set.graphs()[p].vertex_map();
                    match warmstart::carry_ranks(prev_map, ranks, new_map, &mut mapped) {
                        Some(_) => Some(mapped.as_slice()),
                        None => {
                            self.tele.add("warmstart.degenerate_windows", 1);
                            None
                        }
                    }
                }
                _ => None,
            };
            let (mut w_out, carry_out) = self.spmm_part(p, lanes, inner, seed, &mut meter);
            out.append(&mut w_out);
            // A part whose last window failed breaks the chain: the next
            // part starts cold rather than reusing a poisoned seed.
            carry = carry_out.map(|ranks| (p, ranks));
        }
        out
    }

    /// Computes every window of one multi-window graph with the batched
    /// kernel, using the paper's region scheduling: windows are split into
    /// `lanes` contiguous regions and batch `j` processes the `j`-th window
    /// of each region, partially initialized from batch `j-1`.
    ///
    /// Windows with a planned fault are routed through the per-window
    /// SpMV path instead (the batch kernel cannot target a fault at one
    /// window), and lanes that fail or stall inside a batch escalate
    /// individually — a poisoned lane never drags its batch-mates down.
    ///
    /// `carry` is the previous part's final converged vector, already
    /// remapped into this part's local vertex space: when present it seeds
    /// the first window of *every* region, closing the hole where batch 0
    /// always cold-started (and where a vector length of `nw` made every
    /// window batch-0, silently erasing partial init entirely). Returns
    /// the outputs plus the part's own carry-out — the last window's local
    /// ranks, `None` if that window failed (a poisoned seed must not
    /// escape) or when warm carry is off.
    fn spmm_part(
        &self,
        part_idx: usize,
        lanes: usize,
        inner: Option<&Scheduler>,
        carry: Option<&[f64]>,
        meter: &mut SavingsMeter,
    ) -> (Vec<WindowOutput>, Option<Vec<f64>>) {
        let part = &self.set.graphs()[part_idx];
        let w0 = part.windows().start;
        let nw = part.num_windows();
        let reuse = self.reuse_ranks();
        let mut vl = lanes.clamp(1, tempopr_kernel::MAX_LANES).min(nw);
        if reuse {
            // Regions must span at least two windows or there is only one
            // batch and nothing ever gets partially initialized — the
            // paper's warning that a high vector length erodes the partial
            // initialization benefit, resolved in favor of partial init.
            // (Warm carry additionally seeds batch 0, but the in-part
            // chain is still worth preserving.)
            vl = vl.min((nw / 2).max(1));
        }
        let region = nw.div_ceil(vl);
        let mut prev: Vec<Option<Vec<f64>>> = vec![None; vl];
        if let Some(seed) = carry {
            // Seed every region's first window from the carried vector.
            let seeded = (0..vl).filter(|r| r * region < nw).count();
            for slot in prev.iter_mut().take(seeded) {
                *slot = Some(seed.to_vec());
            }
            self.tele.add("warmstart.seeded_windows", seeded as u64);
        }
        let mut ws = SpmmWorkspace::default();
        let mut pr_ws = PrWorkspace::default();
        // One deinterleave buffer for the whole partition: every converged
        // lane is copied out through it instead of allocating a fresh
        // vector per lane per batch.
        let mut lane_buf: Vec<f64> = Vec::new();
        let mut out: Vec<WindowOutput> = Vec::with_capacity(nw);
        // How a lane's window is being seeded this batch: batch 0 only ever
        // holds the cross-part carry; later batches hold in-part chains.
        let seed_kind = |j: usize, slot: &Option<Vec<f64>>| {
            if !reuse || slot.is_none() {
                Seed::Cold
            } else if j == 0 {
                Seed::Carried
            } else {
                Seed::InPart
            }
        };
        for j in 0..region {
            // Lane r handles part-local window r*region + j, if it exists.
            let mut lanes_now: Vec<usize> = Vec::with_capacity(vl);
            for r in 0..vl {
                let lw = r * region + j;
                if lw < nw {
                    lanes_now.push(lw);
                }
            }
            if lanes_now.is_empty() {
                break;
            }
            // Faulted windows leave the batch and run individually through
            // the full recovery ladder.
            let (clean, faulted): (Vec<usize>, Vec<usize>) = lanes_now
                .into_iter()
                .partition(|&lw| self.cfg.faults.fault_for(w0 + lw).is_none());
            for &lw in &faulted {
                let r = lw / region;
                let kind = seed_kind(j, &prev[r]);
                let prev_ref = if reuse { prev[r].as_deref() } else { None };
                let (stats, status, ranks, attempts) =
                    self.single_window(part, w0 + lw, prev_ref, inner, &mut pr_ws);
                meter.record(&self.tele, kind, status.is_valid(), stats.iterations);
                prev[r] = status.is_valid().then(|| ranks.clone());
                out.push(self.make_output(w0 + lw, part, stats, &ranks, status, attempts));
            }
            if clean.is_empty() {
                continue;
            }
            let ranges: Vec<_> = clean
                .iter()
                .map(|&lw| self.spec().window(w0 + lw))
                .collect();
            // Lane → global-window map so batched observations land on the
            // right trace rows; a whole batch is always attempt 1 (lane
            // escalation reruns through `single_window`).
            let win_ids: Vec<u32> = clean.iter().map(|&lw| (w0 + lw) as u32).collect();
            let bridge = TelemetryKernelBridge::new(&self.tele, 1);
            let batch = {
                let inits: Vec<Init<'_>> = clean
                    .iter()
                    .map(|&lw| {
                        let r = lw / region;
                        match (&prev[r], reuse) {
                            (Some(p), true) => Init::Partial(p),
                            _ => Init::Uniform,
                        }
                    })
                    .collect();
                let (pull, push) = (part.pull_tcsr(), part.tcsr());
                let obs = if self.tele.is_enabled() {
                    BatchObs::new(&bridge, &win_ids)
                } else {
                    BatchObs::off()
                };
                isolate(|| {
                    if self.cfg.use_window_index {
                        let index = part.window_index();
                        let views: Vec<_> = clean.iter().map(|&lw| index.view(lw)).collect();
                        pagerank_batch_indexed_obs(
                            pull,
                            push,
                            &views,
                            &inits,
                            &self.cfg.pr,
                            inner,
                            &mut ws,
                            obs,
                        )
                    } else {
                        pagerank_batch_obs(
                            pull,
                            push,
                            &ranges,
                            &inits,
                            &self.cfg.pr,
                            inner,
                            &mut ws,
                            obs,
                        )
                    }
                })
            };
            let nlanes = clean.len();
            match batch {
                Ok(Ok(stats)) => {
                    lane_buf.resize(ws.x.len() / nlanes, 0.0);
                    for (i, &lw) in clean.iter().enumerate() {
                        let w = w0 + lw;
                        let st = stats[i];
                        let kind = seed_kind(j, &prev[lw / region]);
                        if st.converged || self.cfg.pr.max_iters == 0 {
                            let status = classify_converged(&st);
                            ws.copy_lane_into(i, nlanes, &mut lane_buf);
                            meter.record(&self.tele, kind, true, st.iterations);
                            out.push(self.make_output(w, part, st, &lane_buf, status, 1));
                            // Reuse the warm-start slot's allocation when
                            // its length already matches.
                            let slot = &mut prev[lw / region];
                            match slot {
                                Some(p) if p.len() == lane_buf.len() => {
                                    p.copy_from_slice(&lane_buf);
                                }
                                _ => *slot = Some(lane_buf.clone()),
                            }
                        } else {
                            // Per-lane escalation: recompute this window
                            // alone through the recovery ladder.
                            let r = lw / region;
                            let prev_ref = if reuse { prev[r].as_deref() } else { None };
                            let (stats2, status, ranks, attempts) =
                                self.single_window(part, w, prev_ref, inner, &mut pr_ws);
                            meter.record(&self.tele, kind, status.is_valid(), stats2.iterations);
                            prev[r] = status.is_valid().then(|| ranks.clone());
                            out.push(self.make_output(w, part, stats2, &ranks, status, attempts));
                        }
                    }
                }
                // The whole batch failed (kernel error or panic): isolate
                // by recomputing every window individually.
                batch_failure => {
                    if batch_failure.is_err() {
                        ws = SpmmWorkspace::default();
                    }
                    for &lw in &clean {
                        let r = lw / region;
                        let kind = seed_kind(j, &prev[r]);
                        let prev_ref = if reuse { prev[r].as_deref() } else { None };
                        let (stats, status, ranks, attempts) =
                            self.single_window(part, w0 + lw, prev_ref, inner, &mut pr_ws);
                        meter.record(&self.tele, kind, status.is_valid(), stats.iterations);
                        prev[r] = status.is_valid().then(|| ranks.clone());
                        out.push(self.make_output(w0 + lw, part, stats, &ranks, status, attempts));
                    }
                }
            }
        }
        // The part's own carry: its last window's converged local ranks.
        // `prev` tracks validity per region, so a failed final window (or
        // one that never ran) yields `None` and the chain breaks cleanly.
        let carry_out = if self.warm() && nw > 0 {
            prev[(nw - 1) / region].take()
        } else {
            None
        };
        (out, carry_out)
    }

    // --- Shared helpers ---------------------------------------------------

    fn part_index_of(&self, window: usize) -> usize {
        self.set
            .graphs()
            .partition_point(|g| g.windows().end <= window)
    }

    /// Terminal output assembly, delegated to the shared execution layer
    /// with this part's local→global vertex map.
    fn make_output(
        &self,
        window: usize,
        part: &MultiWindowGraph,
        stats: PrStats,
        local_ranks: &[f64],
        status: WindowStatus,
        attempts: u16,
    ) -> WindowOutput {
        self.executor().finalize(
            window,
            Some(part.vertex_map()),
            stats,
            local_ranks,
            status,
            attempts,
        )
    }
}

/// [`WindowSource`] for the in-order SpMV/push walks: the per-window work
/// item is the index of the multi-window part holding the window.
struct PartSource<'a> {
    engine: &'a PostmortemEngine,
}

impl WindowSource for PartSource<'_> {
    type Item = usize;

    fn setup(&mut self, window: usize) -> usize {
        self.engine.part_index_of(window)
    }
}

/// [`Prefetcher`] overlapping the *next* part's lazy window-index
/// construction with the current window's kernel. The index sits behind a
/// `OnceLock` and its construction records no telemetry, so prefetching is
/// invisible to ranks and deterministic traces — it only moves build time
/// off the critical path.
struct PartIndexPrefetcher<'a> {
    engine: &'a PostmortemEngine,
}

impl Prefetcher for PartIndexPrefetcher<'_> {
    fn next_after(&self, window: usize) -> Option<usize> {
        let next = window + 1;
        if next >= self.engine.spec().count {
            return None;
        }
        let p = self.engine.part_index_of(next);
        if p == self.engine.part_index_of(window) {
            // Same part: its index is already (being) built by this window.
            return None;
        }
        self.engine.set.graphs()[p]
            .window_index_built()
            .is_none()
            .then_some(next)
    }

    fn prefetch(&self, window: usize) {
        let part = &self.engine.set.graphs()[self.engine.part_index_of(window)];
        let _ = part.window_index();
    }
}

/// How one window's rank vector was seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seed {
    /// Uniform start (full init, a chain break, or a degenerate carry).
    Cold,
    /// Eq. 4 partial init from a same-part predecessor.
    InPart,
    /// Cross-boundary carry remapped through the vertex maps.
    Carried,
}

/// Running estimate behind the `warmstart.iterations_saved` counter: each
/// carried window is credited with the difference between the chain's most
/// recent *cold* window's iteration count and its own. It is an estimate —
/// the honest number would re-run every carried window cold — but cold
/// windows under the same configuration are the natural yardstick, and the
/// counter lives outside the deterministic trace projection.
#[derive(Debug, Default)]
struct SavingsMeter {
    cold_baseline: Option<u64>,
}

impl SavingsMeter {
    fn record(&mut self, tele: &Telemetry, seed: Seed, valid: bool, iterations: usize) {
        if !valid {
            return;
        }
        match seed {
            Seed::Cold => self.cold_baseline = Some(iterations as u64),
            Seed::Carried => {
                if let Some(base) = self.cold_baseline {
                    tele.add(
                        "warmstart.iterations_saved",
                        base.saturating_sub(iterations as u64),
                    );
                }
            }
            Seed::InPart => {}
        }
    }
}

/// Poison-tolerant lock (a panicked window is already isolated and
/// reported; the sink slot itself is always in a consistent state).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn concat(mut a: Vec<WindowOutput>, mut b: Vec<WindowOutput>) -> Vec<WindowOutput> {
    a.append(&mut b);
    a
}

/// Automatic multi-window count (used when `num_multiwindows == 0`).
///
/// A part spanning `w` consecutive windows makes one window's SpMV
/// traverse roughly `((w-1)·sw + δ) / δ` times the window's own events, so
/// for the SpMV kernel parts hold about `δ/sw` windows (≈ 2x traversal
/// overhead, ≈ 2x event duplication — the paper's memory/performance
/// tradeoff of §4.1 resolved at its knee). The SpMM kernel shares each
/// traversal across its lanes, so parts are kept wide enough to feed every
/// lane with two regions (preserving partial initialization, §4.4).
pub fn auto_multiwindows(spec: &WindowSpec, kernel: KernelKind) -> usize {
    let ratio = (spec.delta / spec.sw).max(1) as usize;
    let windows_per_part = match kernel {
        KernelKind::SpMV | KernelKind::PushBlocking => ratio.clamp(2, 64),
        KernelKind::SpMM { lanes } => ratio.max(2 * lanes.max(1)).clamp(2, 256),
    };
    spec.count.div_ceil(windows_per_part).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitMode, KernelKind, ParallelMode, PostmortemConfig, RetainMode};
    use crate::result::SparseRanks;
    use tempopr_graph::Event;
    use tempopr_kernel::{Partitioner, PrConfig};

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..400u32 {
            let u = (i * 13 + 2) % 30;
            let v = (i * 7 + 5) % 30;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 30).unwrap()
    }

    fn tight_cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    fn reference_run(log: &EventLog, spec: WindowSpec) -> Vec<SparseRanks> {
        // Offline brute force: per window, dedup edges, reference PageRank.
        use tempopr_kernel::reference_pagerank;
        (0..spec.count)
            .map(|w| {
                let r = spec.window(w);
                let mut edges = Vec::new();
                for e in log.events() {
                    if r.contains(e.t) {
                        edges.push((e.u, e.v));
                        if e.u != e.v {
                            edges.push((e.v, e.u));
                        }
                    }
                }
                let dense = reference_pagerank(log.num_vertices(), &edges, &tight_cfg());
                SparseRanks::from_dense(&dense)
            })
            .collect()
    }

    fn check_against_reference(cfg: PostmortemConfig) {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let expect = reference_run(&log, spec);
        let engine = PostmortemEngine::new(&log, spec, cfg).unwrap();
        let out = engine.run();
        assert_eq!(out.windows.len(), spec.count);
        for (w, wo) in out.windows.iter().enumerate() {
            let got = wo.ranks.as_ref().expect("full retention");
            let d = got.linf_distance(&expect[w]);
            assert!(d < 1e-7, "window {w}: linf {d}");
            assert!((wo.fingerprint - expect[w].fingerprint()).abs() < 1e-9);
        }
    }

    #[test]
    fn spmv_sequential_matches_reference() {
        check_against_reference(PostmortemConfig {
            kernel: KernelKind::SpMV,
            mode: ParallelMode::Sequential,
            pr: tight_cfg(),
            num_multiwindows: 3,
            ..Default::default()
        });
    }

    #[test]
    fn spmv_all_modes_match_reference() {
        for mode in [
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMV,
                mode,
                pr: tight_cfg(),
                num_multiwindows: 4,
                ..Default::default()
            });
        }
    }

    #[test]
    fn spmm_all_modes_match_reference() {
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMM { lanes: 4 },
                mode,
                pr: tight_cfg(),
                num_multiwindows: 3,
                ..Default::default()
            });
        }
    }

    #[test]
    fn init_mode_does_not_change_results() {
        for init_mode in [InitMode::Full, InitMode::Partial, InitMode::Warm] {
            check_against_reference(PostmortemConfig {
                kernel: KernelKind::SpMV,
                mode: ParallelMode::ApplicationLevel,
                init_mode,
                pr: tight_cfg(),
                ..Default::default()
            });
        }
    }

    #[test]
    fn partial_init_saves_iterations_on_overlapping_windows() {
        // Hub-heavy graph: the stationary distribution is far from uniform,
        // so a warm start from the (similar) previous window pays off.
        let mut events = Vec::new();
        for i in 0..600u32 {
            let (u, v) = if i % 3 != 0 {
                (0, 1 + i % 29)
            } else {
                (1 + (i * 7) % 29, 1 + (i * 13) % 29)
            };
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        let log = EventLog::from_unsorted(events, 30).unwrap();
        let spec = WindowSpec::covering(&log, 200, 25).unwrap(); // heavy overlap
        let mk = |init_mode| PostmortemConfig {
            kernel: KernelKind::SpMV,
            mode: ParallelMode::Sequential,
            init_mode,
            num_multiwindows: 2,
            pr: PrConfig {
                tol: 1e-10,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = |m| PostmortemEngine::new(&log, spec, mk(m)).unwrap().run();
        let warm = run(InitMode::Warm).total_iterations();
        let partial = run(InitMode::Partial).total_iterations();
        let full = run(InitMode::Full).total_iterations();
        assert!(partial < full, "partial {partial} vs full {full}");
        // Warm additionally seeds the part-boundary window.
        assert!(warm < partial, "warm {warm} vs partial {partial}");
    }

    #[test]
    fn indexed_and_unindexed_runs_are_identical() {
        // The window index must not change a single bit of the output:
        // fingerprints, iteration counts, and rank vectors all match across
        // every kernel and parallel mode.
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        for kernel in [
            KernelKind::SpMV,
            KernelKind::SpMM { lanes: 4 },
            KernelKind::PushBlocking,
        ] {
            for mode in [
                ParallelMode::Sequential,
                ParallelMode::WindowLevel,
                ParallelMode::ApplicationLevel,
                ParallelMode::Nested,
            ] {
                let mk = |use_window_index| PostmortemConfig {
                    kernel,
                    mode,
                    use_window_index,
                    pr: tight_cfg(),
                    num_multiwindows: 3,
                    ..Default::default()
                };
                let indexed = PostmortemEngine::new(&log, spec, mk(true)).unwrap().run();
                let plain = PostmortemEngine::new(&log, spec, mk(false)).unwrap().run();
                for (x, y) in indexed.windows.iter().zip(plain.windows.iter()) {
                    assert_eq!(x.window, y.window);
                    assert_eq!(x.stats, y.stats, "{kernel:?} {mode:?} window {}", x.window);
                    assert_eq!(
                        x.fingerprint, y.fingerprint,
                        "{kernel:?} {mode:?} window {}",
                        x.window
                    );
                }
            }
        }
    }

    #[test]
    fn many_multiwindows_match_few() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let mk = |y| PostmortemConfig {
            num_multiwindows: y,
            pr: tight_cfg(),
            ..Default::default()
        };
        let a = PostmortemEngine::new(&log, spec, mk(1)).unwrap().run();
        let b = PostmortemEngine::new(&log, spec, mk(spec.count))
            .unwrap()
            .run();
        for (x, y) in a.windows.iter().zip(b.windows.iter()) {
            let d = x
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(y.ranks.as_ref().unwrap());
            assert!(d < 1e-7, "window {}: {d}", x.window);
        }
    }

    #[test]
    fn all_partitioners_produce_identical_rankings() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let base = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for part in [Partitioner::Simple, Partitioner::Static] {
            for g in [1, 4, 64] {
                let cfg = PostmortemConfig {
                    scheduler: Scheduler::new(part, g),
                    pr: tight_cfg(),
                    ..Default::default()
                };
                let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
                for (x, y) in base.windows.iter().zip(out.windows.iter()) {
                    assert!((x.fingerprint - y.fingerprint).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn summary_retention_drops_vectors_but_keeps_fingerprint() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let full = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        let summary = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                retain: RetainMode::Summary,
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for (f, s) in full.windows.iter().zip(summary.windows.iter()) {
            assert!(s.ranks.is_none());
            assert!(f.ranks.is_some());
            assert!((f.fingerprint - s.fingerprint).abs() < 1e-9);
        }
    }

    #[test]
    fn explicit_thread_count_works() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let cfg = PostmortemConfig {
            threads: 2,
            pr: tight_cfg(),
            ..Default::default()
        };
        let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
        assert_eq!(out.windows.len(), spec.count);
    }

    #[test]
    fn equal_events_partitioning_matches_equal_windows() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let a = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        let b = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                partition: tempopr_graph::PartitionStrategy::EqualEvents,
                pr: tight_cfg(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        for (x, y) in a.windows.iter().zip(b.windows.iter()) {
            assert!(
                (x.fingerprint - y.fingerprint).abs() < 1e-9,
                "window {}",
                x.window
            );
        }
    }
}
