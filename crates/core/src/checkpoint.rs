//! Durable checkpoint/resume for long window runs (`tempopr.ckpt.v1`).
//!
//! A long postmortem replay can spend hours converging hundreds of windows;
//! without durability a crash at window 900/1000 discards every finished
//! rank vector. This module persists one record per completed window into a
//! single append-only *manifest* file so an interrupted run can be resumed
//! with `--resume` and reproduce the uninterrupted run's fingerprints
//! bit-for-bit (the drivers re-seed warm-start carries from the last
//! checkpointed window).
//!
//! On-disk format (`tempopr.ckpt.v1`, all integers little-endian):
//!
//! ```text
//! manifest.ckpt = header | record*
//! header (60 bytes) =
//!     magic "TPCK" | version u16 | driver u8 | flags u8 |
//!     config_hash u64 | log_fingerprint u64 |
//!     t0 i64 | delta i64 | sw i64 | count u64 | crc32(header[0..56]) u32
//! record = payload_len u32 | crc32(payload) u32 | payload
//! payload =
//!     window u64 | status u8 | via u8 | attempts u16 |
//!     iterations u64 | converged u8 | active_vertices u64 |
//!     renormalizations u32 | restarts u32 | fingerprint_bits u64 |
//!     diag_len u32 | diag bytes | nranks u32 | vertex u32 * | rank_bits u64 *
//! ```
//!
//! Durability discipline: the header (and, on resume, the validated record
//! prefix) is written to a temp file, fsynced, and renamed into place;
//! records are appended with `write_all` + `fdatasync` per flush batch
//! (`--checkpoint-every N` buffers N in-order records per fsync). Records
//! are written strictly in window order even when windows complete out of
//! order (SpMM region interleaving, offline parallel windows), so the
//! manifest always holds a *contiguous prefix* of windows `0..k`.
//!
//! Torn-tail rule: a reader accepts the longest prefix of records that
//! frame, checksum, decode, and number contiguously; the first short,
//! corrupt, or out-of-sequence record ends the scan and everything after it
//! is discarded (`checkpoint.corrupt_discarded`). Header problems are never
//! silently repaired: a bad magic or checksum is [`CheckpointError::Corrupt`],
//! a version or compatibility-hash mismatch is
//! [`CheckpointError::Incompatible`] — a resume either provably matches the
//! original run's config and event log or refuses to start.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::result::{RecoveryKind, SparseRanks, WindowOutput, WindowStatus};
use crate::RetainMode;
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::{PrHealth, PrStats};
use tempopr_telemetry::{Phase as RunPhase, Telemetry};

/// File name of the checkpoint manifest inside `--checkpoint-dir`.
pub const MANIFEST_NAME: &str = "manifest.ckpt";
/// Temp-file name used for atomic header/prefix rewrites.
const MANIFEST_TMP: &str = "manifest.tmp";
/// `tempopr.ckpt.v1` magic.
const MAGIC: [u8; 4] = *b"TPCK";
/// Format version this build reads and writes.
const VERSION: u16 = 1;
/// Encoded header length in bytes.
const HEADER_LEN: usize = 60;
/// Fixed (rank- and diagnostic-free) payload length; shorter frames are torn.
const PAYLOAD_MIN: usize = 8 + 1 + 1 + 2 + 8 + 1 + 8 + 4 + 4 + 8 + 4 + 4;
/// Cap on the persisted diagnostic string of a failed window.
const DIAG_CAP: usize = 4096;

/// Driver id stored in the manifest header: postmortem engine.
pub const DRIVER_POSTMORTEM: u8 = 1;
/// Driver id stored in the manifest header: offline rebuild-per-window.
pub const DRIVER_OFFLINE: u8 = 2;
/// Driver id stored in the manifest header: streaming sliding-window.
pub const DRIVER_STREAMING: u8 = 3;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — table generated at compile time; no external
// crates in the offline build.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be written or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure creating, writing, or reading the manifest.
    Io(std::io::Error),
    /// The manifest header is unusable (bad magic, failed checksum,
    /// truncated) — nothing can be trusted, including the record region.
    Corrupt(String),
    /// The manifest is well-formed but belongs to a different run: format
    /// version, driver, config hash, event-log fingerprint, or window spec
    /// disagree with the resuming run.
    Incompatible(String),
    /// Resume is not supported under the requested execution mode.
    Unsupported(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint manifest: {m}"),
            CheckpointError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
            CheckpointError::Unsupported(m) => write!(f, "resume unsupported: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<String> for CheckpointError {
    fn from(short_read: String) -> Self {
        CheckpointError::Corrupt(short_read)
    }
}

// ---------------------------------------------------------------------------
// Options and header
// ---------------------------------------------------------------------------

/// Durability options for a run, kept *outside* the driver configs so the
/// compatibility hash of the computation is unaffected by where (or
/// whether) checkpoints are written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Directory to write the manifest into (`None` = no checkpointing).
    pub dir: Option<PathBuf>,
    /// Flush/fsync batch size in windows: `N` buffers up to `N` in-order
    /// records per fsync (a crash loses at most the buffered tail, which
    /// is recomputed on resume). `0` behaves as `1`.
    pub every: usize,
    /// Directory holding a manifest to resume from (`None` = fresh run).
    pub resume: Option<PathBuf>,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions {
            dir: None,
            every: 1,
            resume: None,
        }
    }
}

impl CheckpointOptions {
    /// True when the run neither writes nor resumes — drivers skip all
    /// checkpoint plumbing.
    pub fn is_noop(&self) -> bool {
        self.dir.is_none() && self.resume.is_none()
    }
}

/// The identity block of a manifest: which driver produced it, under what
/// configuration, over which event log and window sequence. A resume
/// refuses to reuse records unless every field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestHeader {
    /// Producing driver ([`DRIVER_POSTMORTEM`] / [`DRIVER_OFFLINE`] /
    /// [`DRIVER_STREAMING`]).
    pub driver: u8,
    /// [`hash_config`] of the driver config's `Debug` rendering (crash
    /// injection zeroed out — see [`crate::config::FaultPlan`]).
    pub config_hash: u64,
    /// [`log_fingerprint`] of the event log.
    pub log_fingerprint: u64,
    /// Window spec `t0`.
    pub t0: i64,
    /// Window spec `delta`.
    pub delta: i64,
    /// Window spec `sw`.
    pub sw: i64,
    /// Window spec `count`.
    pub count: u64,
}

impl ManifestHeader {
    /// Builds the header for a run.
    pub fn new(driver: u8, config_hash: u64, log_fingerprint: u64, spec: &WindowSpec) -> Self {
        ManifestHeader {
            driver,
            config_hash,
            log_fingerprint,
            t0: spec.t0,
            delta: spec.delta,
            sw: spec.sw,
            count: spec.count as u64,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(HEADER_LEN);
        b.extend_from_slice(&MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.push(self.driver);
        b.push(0); // flags, reserved
        b.extend_from_slice(&self.config_hash.to_le_bytes());
        b.extend_from_slice(&self.log_fingerprint.to_le_bytes());
        b.extend_from_slice(&self.t0.to_le_bytes());
        b.extend_from_slice(&self.delta.to_le_bytes());
        b.extend_from_slice(&self.sw.to_le_bytes());
        b.extend_from_slice(&self.count.to_le_bytes());
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses and validates a header against the resuming run's expected
    /// identity. Field order of checks: structural corruption first
    /// (magic, truncation), then version, then checksum, then identity.
    fn decode_expecting(bytes: &[u8], expect: &ManifestHeader) -> Result<(), CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Corrupt(format!(
                "header truncated: {} of {HEADER_LEN} bytes",
                bytes.len()
            )));
        }
        let mut c = Cursor::new(&bytes[..HEADER_LEN]);
        if c.bytes(4)? != MAGIC {
            return Err(CheckpointError::Corrupt(
                "bad magic (not a tempopr.ckpt file)".into(),
            ));
        }
        let version = c.u16()?;
        if version != VERSION {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint format version {version} (this build reads v{VERSION})"
            )));
        }
        let stored_crc = u32::from_le_bytes([bytes[56], bytes[57], bytes[58], bytes[59]]);
        if crc32(&bytes[..56]) != stored_crc {
            return Err(CheckpointError::Corrupt("header checksum mismatch".into()));
        }
        let driver = c.u8()?;
        let _flags = c.u8()?;
        let config_hash = c.u64()?;
        let log_fingerprint = c.u64()?;
        let t0 = c.i64()?;
        let delta = c.i64()?;
        let sw = c.i64()?;
        let count = c.u64()?;
        let mismatch = |what: &str| {
            Err(CheckpointError::Incompatible(format!(
                "{what} differs from the checkpointed run"
            )))
        };
        if driver != expect.driver {
            return mismatch("driver");
        }
        if config_hash != expect.config_hash {
            return mismatch("config hash");
        }
        if log_fingerprint != expect.log_fingerprint {
            return mismatch("event-log fingerprint");
        }
        if (t0, delta, sw, count) != (expect.t0, expect.delta, expect.sw, expect.count) {
            return mismatch("window spec");
        }
        Ok(())
    }
}

/// FNV-1a hash of a config's `Debug` rendering — the compatibility hash
/// stored in the manifest header. `Debug` covers every field of the derive
/// chain, so any semantic config change (tolerance, kernel, init mode,
/// fault plan, ...) changes the hash and blocks an incompatible resume.
pub fn hash_config(debug_rendering: &str) -> u64 {
    fnv1a(0xcbf2_9ce4_8422_2325, debug_rendering.as_bytes())
}

/// FNV-1a fingerprint of an event log: vertex-universe size plus every
/// `(u, v, t)` in order. O(|E|), computed once per durable run.
pub fn log_fingerprint(log: &EventLog) -> u64 {
    let mut h = fnv1a(
        0xcbf2_9ce4_8422_2325,
        &(log.num_vertices() as u64).to_le_bytes(),
    );
    for e in log.events() {
        h = fnv1a(h, &e.u.to_le_bytes());
        h = fnv1a(h, &e.v.to_le_bytes());
        h = fnv1a(h, &e.t.to_le_bytes());
    }
    h
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable window result. Unlike [`WindowOutput`], the rank vector is
/// *always* present (resume re-seeding needs it even under
/// [`RetainMode::Summary`]); it is sparse over strictly-positive entries,
/// which reconstructs the dense vector exactly because ranks are
/// non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Global window id.
    pub window: usize,
    /// Terminal status of the window.
    pub status: WindowStatus,
    /// Kernel attempts consumed (recovery ladder).
    pub attempts: u16,
    /// Convergence statistics of the accepted attempt.
    pub stats: PrStats,
    /// Order-independent digest of the final ranks.
    pub fingerprint: f64,
    /// Final ranks, sparse over the part-local (or dense) vertex space.
    pub ranks: SparseRanks,
}

impl CheckpointRecord {
    /// Rebuilds the [`WindowOutput`] this record was taken from, honoring
    /// the run's retention mode (so restored and computed outputs have the
    /// same shape).
    pub fn to_output(&self, retain: RetainMode) -> WindowOutput {
        WindowOutput {
            window: self.window,
            stats: self.stats,
            fingerprint: self.fingerprint,
            ranks: match retain {
                RetainMode::Full => Some(self.ranks.clone()),
                RetainMode::Summary => None,
            },
            status: self.status.clone(),
            attempts: self.attempts,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let (status, via, diag) = match &self.status {
            WindowStatus::Ok => (0u8, 0u8, ""),
            WindowStatus::Recovered { via } => (
                1,
                match via {
                    RecoveryKind::GuardIntervention => 1,
                    RecoveryKind::FullInitRetry => 2,
                    RecoveryKind::DenseOracle => 3,
                },
                "",
            ),
            WindowStatus::Failed { diagnostic } => (2, 0, diagnostic.as_str()),
        };
        let diag = &diag.as_bytes()[..diag.len().min(DIAG_CAP)];
        let n = self.ranks.vertices.len();
        let mut b = Vec::with_capacity(PAYLOAD_MIN + diag.len() + n * 12);
        b.extend_from_slice(&(self.window as u64).to_le_bytes());
        b.push(status);
        b.push(via);
        b.extend_from_slice(&self.attempts.to_le_bytes());
        b.extend_from_slice(&(self.stats.iterations as u64).to_le_bytes());
        b.push(self.stats.converged as u8);
        b.extend_from_slice(&(self.stats.active_vertices as u64).to_le_bytes());
        b.extend_from_slice(&self.stats.health.renormalizations.to_le_bytes());
        b.extend_from_slice(&self.stats.health.restarts.to_le_bytes());
        b.extend_from_slice(&self.fingerprint.to_bits().to_le_bytes());
        b.extend_from_slice(&(diag.len() as u32).to_le_bytes());
        b.extend_from_slice(diag);
        b.extend_from_slice(&(n as u32).to_le_bytes());
        for v in &self.ranks.vertices {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for x in &self.ranks.values {
            b.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        b
    }

    /// Length-and-CRC framed encoding, ready to append to a manifest.
    fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut f = Vec::with_capacity(8 + payload.len());
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&crc32(&payload).to_le_bytes());
        f.extend_from_slice(&payload);
        f
    }

    fn decode(payload: &[u8]) -> Result<CheckpointRecord, String> {
        let mut c = Cursor::new(payload);
        let window = c.u64()? as usize;
        let status_code = c.u8()?;
        let via = c.u8()?;
        let attempts = c.u16()?;
        let iterations = c.u64()? as usize;
        let converged = c.u8()? != 0;
        let active_vertices = c.u64()? as usize;
        let renormalizations = c.u32()?;
        let restarts = c.u32()?;
        let fingerprint = f64::from_bits(c.u64()?);
        let diag_len = c.u32()? as usize;
        let diag = c.bytes(diag_len)?;
        let diagnostic = String::from_utf8_lossy(diag).into_owned();
        let n = c.u32()? as usize;
        // Bound the preallocation by what the payload can actually hold.
        if c.remaining() < n.saturating_mul(12) {
            return Err(format!(
                "rank section declares {n} entries but only {} bytes remain",
                c.remaining()
            ));
        }
        let mut vertices = Vec::with_capacity(n);
        for _ in 0..n {
            vertices.push(c.u32()?);
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(f64::from_bits(c.u64()?));
        }
        if c.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", c.remaining()));
        }
        let status = match (status_code, via) {
            (0, _) => WindowStatus::Ok,
            (1, 1) => WindowStatus::Recovered {
                via: RecoveryKind::GuardIntervention,
            },
            (1, 2) => WindowStatus::Recovered {
                via: RecoveryKind::FullInitRetry,
            },
            (1, 3) => WindowStatus::Recovered {
                via: RecoveryKind::DenseOracle,
            },
            (2, _) => WindowStatus::Failed { diagnostic },
            (s, v) => return Err(format!("unknown status/via {s}/{v}")),
        };
        Ok(CheckpointRecord {
            window,
            status,
            attempts,
            stats: PrStats {
                iterations,
                converged,
                active_vertices,
                health: PrHealth {
                    renormalizations,
                    restarts,
                },
            },
            fingerprint,
            ranks: SparseRanks { vertices, values },
        })
    }
}

/// Little-endian pull parser over a byte slice; every read is
/// bounds-checked and surfaces a torn record as an error string.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!("short read: wanted {n}, had {}", self.remaining()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, String> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Durable, ordered writer for one run's checkpoint manifest.
///
/// Windows may finish in any order (SpMM regions, offline parallel
/// windows); the sink buffers out-of-order records and appends strictly in
/// window order so the on-disk manifest is always a contiguous prefix.
/// Write failures disable the sink (counted in `checkpoint.write_errors`)
/// rather than failing the run — durability degrades, the computation does
/// not.
pub struct CheckpointSink {
    tele: Telemetry,
    every: usize,
    crash_after: Option<usize>,
    state: Mutex<SinkState>,
}

struct SinkState {
    /// Append handle; `None` after a write error (sink disabled).
    file: Option<File>,
    /// Completed records waiting for their predecessors.
    pending: BTreeMap<usize, Vec<u8>>,
    /// Next window id to append.
    next: usize,
    /// In-order frames accumulated since the last fsync.
    buf: Vec<u8>,
    /// Records inside `buf`.
    buffered: usize,
    /// The crash-injection window has been drained into `buf`.
    crash_armed: bool,
}

impl CheckpointSink {
    /// Creates (or atomically rewrites) the manifest in `dir` with `header`
    /// and the already-validated `prefix` records, then opens it for
    /// appending from window `prefix.len()`.
    ///
    /// `crash_after` is deterministic fault injection: after the record for
    /// that window becomes durable, the process aborts
    /// ([`crate::config::FaultPlan::crash_after_checkpoint`]).
    pub fn create(
        dir: &Path,
        header: &ManifestHeader,
        prefix: &[CheckpointRecord],
        every: usize,
        crash_after: Option<usize>,
        tele: Telemetry,
    ) -> Result<CheckpointSink, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(MANIFEST_TMP);
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = header.encode();
        for rec in prefix {
            bytes.extend_from_slice(&rec.frame());
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable where the platform allows it.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(CheckpointSink {
            tele,
            every: every.max(1),
            crash_after,
            state: Mutex::new(SinkState {
                file: Some(file),
                pending: BTreeMap::new(),
                next: prefix.len(),
                buf: Vec::new(),
                buffered: 0,
                crash_armed: false,
            }),
        })
    }

    /// Offers a completed window. Records arriving out of order are held
    /// until their predecessors arrive; in-order records are appended (and
    /// fsynced every `every` records, or immediately when the
    /// crash-injection window becomes drainable).
    pub fn offer(&self, rec: &CheckpointRecord) {
        let mut st = lock(&self.state);
        if st.file.is_none() {
            return;
        }
        st.pending.insert(rec.window, rec.frame());
        while let Some(frame) = {
            let key = st.next;
            st.pending.remove(&key)
        } {
            st.buf.extend_from_slice(&frame);
            st.buffered += 1;
            if self.crash_after == Some(st.next) {
                st.crash_armed = true;
            }
            st.next += 1;
        }
        if st.buffered >= self.every || st.crash_armed {
            self.flush_locked(&mut st);
        }
        if st.crash_armed && st.file.is_some() {
            // The injected crash point: the record for window k is durable,
            // nothing after it is. abort() skips destructors and exit
            // handlers — the closest safe stand-in for a kill -9.
            std::process::abort();
        }
    }

    /// Flushes any buffered tail (end of run, possibly mid-batch).
    pub fn finish(&self) {
        let mut st = lock(&self.state);
        if st.buffered > 0 {
            self.flush_locked(&mut st);
        }
    }

    fn flush_locked(&self, st: &mut SinkState) {
        let Some(file) = st.file.as_mut() else {
            return;
        };
        let _t = self.tele.phase(RunPhase::CheckpointWrite);
        let res = file.write_all(&st.buf).and_then(|()| file.sync_data());
        match res {
            Ok(()) => {
                self.tele.add("checkpoint.writes", st.buffered as u64);
                self.tele.add("checkpoint.bytes", st.buf.len() as u64);
            }
            Err(_) => {
                self.tele.add("checkpoint.write_errors", 1);
                st.file = None;
            }
        }
        st.buf.clear();
        st.buffered = 0;
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Reading / resume
// ---------------------------------------------------------------------------

/// What a resume scan recovered from a manifest.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// The longest valid prefix of window records (`records[i].window == i`).
    pub records: Vec<CheckpointRecord>,
    /// 1 when a torn/corrupt tail was discarded after the valid prefix.
    pub corrupt_discarded: u64,
}

/// Reads the manifest in `dir` (a checkpoint directory or a direct path to
/// a manifest file), verifies its header against `expect`, and returns the
/// longest valid record prefix. Corruption inside the record region is
/// tolerated (torn-tail rule); corruption of the header is not.
pub fn resume_scan(dir: &Path, expect: &ManifestHeader) -> Result<ResumeState, CheckpointError> {
    let path = if dir.is_dir() {
        dir.join(MANIFEST_NAME)
    } else {
        dir.to_path_buf()
    };
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    ManifestHeader::decode_expecting(&bytes, expect)?;
    let mut state = ResumeState::default();
    let mut at = HEADER_LEN;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            return Ok(state);
        }
        if rest.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len < PAYLOAD_MIN || rest.len() - 8 < len {
            break; // implausible or truncated payload
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            break; // bit corruption
        }
        let Ok(rec) = CheckpointRecord::decode(payload) else {
            break; // framed and checksummed but undecodable
        };
        if rec.window != state.records.len() {
            break; // non-contiguous: later records are unusable too
        }
        state.records.push(rec);
        at += 8 + len;
    }
    state.corrupt_discarded = 1;
    Ok(state)
}

// ---------------------------------------------------------------------------
// Corruption injection (tests / CI)
// ---------------------------------------------------------------------------

/// Deterministic manifest corruptions for fault-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip the lowest bit of the byte at `offset`.
    BitFlip {
        /// Byte offset from the start of the manifest.
        offset: usize,
    },
    /// Truncate the manifest to `len` bytes (torn tail).
    Truncate {
        /// Resulting file length.
        len: usize,
    },
    /// Rewrite the header's version field to an unsupported value (the
    /// header CRC is recomputed, so only the version check can object).
    StaleVersion,
}

/// Applies `kind` to the manifest in `dir`, simulating external damage
/// (no temp-file discipline — that is the point).
pub fn corrupt_manifest(dir: &Path, kind: CorruptionKind) -> Result<(), CheckpointError> {
    let path = if dir.is_dir() {
        dir.join(MANIFEST_NAME)
    } else {
        dir.to_path_buf()
    };
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    match kind {
        CorruptionKind::BitFlip { offset } => {
            if offset >= bytes.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "bit-flip offset {offset} beyond manifest ({} bytes)",
                    bytes.len()
                )));
            }
            bytes[offset] ^= 1;
        }
        CorruptionKind::Truncate { len } => bytes.truncate(len),
        CorruptionKind::StaleVersion => {
            if bytes.len() < HEADER_LEN {
                return Err(CheckpointError::Corrupt("manifest too short".into()));
            }
            bytes[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
            let crc = crc32(&bytes[..56]);
            bytes[56..60].copy_from_slice(&crc.to_le_bytes());
        }
    }
    std::fs::write(&path, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(window: usize, status: WindowStatus) -> CheckpointRecord {
        CheckpointRecord {
            window,
            status,
            attempts: 1,
            stats: PrStats {
                iterations: 12 + window,
                converged: true,
                active_vertices: 7,
                health: PrHealth::default(),
            },
            fingerprint: 0.5 + window as f64,
            ranks: SparseRanks {
                vertices: vec![1, 5, 9],
                values: vec![0.25, 0.5, 0.125 + window as f64],
            },
        }
    }

    fn header() -> ManifestHeader {
        ManifestHeader {
            driver: DRIVER_POSTMORTEM,
            config_hash: 0xDEAD_BEEF,
            log_fingerprint: 0xFEED_FACE,
            t0: 0,
            delta: 100,
            sw: 50,
            count: 4,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tempopr_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn write_all(dir: &Path, h: &ManifestHeader, records: &[CheckpointRecord], every: usize) {
        let sink = CheckpointSink::create(dir, h, &[], every, None, Telemetry::noop()).unwrap();
        for r in records {
            sink.offer(r);
        }
        sink.finish();
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_roundtrip_all_statuses() {
        for status in [
            WindowStatus::Ok,
            WindowStatus::Recovered {
                via: RecoveryKind::DenseOracle,
            },
            WindowStatus::Failed {
                diagnostic: "kernel panicked: boom".into(),
            },
        ] {
            let r = rec(3, status);
            let back = CheckpointRecord::decode(&r.encode()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn sink_orders_out_of_order_offers() {
        let dir = tmpdir("order");
        let h = header();
        let sink = CheckpointSink::create(&dir, &h, &[], 1, None, Telemetry::noop()).unwrap();
        for w in [2usize, 0, 3, 1] {
            sink.offer(&rec(w, WindowStatus::Ok));
        }
        sink.finish();
        let state = resume_scan(&dir, &h).unwrap();
        assert_eq!(state.records.len(), 4);
        for (i, r) in state.records.iter().enumerate() {
            assert_eq!(r.window, i);
        }
        assert_eq!(state.corrupt_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_flush_keeps_contiguity() {
        let dir = tmpdir("batch");
        let h = header();
        write_all(
            &dir,
            &h,
            &(0..4).map(|w| rec(w, WindowStatus::Ok)).collect::<Vec<_>>(),
            8,
        );
        let state = resume_scan(&dir, &h).unwrap();
        assert_eq!(state.records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_longest_valid_prefix() {
        let dir = tmpdir("torn");
        let h = header();
        write_all(
            &dir,
            &h,
            &(0..4).map(|w| rec(w, WindowStatus::Ok)).collect::<Vec<_>>(),
            1,
        );
        let full = std::fs::metadata(dir.join(MANIFEST_NAME)).unwrap().len() as usize;
        corrupt_manifest(&dir, CorruptionKind::Truncate { len: full - 5 }).unwrap();
        let state = resume_scan(&dir, &h).unwrap();
        assert_eq!(state.records.len(), 3);
        assert_eq!(state.corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_record_region_discards_from_there() {
        let dir = tmpdir("flip");
        let h = header();
        write_all(
            &dir,
            &h,
            &(0..4).map(|w| rec(w, WindowStatus::Ok)).collect::<Vec<_>>(),
            1,
        );
        let full = std::fs::metadata(dir.join(MANIFEST_NAME)).unwrap().len() as usize;
        // Somewhere inside the last record's payload.
        corrupt_manifest(&dir, CorruptionKind::BitFlip { offset: full - 3 }).unwrap();
        let state = resume_scan(&dir, &h).unwrap();
        assert_eq!(state.records.len(), 3);
        assert_eq!(state.corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_bit_flip_is_hard_corrupt() {
        let dir = tmpdir("hdr");
        let h = header();
        write_all(&dir, &h, &[rec(0, WindowStatus::Ok)], 1);
        corrupt_manifest(&dir, CorruptionKind::BitFlip { offset: 10 }).unwrap();
        assert!(matches!(
            resume_scan(&dir, &h),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_incompatible() {
        let dir = tmpdir("ver");
        let h = header();
        write_all(&dir, &h, &[rec(0, WindowStatus::Ok)], 1);
        corrupt_manifest(&dir, CorruptionKind::StaleVersion).unwrap();
        assert!(matches!(
            resume_scan(&dir, &h),
            Err(CheckpointError::Incompatible(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_mismatch_is_incompatible() {
        let dir = tmpdir("ident");
        let h = header();
        write_all(&dir, &h, &[rec(0, WindowStatus::Ok)], 1);
        let mut other = h;
        other.config_hash ^= 1;
        assert!(matches!(
            resume_scan(&dir, &other),
            Err(CheckpointError::Incompatible(_))
        ));
        let mut other = h;
        other.log_fingerprint ^= 1;
        assert!(matches!(
            resume_scan(&dir, &other),
            Err(CheckpointError::Incompatible(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_rewrites_prefix_atomically() {
        let dir = tmpdir("rewrite");
        let h = header();
        write_all(
            &dir,
            &h,
            &(0..4).map(|w| rec(w, WindowStatus::Ok)).collect::<Vec<_>>(),
            1,
        );
        // Reopen keeping only 2 records, then append a fresh window 2.
        let prefix: Vec<CheckpointRecord> = (0..2).map(|w| rec(w, WindowStatus::Ok)).collect();
        let sink = CheckpointSink::create(&dir, &h, &prefix, 1, None, Telemetry::noop()).unwrap();
        sink.offer(&rec(
            2,
            WindowStatus::Recovered {
                via: RecoveryKind::FullInitRetry,
            },
        ));
        sink.finish();
        let state = resume_scan(&dir, &h).unwrap();
        assert_eq!(state.records.len(), 3);
        assert!(matches!(
            state.records[2].status,
            WindowStatus::Recovered { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hashes_are_stable_and_sensitive() {
        assert_eq!(hash_config("abc"), hash_config("abc"));
        assert_ne!(hash_config("abc"), hash_config("abd"));
    }
}
