//! Parameter recommendation (paper §6.3.6).
//!
//! The paper distills its sweeps into simple rules for users who will not
//! tune: *SpMM is never a bad choice*; *auto_partitioner with granularity
//! under 4*; pick the parallelization level from the balance of per-window
//! work — application-level when a couple of windows dominate or there are
//! very few windows, window-level when windows are many but individually
//! small, nested otherwise. [`suggest`] encodes those rules and Fig. 12
//! evaluates them.

use crate::config::{InitMode, KernelKind, ParallelMode, PostmortemConfig};
use tempopr_graph::{EventLog, WindowSpec};
use tempopr_kernel::{Partitioner, Scheduler};

/// Mean event overlap below which seeding from the previous window is
/// pure overhead: nearly nothing carries over, so every window should
/// start from the uniform distribution.
pub const OVERLAP_FULL_BELOW: f64 = 0.05;

/// Mean event overlap a *dominated* (spiky) workload must reach before
/// partial initialization is suggested at all: its consecutive windows
/// differ too much for a stale seed to help below this.
pub const OVERLAP_DOMINATED_PARTIAL: f64 = 0.25;

/// Mean event overlap from which cross-boundary warm-start pays: enough
/// of each window survives into the next that even the part- and
/// batch-boundary seeds land close to the converged distribution.
pub const OVERLAP_WARM_FROM: f64 = 0.5;

/// Workload measurements the rules are based on.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Number of windows.
    pub windows: usize,
    /// Events per window (cheap proxy for per-window edge work).
    pub events_per_window: Vec<usize>,
    /// Share of total work carried by the single heaviest window.
    pub max_share: f64,
    /// Mean fraction of a window's events shared with its predecessor
    /// (0 for a single window): how much a previous-window seed can carry.
    pub mean_overlap: f64,
    /// Worker threads the run will use.
    pub threads: usize,
}

impl WorkloadProfile {
    /// Measures `log` under `spec`. `threads = 0` means "all cores".
    pub fn measure(log: &EventLog, spec: &WindowSpec, threads: usize) -> Self {
        let events_per_window: Vec<usize> = (0..spec.count)
            .map(|w| {
                let r = spec.window(w);
                log.index_range_by_time(r.start, r.end).len()
            })
            .collect();
        let total: usize = events_per_window.iter().sum();
        let max = events_per_window.iter().copied().max().unwrap_or(0);
        let max_share = if total > 0 {
            max as f64 / total as f64
        } else {
            0.0
        };
        // Shared events between consecutive windows: the window ranges
        // intersect in time, so the shared count is one more indexed range
        // lookup per boundary — same cost model as the per-window counts.
        let mut overlap_sum = 0.0;
        let mut boundaries = 0usize;
        for (w, &events) in events_per_window.iter().enumerate().skip(1) {
            let prev = spec.window(w - 1);
            let cur = spec.window(w);
            let (lo, hi) = (cur.start.max(prev.start), cur.end.min(prev.end));
            let shared = if lo <= hi {
                log.index_range_by_time(lo, hi).len()
            } else {
                0
            };
            overlap_sum += shared as f64 / events.max(1) as f64;
            boundaries += 1;
        }
        let mean_overlap = if boundaries > 0 {
            overlap_sum / boundaries as f64
        } else {
            0.0
        };
        let threads = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        WorkloadProfile {
            windows: spec.count,
            events_per_window,
            max_share,
            mean_overlap,
            threads,
        }
    }

    /// Whether a couple of windows dominate the workload (the spiky Enron /
    /// Epinions / HepTh regime of Fig. 4).
    pub fn is_dominated(&self) -> bool {
        self.max_share > 0.4
    }

    /// The initialization mode the measured overlap justifies — see the
    /// decision table in DESIGN.md §9. Dominated workloads face a higher
    /// bar: their windows are spiky, so even moderate *mean* overlap hides
    /// boundaries where the seed is stale.
    pub fn suggested_init_mode(&self) -> InitMode {
        if self.mean_overlap < OVERLAP_FULL_BELOW
            || (self.is_dominated() && self.mean_overlap < OVERLAP_DOMINATED_PARTIAL)
        {
            InitMode::Full
        } else if self.mean_overlap >= OVERLAP_WARM_FROM {
            InitMode::Warm
        } else {
            InitMode::Partial
        }
    }
}

/// The paper's suggested number of multi-window graphs: "large enough" that
/// out-of-window traversal stops mattering, without wasting memory — we use
/// one part per ~8 windows, at least 6, capped by the window count.
pub fn suggested_multiwindows(windows: usize) -> usize {
    (windows / 8).max(6).min(windows.max(1))
}

/// Applies §6.3.6's rules to a measured workload.
pub fn suggest_for_profile(profile: &WorkloadProfile) -> PostmortemConfig {
    let mode = if profile.is_dominated() || profile.windows < 2 * profile.threads {
        // A few windows carry the load (or there are too few windows to
        // feed the cores): parallelize inside the kernel.
        ParallelMode::ApplicationLevel
    } else {
        ParallelMode::Nested
    };
    PostmortemConfig {
        // 0 = automatic: `engine::auto_multiwindows` sizes parts at about
        // δ/sw windows for SpMV/push (≈2x traversal overhead, clamped to
        // 2..=64 windows per part) and widens them to give every SpMM lane
        // at least two regions (clamped to 2..=256).
        num_multiwindows: 0,
        kernel: KernelKind::SpMM { lanes: 16 },
        scheduler: Scheduler::new(Partitioner::Auto, 2),
        mode,
        init_mode: profile.suggested_init_mode(),
        ..Default::default()
    }
}

/// Measures the workload and applies the rules in one step.
pub fn suggest(log: &EventLog, spec: &WindowSpec, threads: usize) -> PostmortemConfig {
    suggest_for_profile(&WorkloadProfile::measure(log, spec, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn uniform_log(windows_worth: i64) -> EventLog {
        let mut events = Vec::new();
        for t in 0..windows_worth * 10 {
            events.push(Event::new((t % 10) as u32, ((t + 1) % 10) as u32, t));
        }
        EventLog::from_unsorted(events, 10).unwrap()
    }

    #[test]
    fn profile_measures_distribution() {
        let log = uniform_log(40);
        let spec = WindowSpec::covering(&log, 20, 10).unwrap();
        let p = WorkloadProfile::measure(&log, &spec, 4);
        assert_eq!(p.windows, spec.count);
        assert_eq!(p.events_per_window.len(), spec.count);
        assert!(p.max_share > 0.0 && p.max_share <= 1.0);
        assert!(!p.is_dominated());
        // delta = 20, sw = 10: half of each window's events carry over.
        assert!(
            (p.mean_overlap - 0.5).abs() < 0.1,
            "mean overlap {}",
            p.mean_overlap
        );
    }

    #[test]
    fn spiky_workload_detected_as_dominated() {
        // Nearly all events inside one window's span.
        let mut events: Vec<Event> = (0..1000)
            .map(|i| Event::new((i % 20) as u32, ((i + 3) % 20) as u32, 100 + (i % 5) as i64))
            .collect();
        events.push(Event::new(0, 1, 0));
        events.push(Event::new(0, 1, 1000));
        let log = EventLog::from_unsorted(events, 20).unwrap();
        let spec = WindowSpec::covering(&log, 50, 100).unwrap();
        let p = WorkloadProfile::measure(&log, &spec, 4);
        assert!(p.is_dominated(), "max share {}", p.max_share);
        let cfg = suggest_for_profile(&p);
        assert_eq!(cfg.mode, ParallelMode::ApplicationLevel);
        // sw > delta: the windows are disjoint, so seeding from the
        // previous window cannot help — the old unconditional
        // `partial_init: true` was wrong exactly here.
        assert!(p.mean_overlap < OVERLAP_FULL_BELOW);
        assert_eq!(cfg.init_mode, InitMode::Full);
    }

    #[test]
    fn balanced_many_window_workload_gets_nested() {
        let log = uniform_log(400);
        let spec = WindowSpec::covering(&log, 20, 10).unwrap();
        let mut p = WorkloadProfile::measure(&log, &spec, 4);
        p.threads = 4;
        assert!(p.windows >= 8);
        let cfg = suggest_for_profile(&p);
        assert_eq!(cfg.mode, ParallelMode::Nested);
        assert_eq!(cfg.kernel, KernelKind::SpMM { lanes: 16 });
        assert_eq!(cfg.scheduler.partitioner, Partitioner::Auto);
        assert!(cfg.scheduler.granularity < 4);
        // ~50% of each window carries over: warm-start territory.
        assert_eq!(cfg.init_mode, InitMode::Warm);
    }

    #[test]
    fn init_mode_follows_the_overlap_decision_table() {
        let mut p = WorkloadProfile {
            windows: 40,
            events_per_window: vec![100; 40],
            max_share: 1.0 / 40.0,
            mean_overlap: 0.0,
            threads: 4,
        };
        assert_eq!(p.suggested_init_mode(), InitMode::Full);
        p.mean_overlap = 0.2;
        assert_eq!(p.suggested_init_mode(), InitMode::Partial);
        p.mean_overlap = 0.8;
        assert_eq!(p.suggested_init_mode(), InitMode::Warm);
        // A dominated workload needs more overlap before seeding pays.
        p.max_share = 0.6;
        p.mean_overlap = 0.2;
        assert_eq!(p.suggested_init_mode(), InitMode::Full);
        p.mean_overlap = 0.3;
        assert_eq!(p.suggested_init_mode(), InitMode::Partial);
        p.mean_overlap = 0.8;
        assert_eq!(p.suggested_init_mode(), InitMode::Warm);
    }

    #[test]
    fn few_windows_get_application_level() {
        let log = uniform_log(4);
        let spec = WindowSpec::covering(&log, 20, 10).unwrap();
        let mut p = WorkloadProfile::measure(&log, &spec, 64);
        p.threads = 64; // few windows vs many threads
        assert_eq!(suggest_for_profile(&p).mode, ParallelMode::ApplicationLevel);
    }

    #[test]
    fn suggested_multiwindow_counts() {
        assert_eq!(suggested_multiwindows(1), 1);
        assert_eq!(suggested_multiwindows(6), 6);
        assert_eq!(suggested_multiwindows(48), 6);
        assert_eq!(suggested_multiwindows(80), 10);
        assert_eq!(suggested_multiwindows(1024), 128);
    }

    #[test]
    fn suggest_end_to_end() {
        let log = uniform_log(100);
        let spec = WindowSpec::covering(&log, 20, 10).unwrap();
        let cfg = suggest(&log, &spec, 0);
        assert!(matches!(cfg.kernel, KernelKind::SpMM { lanes: 16 }));
    }
}
