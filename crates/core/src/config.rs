//! Configuration of a postmortem analysis run.

use tempopr_graph::multiwindow::PartitionStrategy;
use tempopr_kernel::{FaultKind, PrConfig, Scheduler};

/// A deterministic fault targeted at one window of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowFault {
    /// Global window index the fault fires in.
    pub window: usize,
    /// What goes wrong inside that window's kernel.
    pub fault: FaultKind,
}

/// A seeded, reproducible set of injected faults (empty by default and
/// zero-cost when empty): each entry poisons exactly one window, and the
/// same plan against the same input reproduces the same failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults, at most one per window (later entries for the
    /// same window are ignored).
    pub faults: Vec<WindowFault>,
    /// Process-level crash injection: abort the process immediately after
    /// the checkpoint record for this window becomes durable (a
    /// deterministic stand-in for `kill -9` at window *k*). Only effective
    /// on the durable entry points; ignored — like any fault — by the
    /// checkpoint compatibility hash, so a resumed run (which clears it)
    /// still matches the crashed run's manifest.
    pub crash_after_checkpoint: Option<usize>,
}

impl FaultPlan {
    /// A plan with a single fault.
    pub fn single(window: usize, fault: FaultKind) -> Self {
        FaultPlan {
            faults: vec![WindowFault { window, fault }],
            crash_after_checkpoint: None,
        }
    }

    /// Whether no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.crash_after_checkpoint.is_none()
    }

    /// The fault targeted at `window`, if any.
    pub fn fault_for(&self, window: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.window == window)
            .map(|f| f.fault)
    }
}

/// Which level(s) of parallelism drive the run (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// No parallelism at all (reference / debugging).
    Sequential,
    /// Parallel across windows; each PageRank runs sequentially
    /// (§4.3.1). Consecutive windows inside one grain stay on one thread,
    /// preserving partial initialization within the grain.
    WindowLevel,
    /// Windows in order; parallelism inside each PageRank (§4.3.2). The
    /// paper also calls this "PR-level" parallelization.
    ApplicationLevel,
    /// Both at once, on one work-stealing pool (§4.3.3).
    #[default]
    Nested,
}

/// Which kernel computes each window (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// One SpMV-style power iteration per window.
    SpMV,
    /// SpMM-inspired batching: `lanes` windows of one multi-window graph
    /// iterate together on interleaved rank vectors (paper uses 8 or 16).
    SpMM {
        /// Number of simultaneous rank vectors (1..=64).
        lanes: usize,
    },
    /// Push-style SpMV with propagation blocking (Beamer et al., cited in
    /// the paper's §2.2 as compatible). The kernel itself is sequential;
    /// window-level parallelism provides the outer concurrency.
    PushBlocking,
}

impl Default for KernelKind {
    fn default() -> Self {
        KernelKind::SpMM { lanes: 16 }
    }
}

/// How each window's rank vector is seeded before iterating (§4.2 plus
/// the cross-boundary warm-start extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMode {
    /// Every window starts from the uniform distribution (no reuse; the
    /// paper's full-initialization baseline).
    Full,
    /// Eq. 4 partial initialization wherever the previous window's ranks
    /// are already on-thread in the *same* multi-window part: consecutive
    /// windows of an SpMV/push grain, and SpMM batches after the first.
    /// Part and batch boundaries still start cold. The paper's default.
    #[default]
    Partial,
    /// Partial initialization plus cross-boundary carry: the converged
    /// ranks of one part's last window seed the next part's first window
    /// (remapped between the parts' local vertex spaces), and the first
    /// SpMM batch of a part seeds every lane from the carried vector.
    /// Degenerate carries (no shared vertices, vanished rank mass) fall
    /// back to full initialization — never NaN. In-order walks only:
    /// part-parallel modes have no previous part to carry from.
    Warm,
}

/// How much output each window retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetainMode {
    /// Keep the full (sparse) rank vector of every window.
    #[default]
    Full,
    /// Keep only statistics and a rank fingerprint — what the benchmark
    /// harness uses so hundreds of windows don't hold hundreds of vectors.
    Summary,
}

/// Full configuration of a postmortem run.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemConfig {
    /// Number of multi-window graphs `Y` (clamped to the window count).
    /// `0` selects automatically from the window-overlap ratio and the
    /// kernel: parts sized so one SpMV traverses about twice the window's
    /// own events, or wide enough to feed all SpMM lanes (see
    /// [`crate::engine::auto_multiwindows`]).
    pub num_multiwindows: usize,
    /// How windows are grouped into multi-window graphs.
    pub partition: PartitionStrategy,
    /// Symmetrize events (the paper's default, Fig. 3).
    pub symmetric: bool,
    /// PageRank parameters.
    pub pr: PrConfig,
    /// Parallelization level.
    pub mode: ParallelMode,
    /// SpMV or SpMM kernel.
    pub kernel: KernelKind,
    /// Partitioner + grain size for every parallel loop.
    pub scheduler: Scheduler,
    /// How windows are seeded: full (uniform), partial (Eq. 4 within a
    /// part), or warm (partial plus cross-part/cross-batch carry).
    pub init_mode: InitMode,
    /// Serve each kernel's degree/activity setup from the per-window
    /// [`tempopr_graph::WindowIndex`] (built lazily, once per multi-window
    /// graph) instead of rescanning the part's temporal CSR per window.
    /// Ranks are identical either way; disable only for ablation.
    pub use_window_index: bool,
    /// Worker threads (0 = rayon default: all cores).
    pub threads: usize,
    /// Output retention.
    pub retain: RetainMode,
    /// Deterministic fault injection plan (testing only). Empty by
    /// default; when empty, the run takes exactly the fault-free code
    /// paths and ranks are unchanged bit for bit.
    pub faults: FaultPlan,
    /// What the executor may attempt when a window's kernel fails
    /// ([`crate::exec::RecoveryPolicy`]). The postmortem engine's
    /// historical behavior is the full ladder; `fail_only` surfaces every
    /// failure as a `Failed` window instead (CLI `--recovery fail-only`).
    pub recovery: crate::exec::RecoveryPolicy,
    /// Overlap the next multi-window part's window-index construction with
    /// the current window's kernel (in-order SpMV/push walks only; needs
    /// `use_window_index`). Ranks and deterministic traces are unchanged —
    /// the prefetch only moves wall-clock setup work off the critical
    /// path. Off by default.
    pub pipeline: bool,
}

impl Default for PostmortemConfig {
    fn default() -> Self {
        PostmortemConfig {
            num_multiwindows: 0,
            partition: PartitionStrategy::EqualWindows,
            symmetric: true,
            pr: PrConfig::default(),
            mode: ParallelMode::Nested,
            kernel: KernelKind::default(),
            scheduler: Scheduler::default(),
            init_mode: InitMode::Partial,
            use_window_index: true,
            threads: 0,
            retain: RetainMode::Full,
            faults: FaultPlan::default(),
            recovery: crate::exec::RecoveryPolicy::ladder(),
            pipeline: false,
        }
    }
}

impl PostmortemConfig {
    /// The paper's "bare-bone" configuration used in the Fig. 5 model
    /// comparison: partial initialization, 6 multi-window graphs,
    /// application-level parallelism, static partitioner, SpMV.
    pub fn bare_bone() -> Self {
        PostmortemConfig {
            num_multiwindows: 6,
            mode: ParallelMode::ApplicationLevel,
            kernel: KernelKind::SpMV,
            scheduler: Scheduler::new(tempopr_kernel::Partitioner::Static, 1),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_kernel::Partitioner;

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = PostmortemConfig::default();
        assert_eq!(c.mode, ParallelMode::Nested);
        assert_eq!(c.kernel, KernelKind::SpMM { lanes: 16 });
        assert_eq!(c.init_mode, InitMode::Partial);
        assert!(c.use_window_index);
        assert!(c.symmetric);
        assert_eq!(c.scheduler.partitioner, Partitioner::Auto);
    }

    #[test]
    fn bare_bone_matches_fig5_setup() {
        let c = PostmortemConfig::bare_bone();
        assert_eq!(c.num_multiwindows, 6);
        assert_eq!(c.mode, ParallelMode::ApplicationLevel);
        assert_eq!(c.kernel, KernelKind::SpMV);
        assert_eq!(c.scheduler.partitioner, Partitioner::Static);
        assert_eq!(c.init_mode, InitMode::Partial);
    }
}
