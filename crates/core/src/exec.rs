//! The driver-agnostic window-execution layer.
//!
//! All three computation models of the paper — postmortem (§4), offline
//! rebuild-per-window (§3.3.1), and streaming incremental (§3.3.2) — share
//! the same per-window lifecycle: *setup* (build or update the graph view),
//! *compute* (run a kernel to a terminal [`WindowStatus`], escalating
//! through the recovery ladder on failure), and *finalize* (assemble the
//! [`WindowOutput`], record terminal telemetry, recycle buffers). This
//! module owns the single copy of that lifecycle:
//!
//! - [`WindowExecutor`] holds the recovery ladder ([`WindowExecutor::drive`]),
//!   panic isolation ([`isolate`]), `NumericPolicy` escalation, and the
//!   terminal status/output assembly ([`WindowExecutor::finalize`]). Every
//!   `Failed`/`Recovered`/`Ok` classification in the workspace funnels
//!   through here.
//! - [`WindowSource`] is the per-driver adapter producing one work item per
//!   window (a multi-window part index, a freshly built CSR, a mutated
//!   streaming store) and recycling it afterwards.
//! - [`run_windows`] walks a window range through setup → compute →
//!   finalize, optionally overlapping the *next* window's setup (via a
//!   [`Prefetcher`]) with the current window's kernel on a scoped helper
//!   thread. The time the kernel finishes *before* the prefetch is recorded
//!   under the `pipeline_stall` phase. With no prefetcher the loop is a
//!   plain sequential walk, byte-identical in trace output to the
//!   pre-refactor drivers.
//!
//! Deterministic-trace contract: for non-pipelined runs this module emits
//! exactly the event sequence the drivers emitted before the refactor —
//! recovery counter+marker pairs from `drive`, then `WindowStart` and the
//! terminal marker from `finalize` — so blessed `tempopr.trace.v1`
//! snapshots remain valid.

use crate::checkpoint::{CheckpointRecord, CheckpointSink};
use crate::config::RetainMode;
use crate::result::{rank_fingerprint, RecoveryKind, SparseRanks, WindowOutput, WindowStatus};
use std::ops::Range;
use std::sync::Arc;
use tempopr_graph::{Event, TemporalCsr, TimeRange};
use tempopr_kernel::{
    overlap, solve_pagerank_exact, KernelError, NumericPolicy, PrConfig, PrHealth, PrStats,
};
use tempopr_telemetry::{Phase as RunPhase, Telemetry, TraceEvent, TraceKind};

/// Largest active set the dense Eq. 2 oracle accepts as a recovery
/// fallback — the solve is `O(n³)`, so it only rescues small windows.
pub const MAX_ORACLE_ACTIVE: usize = 512;

/// Which rungs of the recovery ladder a driver enables.
///
/// The postmortem engine runs the full [`RecoveryPolicy::ladder`]; the
/// offline and streaming baselines default to [`RecoveryPolicy::fail_only`]
/// (a window that cannot converge as configured simply fails — their
/// historical behavior), but accept the full ladder for parity testing.
/// [`NumericPolicy::Fail`] on the kernel guard overrides everything: no
/// recovery of any kind is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Rung 2: recompute a warm-started window from full (uniform)
    /// initialization. Only fires for windows that were partially
    /// initialized — a cold start already was fully initialized.
    pub full_init_retry: bool,
    /// Rung 3: solve the window exactly with the dense Eq. 2 oracle.
    pub dense_oracle: bool,
    /// Active-set cap for the dense oracle (its solve is `O(n³)`).
    pub max_oracle_active: usize,
}

impl RecoveryPolicy {
    /// The full ladder: full-init retry, then the dense oracle.
    pub fn ladder() -> Self {
        RecoveryPolicy {
            full_init_retry: true,
            dense_oracle: true,
            max_oracle_active: MAX_ORACLE_ACTIVE,
        }
    }

    /// No recovery rungs: the first failed attempt is terminal.
    pub fn fail_only() -> Self {
        RecoveryPolicy {
            full_init_retry: false,
            dense_oracle: false,
            max_oracle_active: MAX_ORACLE_ACTIVE,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::fail_only()
    }
}

/// The single owner of per-window failure semantics: recovery ladder,
/// panic isolation, status classification, and terminal output assembly.
///
/// Drivers construct one per run (it is a bundle of references, free to
/// copy around) and route every window through [`WindowExecutor::drive`] +
/// [`WindowExecutor::finalize`].
pub struct WindowExecutor<'a> {
    tele: &'a Telemetry,
    pr: &'a PrConfig,
    /// Enabled recovery rungs (public so drivers can consult the oracle cap).
    pub recovery: RecoveryPolicy,
    retain: RetainMode,
    /// Durable checkpoint sink; when set, every finalized window is
    /// offered as a [`crate::checkpoint::CheckpointRecord`] — this single
    /// hook is how all three drivers inherit checkpointing.
    ckpt: Option<Arc<CheckpointSink>>,
}

impl<'a> WindowExecutor<'a> {
    /// An executor recording into `tele`, with `pr` as the base kernel
    /// configuration (its guard policy decides fail-fast), `recovery`
    /// gating the ladder, and `retain` deciding output retention.
    pub fn new(
        tele: &'a Telemetry,
        pr: &'a PrConfig,
        recovery: RecoveryPolicy,
        retain: RetainMode,
    ) -> Self {
        WindowExecutor {
            tele,
            pr,
            recovery,
            retain,
            ckpt: None,
        }
    }

    /// Attaches (or detaches) a durable checkpoint sink; finalized windows
    /// are then persisted through it regardless of the retention mode.
    pub fn with_checkpoint(mut self, sink: Option<Arc<CheckpointSink>>) -> Self {
        self.ckpt = sink;
        self
    }

    /// Drives one window's kernel attempts to a terminal status.
    ///
    /// `kernel(false)` runs as configured, `kernel(true)` forces uniform
    /// initialization; `oracle()` solves the window exactly (or `None`
    /// when it is too large). Returns the stats, the terminal status,
    /// `Some(ranks)` when the final ranks did *not* come from the kernel
    /// workspace (oracle recovery, or zeros for a failed window), and the
    /// highest recovery rung reached (1..=3).
    ///
    /// Ladder: converged → done (status from the kernel's health record);
    /// error / non-convergence → full-init retry (warm starts only) →
    /// dense oracle → `Failed`, with each rung subject to the
    /// [`RecoveryPolicy`]. A caught panic fails immediately — the
    /// workspace is not trustworthy afterwards, so the caller must discard
    /// it whenever the returned status is `Failed`. Under
    /// [`NumericPolicy::Fail`] no recovery is attempted at all.
    pub fn drive<F, O>(
        &self,
        window: u32,
        was_partial: bool,
        n_local: usize,
        mut kernel: F,
        oracle: O,
    ) -> (PrStats, WindowStatus, Option<Vec<f64>>, u16)
    where
        F: FnMut(bool) -> Result<PrStats, KernelError>,
        O: FnOnce() -> Option<Result<Vec<f64>, KernelError>>,
    {
        let max_iters = self.pr.max_iters;
        let fail_fast = self.pr.guard.policy == NumericPolicy::Fail;
        let settle = |stats: PrStats, via: Option<RecoveryKind>, attempts: u16| {
            let status = match via {
                Some(v) => WindowStatus::Recovered { via: v },
                None => classify_converged(&stats),
            };
            (stats, status, None, attempts)
        };
        // Attempt 1: as configured.
        let mut diagnostic = match isolate(|| kernel(false)) {
            Ok(Ok(stats)) if stats.converged || max_iters == 0 => return settle(stats, None, 1),
            Ok(Ok(_)) => format!("did not converge within {max_iters} iterations"),
            Ok(Err(e)) => e.to_string(),
            Err(msg) => {
                return (
                    PrStats::empty(),
                    WindowStatus::Failed {
                        diagnostic: format!("kernel panicked: {msg}"),
                    },
                    Some(vec![0.0; n_local]),
                    1,
                );
            }
        };
        let mut attempts: u16 = 1;
        let rungs = !fail_fast && (self.recovery.dense_oracle || self.recovery.full_init_retry);
        if rungs {
            // Rungs 2-3 are attributed to the recovery phase; the kernel's
            // own SpMV/check timers keep running inside the span, so phase
            // totals overlap by design (see DESIGN.md §6).
            let _recovery = self.tele.phase(RunPhase::Recovery);
            // Attempt 2: recompute from full initialization (warm starts
            // only — a cold start already was fully initialized).
            if self.recovery.full_init_retry && was_partial {
                attempts = 2;
                self.tele.add("recovery.full_init_retry", 1);
                self.tele.record(TraceEvent::marker(
                    TraceKind::RecoveryFullInitRetry,
                    window,
                    2,
                    0,
                ));
                match isolate(|| kernel(true)) {
                    Ok(Ok(stats)) if stats.converged => {
                        return settle(stats, Some(RecoveryKind::FullInitRetry), 2);
                    }
                    Ok(Ok(_)) => {
                        diagnostic = format!("{diagnostic}; full-init retry did not converge");
                    }
                    Ok(Err(e)) => diagnostic = format!("{diagnostic}; full-init retry: {e}"),
                    Err(msg) => {
                        return (
                            PrStats::empty(),
                            WindowStatus::Failed {
                                diagnostic: format!(
                                    "{diagnostic}; full-init retry panicked: {msg}"
                                ),
                            },
                            Some(vec![0.0; n_local]),
                            2,
                        );
                    }
                }
            }
            // Attempt 3: the dense Eq. 2 oracle, immune to iteration-level
            // faults (it recomputes degrees and does not iterate).
            if self.recovery.dense_oracle {
                attempts = 3;
                self.tele.add("recovery.dense_oracle", 1);
                self.tele.record(TraceEvent::marker(
                    TraceKind::RecoveryDenseOracle,
                    window,
                    3,
                    0,
                ));
                match oracle() {
                    Some(Ok(x)) => {
                        let active = x.iter().filter(|&&v| v > 0.0).count();
                        let stats = PrStats {
                            iterations: 0,
                            converged: true,
                            active_vertices: active,
                            health: PrHealth::default(),
                        };
                        return (
                            stats,
                            WindowStatus::Recovered {
                                via: RecoveryKind::DenseOracle,
                            },
                            Some(x),
                            3,
                        );
                    }
                    Some(Err(e)) => diagnostic = format!("{diagnostic}; dense oracle: {e}"),
                    None => {
                        diagnostic = format!("{diagnostic}; window too large for the dense oracle");
                    }
                }
            }
        }
        (
            PrStats::empty(),
            WindowStatus::Failed { diagnostic },
            Some(vec![0.0; n_local]),
            attempts,
        )
    }

    /// Assembles one window's terminal [`WindowOutput`]: terminal counters
    /// and trace markers, the canonical rank fingerprint, and retention.
    ///
    /// `local_ranks` is the window's final rank vector; with a
    /// local→global `vertex_map` entries are renumbered (multi-window
    /// parts), without one the vector is dense over the global universe
    /// (offline/streaming). Failed windows pass their all-zero override
    /// vector, yielding an empty sparse vector and a zero fingerprint.
    pub fn finalize(
        &self,
        window: usize,
        vertex_map: Option<&[u32]>,
        stats: PrStats,
        local_ranks: &[f64],
        status: WindowStatus,
        attempts: u16,
    ) -> WindowOutput {
        let w32 = window as u32;
        let (kind, counter) = match &status {
            WindowStatus::Ok => (TraceKind::WindowOk, "windows.ok"),
            WindowStatus::Recovered { .. } => (TraceKind::WindowRecovered, "windows.recovered"),
            WindowStatus::Failed { .. } => (TraceKind::WindowFailed, "windows.failed"),
        };
        self.tele.add(counter, 1);
        self.tele
            .observe("window.iterations", stats.iterations as f64);
        self.tele
            .record(TraceEvent::marker(TraceKind::WindowStart, w32, 1, 0));
        self.tele.record(TraceEvent::marker(
            kind,
            w32,
            attempts,
            stats.iterations as u32,
        ));
        let fingerprint = rank_fingerprint(local_ranks, vertex_map);
        // The sparse vector is built whenever either consumer needs it; a
        // checkpoint record always carries it (resume re-seeding needs the
        // ranks even under summary retention).
        let mut sparse =
            (self.ckpt.is_some() || self.retain == RetainMode::Full).then(|| match vertex_map {
                Some(map) => SparseRanks::from_local(local_ranks, map),
                None => SparseRanks::from_dense(local_ranks),
            });
        if let Some(sink) = &self.ckpt {
            let ranks = if self.retain == RetainMode::Full {
                sparse.clone().unwrap_or_default()
            } else {
                sparse.take().unwrap_or_default()
            };
            sink.offer(&CheckpointRecord {
                window,
                status: status.clone(),
                attempts,
                stats,
                fingerprint,
                ranks,
            });
        }
        let ranks = match self.retain {
            RetainMode::Full => sparse,
            RetainMode::Summary => None,
        };
        WindowOutput {
            window,
            stats,
            fingerprint,
            ranks,
            status,
            attempts,
        }
    }
}

/// Classifies a converged kernel attempt from its health record: clean →
/// [`WindowStatus::Ok`], guard interventions → recovered. The one place
/// this judgment is made (the batched SpMM path and the ladder both call
/// it).
pub fn classify_converged(stats: &PrStats) -> WindowStatus {
    if stats.health.is_clean() {
        WindowStatus::Ok
    } else {
        WindowStatus::Recovered {
            via: RecoveryKind::GuardIntervention,
        }
    }
}

/// Runs `f` with panic isolation: a panicking kernel yields
/// `Err(message)` instead of unwinding through the driver, so one poisoned
/// window never takes the run down. This is the workspace's only
/// unwind-catching site.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    // `as_ref` matters: a bare `&p` would unsize-coerce the Box itself
    // into `dyn Any` and every downcast of the payload would miss.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()))
}

/// Best-effort human-readable panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Exact-solve fallback for one window, or `None` when its active set
/// exceeds `max_active` (the dense solve is `O(n³)`).
pub fn oracle_for(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    cfg: &PrConfig,
    max_active: usize,
) -> Option<Result<Vec<f64>, KernelError>> {
    match solve_pagerank_exact(pull, push, range, cfg, max_active) {
        Err(KernelError::ActiveSetTooLarge { .. }) => None,
        r => Some(r),
    }
}

/// [`oracle_for`] for drivers that hold only raw events (offline,
/// streaming): builds the window's temporal CSR(s) on the spot. For
/// asymmetric graphs the pull side is built from the reversed events.
pub fn oracle_from_events(
    num_vertices: usize,
    events: &[Event],
    symmetric: bool,
    range: TimeRange,
    cfg: &PrConfig,
    max_active: usize,
) -> Option<Result<Vec<f64>, KernelError>> {
    let push = TemporalCsr::from_events(num_vertices, events, symmetric);
    if symmetric {
        oracle_for(&push, &push, range, cfg, max_active)
    } else {
        let reversed: Vec<Event> = events.iter().map(|e| Event::new(e.v, e.u, e.t)).collect();
        let pull = TemporalCsr::from_events(num_vertices, &reversed, false);
        oracle_for(&pull, &push, range, cfg, max_active)
    }
}

/// A driver adapter yielding one work item per window.
///
/// `setup` performs the per-window preparation (part lookup, CSR build,
/// streaming update batch) and is the stage [`run_windows`] can overlap
/// with the previous window's kernel; `finalize` takes the item back after
/// compute so buffers can be recycled across windows.
pub trait WindowSource {
    /// The per-window work item handed to the compute stage.
    type Item;

    /// Prepares window `window` and returns its work item.
    fn setup(&mut self, window: usize) -> Self::Item;

    /// Returns `window`'s item after compute (default: drop it). Sources
    /// that recycle buffers (the offline CSR rebuilder) reclaim them here.
    fn finalize(&mut self, window: usize, item: Self::Item) {
        let _ = (window, item);
    }
}

/// Overlapped-setup hook for [`run_windows`]: names the window whose setup
/// may run concurrently with the current window's kernel, and performs it.
///
/// `prefetch` runs on a helper thread while the driver's kernel runs, so it
/// must only touch thread-safe state (lazily-built indexes behind
/// `OnceLock`, a mutex-guarded build cache) and must not emit trace events
/// (wall-clock phase time is fine; deterministic trace order is not
/// negotiable).
pub trait Prefetcher: Sync {
    /// The window whose setup should be prefetched while `window`
    /// computes, or `None` when there is nothing worth overlapping.
    fn next_after(&self, window: usize) -> Option<usize>;

    /// Performs window `window`'s setup ahead of time.
    fn prefetch(&self, window: usize);
}

/// Walks `windows` through the setup → compute → finalize pipeline.
///
/// For every window the source's item is prepared, `compute` produces the
/// terminal [`WindowOutput`], and the item is returned to the source. With
/// a [`Prefetcher`], the next window's setup runs on a scoped helper
/// thread *while* `compute` runs; any time `compute` finishes first is
/// recorded under the `pipeline_stall` phase. Without one, this is a plain
/// in-order loop emitting exactly the same trace as the historical
/// drivers.
pub fn run_windows<S, F>(
    source: &mut S,
    windows: Range<usize>,
    prefetcher: Option<&dyn Prefetcher>,
    tele: &Telemetry,
    mut compute: F,
) -> Vec<WindowOutput>
where
    S: WindowSource,
    F: FnMut(&mut S, usize, &S::Item) -> WindowOutput,
{
    let mut out = Vec::with_capacity(windows.len());
    for w in windows {
        let item = source.setup(w);
        let output = match prefetcher.and_then(|p| p.next_after(w).map(|t| (p, t))) {
            Some((p, t)) => {
                let (_bg, fg, stall) = overlap(|| p.prefetch(t), || compute(source, w, &item));
                tele.add_phase_ns(
                    RunPhase::PipelineStall,
                    u64::try_from(stall.as_nanos()).unwrap_or(u64::MAX),
                );
                tele.add("pipeline.prefetches", 1);
                fg
            }
            None => compute(source, w, &item),
        };
        source.finalize(w, item);
        out.push(output);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_kernel::GuardConfig;

    fn stats_ok() -> PrStats {
        PrStats {
            iterations: 5,
            converged: true,
            active_vertices: 3,
            health: PrHealth::default(),
        }
    }

    fn stats_stalled() -> PrStats {
        PrStats {
            iterations: 50,
            converged: false,
            active_vertices: 3,
            health: PrHealth::default(),
        }
    }

    fn pr() -> PrConfig {
        PrConfig {
            max_iters: 50,
            ..PrConfig::default()
        }
    }

    #[test]
    fn drive_settles_clean_convergence_on_attempt_one() {
        let tele = Telemetry::noop();
        let pr = pr();
        let exec = WindowExecutor::new(&tele, &pr, RecoveryPolicy::ladder(), RetainMode::Full);
        let (stats, status, over, attempts) = exec.drive(
            0,
            false,
            3,
            |_| Ok(stats_ok()),
            || panic!("oracle must not run"),
        );
        assert_eq!(status, WindowStatus::Ok);
        assert!(over.is_none());
        assert_eq!(attempts, 1);
        assert_eq!(stats.iterations, 5);
    }

    #[test]
    fn drive_fail_only_policy_fails_without_rungs() {
        let tele = Telemetry::noop();
        let pr = pr();
        let exec = WindowExecutor::new(&tele, &pr, RecoveryPolicy::fail_only(), RetainMode::Full);
        let (stats, status, over, attempts) = exec.drive(
            0,
            true,
            4,
            |_| Ok(stats_stalled()),
            || panic!("oracle must not run under fail_only"),
        );
        assert!(matches!(status, WindowStatus::Failed { .. }));
        assert_eq!(over.as_deref(), Some(&[0.0; 4][..]));
        assert_eq!(attempts, 1);
        assert_eq!(stats, PrStats::empty());
    }

    #[test]
    fn drive_walks_retry_then_oracle() {
        let tele = Telemetry::enabled();
        let pr = pr();
        let exec = WindowExecutor::new(&tele, &pr, RecoveryPolicy::ladder(), RetainMode::Full);
        let (_, status, over, attempts) = exec.drive(
            7,
            true,
            2,
            |_| Ok(stats_stalled()),
            || Some(Ok(vec![0.5, 0.5])),
        );
        assert_eq!(
            status,
            WindowStatus::Recovered {
                via: RecoveryKind::DenseOracle
            }
        );
        assert_eq!(over, Some(vec![0.5, 0.5]));
        assert_eq!(attempts, 3);
        let report = tele.report();
        assert_eq!(report.counter("recovery.full_init_retry"), 1);
        assert_eq!(report.counter("recovery.dense_oracle"), 1);
    }

    #[test]
    fn drive_numeric_fail_policy_overrides_ladder() {
        let tele = Telemetry::noop();
        let pr = PrConfig {
            guard: GuardConfig {
                policy: NumericPolicy::Fail,
                ..GuardConfig::default()
            },
            ..pr()
        };
        let exec = WindowExecutor::new(&tele, &pr, RecoveryPolicy::ladder(), RetainMode::Full);
        let (_, status, _, attempts) = exec.drive(
            0,
            true,
            1,
            |_| Ok(stats_stalled()),
            || panic!("oracle must not run under NumericPolicy::Fail"),
        );
        assert!(matches!(status, WindowStatus::Failed { .. }));
        assert_eq!(attempts, 1);
    }

    #[test]
    fn drive_isolates_panicking_kernels() {
        let tele = Telemetry::noop();
        let pr = pr();
        let exec = WindowExecutor::new(&tele, &pr, RecoveryPolicy::ladder(), RetainMode::Full);
        let (_, status, over, attempts) = exec.drive(0, false, 2, |_| panic!("injected"), || None);
        match status {
            WindowStatus::Failed { diagnostic } => {
                assert!(diagnostic.contains("panicked"), "{diagnostic}");
                assert!(diagnostic.contains("injected"), "{diagnostic}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(over.as_deref(), Some(&[0.0; 2][..]));
        assert_eq!(attempts, 1);
    }

    #[test]
    fn classify_reads_health() {
        assert_eq!(classify_converged(&stats_ok()), WindowStatus::Ok);
        let mut dirty = stats_ok();
        dirty.health.restarts = 1;
        assert_eq!(
            classify_converged(&dirty),
            WindowStatus::Recovered {
                via: RecoveryKind::GuardIntervention
            }
        );
    }

    #[test]
    fn isolate_returns_value_or_panic_message() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
        assert_eq!(isolate(|| -> u8 { panic!("boom") }), Err("boom".into()));
    }

    struct RecordingSource {
        calls: Vec<String>,
    }

    impl WindowSource for RecordingSource {
        type Item = usize;
        fn setup(&mut self, window: usize) -> usize {
            self.calls.push(format!("setup {window}"));
            window * 10
        }
        fn finalize(&mut self, window: usize, item: usize) {
            self.calls.push(format!("finalize {window} item {item}"));
        }
    }

    fn dummy_output(window: usize) -> WindowOutput {
        WindowOutput {
            window,
            stats: stats_ok(),
            fingerprint: 0.0,
            ranks: None,
            status: WindowStatus::Ok,
            attempts: 1,
        }
    }

    #[test]
    fn run_windows_orders_setup_compute_finalize() {
        let tele = Telemetry::noop();
        let mut src = RecordingSource { calls: Vec::new() };
        let out = run_windows(&mut src, 0..3, None, &tele, |s, w, &item| {
            s.calls.push(format!("compute {w} item {item}"));
            dummy_output(w)
        });
        assert_eq!(out.len(), 3);
        assert_eq!(
            src.calls,
            vec![
                "setup 0",
                "compute 0 item 0",
                "finalize 0 item 0",
                "setup 1",
                "compute 1 item 10",
                "finalize 1 item 10",
                "setup 2",
                "compute 2 item 20",
                "finalize 2 item 20",
            ]
        );
    }

    struct CountingPrefetcher {
        count: usize,
        seen: std::sync::Mutex<Vec<usize>>,
    }

    impl Prefetcher for CountingPrefetcher {
        fn next_after(&self, window: usize) -> Option<usize> {
            (window + 1 < self.count).then_some(window + 1)
        }
        fn prefetch(&self, window: usize) {
            self.seen.lock().unwrap().push(window);
        }
    }

    #[test]
    fn run_windows_prefetches_every_successor_and_times_stalls() {
        let tele = Telemetry::enabled();
        let mut src = RecordingSource { calls: Vec::new() };
        let pf = CountingPrefetcher {
            count: 4,
            seen: std::sync::Mutex::new(Vec::new()),
        };
        let out = run_windows(&mut src, 0..4, Some(&pf), &tele, |_, w, _| dummy_output(w));
        assert_eq!(out.len(), 4);
        assert_eq!(*pf.seen.lock().unwrap(), vec![1, 2, 3]);
        let report = tele.report();
        assert_eq!(report.counter("pipeline.prefetches"), 3);
    }
}
