//! # tempopr-core
//!
//! The postmortem temporal PageRank engine — the primary contribution of
//! Hossain & Saule, *Postmortem Computation of Pagerank on Temporal Graphs*
//! (ICPP '22) — plus the offline baseline it is compared against.
//!
//! Quick start:
//!
//! ```
//! use tempopr_core::{PostmortemConfig, PostmortemEngine};
//! use tempopr_graph::{Event, EventLog, WindowSpec};
//!
//! let events = (0..100u32)
//!     .map(|i| Event::new(i % 10, (i * 3 + 1) % 10, i as i64))
//!     .collect();
//! let log = EventLog::from_unsorted(events, 10).unwrap();
//! let spec = WindowSpec::covering(&log, 30, 10).unwrap();
//! let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default()).unwrap();
//! let out = engine.run();
//! assert_eq!(out.windows.len(), spec.count);
//! let top = out.windows[0].ranks.as_ref().unwrap().top().unwrap();
//! println!("most central vertex of window 0: {} (rank {:.4})", top.0, top.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod advisor;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod observe;
pub mod offline;
pub mod result;
pub mod warmstart;

pub use advisor::{suggest, suggest_for_profile, suggested_multiwindows, WorkloadProfile};
pub use checkpoint::{
    corrupt_manifest, resume_scan, CheckpointError, CheckpointOptions, CheckpointRecord,
    CheckpointSink, CorruptionKind, ManifestHeader, ResumeState,
};
pub use config::{
    FaultPlan, InitMode, KernelKind, ParallelMode, PostmortemConfig, RetainMode, WindowFault,
};
pub use engine::{auto_multiwindows, PostmortemEngine};
pub use error::{EngineError, Phase};
pub use exec::{Prefetcher, RecoveryPolicy, WindowExecutor, WindowSource, MAX_ORACLE_ACTIVE};
pub use observe::TelemetryKernelBridge;
pub use offline::{run_offline, run_offline_durable, run_offline_traced, OfflineConfig};
pub use result::{
    rank_fingerprint, RecoveryKind, RunOutput, SparseRanks, WindowOutput, WindowStatus,
};
