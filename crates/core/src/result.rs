//! Per-window outputs shared by the postmortem, offline, and streaming
//! drivers, in a compact sparse form so hundreds of windows stay cheap.

use tempopr_kernel::PrStats;

/// Ranks of one window over the *global* vertex space, stored sparsely:
/// only active vertices (rank > 0 domain) appear, sorted by vertex id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseRanks {
    /// Global vertex ids, strictly increasing.
    pub vertices: Vec<u32>,
    /// Rank per vertex in `vertices`.
    pub values: Vec<f64>,
}

impl SparseRanks {
    /// Builds from a dense global vector, keeping strictly positive entries.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut vertices = Vec::new();
        let mut values = Vec::new();
        for (v, &x) in dense.iter().enumerate() {
            if x > 0.0 {
                vertices.push(v as u32);
                values.push(x);
            }
        }
        SparseRanks { vertices, values }
    }

    /// Builds from local ranks plus a sorted local→global vertex map,
    /// keeping strictly positive entries. The map being sorted keeps the
    /// output sorted without extra work.
    pub fn from_local(local: &[f64], vertex_map: &[u32]) -> Self {
        debug_assert_eq!(local.len(), vertex_map.len());
        let mut vertices = Vec::new();
        let mut values = Vec::new();
        for (l, &x) in local.iter().enumerate() {
            if x > 0.0 {
                vertices.push(vertex_map[l]);
                values.push(x);
            }
        }
        SparseRanks { vertices, values }
    }

    /// Reconstructs the dense global vector this was built from. Exact,
    /// not approximate: `from_dense` keeps every strictly positive entry
    /// and ranks are non-negative, so absent entries were exactly `0.0`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for (&v, &x) in self.vertices.iter().zip(self.values.iter()) {
            if let Some(slot) = out.get_mut(v as usize) {
                *slot = x;
            }
        }
        out
    }

    /// Reconstructs the part-local vector this was built from via
    /// `from_local` with the same sorted local→global `vertex_map`. Exact
    /// for the same reason as [`SparseRanks::to_dense`]; a single
    /// merge-join since both id sequences are sorted.
    pub fn to_local(&self, vertex_map: &[u32]) -> Vec<f64> {
        let mut out = vec![0.0; vertex_map.len()];
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.vertices.len() && j < vertex_map.len() {
            match self.vertices[i].cmp(&vertex_map[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out[j] = self.values[i];
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Number of ranked (active) vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no vertex is ranked.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The rank of `vertex`, or 0 if unranked.
    pub fn rank_of(&self, vertex: u32) -> f64 {
        match self.vertices.binary_search(&vertex) {
            Ok(i) => self.values[i],
            Err(_) => 0.0,
        }
    }

    /// Sum of all ranks (≈ 1 for a non-empty window).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The highest-ranked vertex, if any.
    pub fn top(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (&v, &x) in self.vertices.iter().zip(self.values.iter()) {
            if best.is_none_or(|(_, bx)| x > bx) {
                best = Some((v, x));
            }
        }
        best
    }

    /// Maximum absolute rank difference against another sparse vector
    /// (over the union of supports).
    pub fn linf_distance(&self, other: &SparseRanks) -> f64 {
        let mut d: f64 = 0.0;
        for (&v, &x) in self.vertices.iter().zip(self.values.iter()) {
            d = d.max((x - other.rank_of(v)).abs());
        }
        for (&v, &x) in other.vertices.iter().zip(other.values.iter()) {
            d = d.max((x - self.rank_of(v)).abs());
        }
        d
    }

    /// Order-sensitive fingerprint: `Σ rank(v) · h(v)` with `h` a SplitMix64
    /// hash mapped to `[0, 1)`. Two models computing the same ranks agree on
    /// the fingerprint regardless of internal vertex numbering. Delegates to
    /// the canonical [`rank_fingerprint`] helper.
    pub fn fingerprint(&self) -> f64 {
        rank_fingerprint(&self.values, Some(&self.vertices))
    }
}

/// Canonical rank fingerprint: `Σ rank(v) · h(v)` over strictly positive
/// entries of a local rank vector, in local-index order. With a
/// local→global `vertex_map` the hash is taken over global ids (so two
/// models with different internal numberings agree); without one the local
/// index *is* the global id (dense vectors). This is the single
/// implementation all three drivers and [`SparseRanks::fingerprint`] share
/// — the summation order is part of the bit-identity contract between the
/// drivers and the golden traces.
pub fn rank_fingerprint(local: &[f64], vertex_map: Option<&[u32]>) -> f64 {
    if let Some(map) = vertex_map {
        debug_assert_eq!(local.len(), map.len());
    }
    local
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x > 0.0)
        .map(|(l, &x)| {
            let v = vertex_map.map_or(l as u32, |m| m[l]);
            x * hash01(v)
        })
        .sum()
}

/// SplitMix64-based hash of a vertex id into `[0, 1)`.
pub fn hash01(v: u32) -> f64 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// How the engine recovered a window that did not complete cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The kernel's in-iteration guards intervened (renormalization or
    /// uniform restart) and the window still converged.
    GuardIntervention,
    /// A warm-started window was recomputed from full (uniform)
    /// initialization.
    FullInitRetry,
    /// The window was solved exactly by the dense Eq. 2 oracle.
    DenseOracle,
}

impl std::fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecoveryKind::GuardIntervention => "guard intervention",
            RecoveryKind::FullInitRetry => "full-init retry",
            RecoveryKind::DenseOracle => "dense oracle",
        };
        f.write_str(s)
    }
}

/// Terminal state of one window's computation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WindowStatus {
    /// Converged with no intervention of any kind.
    #[default]
    Ok,
    /// Valid ranks were produced, but only after recovery.
    Recovered {
        /// What saved the window.
        via: RecoveryKind,
    },
    /// No valid ranks for this window; the rest of the run is intact.
    Failed {
        /// Human-readable description of what went wrong.
        diagnostic: String,
    },
}

impl WindowStatus {
    /// Whether valid ranks were produced (possibly after recovery).
    pub fn is_valid(&self) -> bool {
        !matches!(self, WindowStatus::Failed { .. })
    }
}

/// One window's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutput {
    /// Global window index.
    pub window: usize,
    /// PageRank statistics.
    pub stats: PrStats,
    /// Rank fingerprint (always present, cheap; 0 for failed windows).
    pub fingerprint: f64,
    /// Full sparse ranks when retention is `Full` (empty for failed
    /// windows).
    pub ranks: Option<SparseRanks>,
    /// Terminal state: ok, recovered, or failed.
    pub status: WindowStatus,
    /// Highest recovery rung reached: 1 = the configured attempt only,
    /// 2 = full-init retry, 3 = dense oracle. Failed windows report the
    /// last rung tried, so a failed-then-recovered window is
    /// distinguishable from a first-attempt success in exports even though
    /// `stats` only describes the final attempt (the per-attempt residual
    /// history lives in the run trace).
    pub attempts: u16,
}

/// Outcome of a whole run: one output per window, in window order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunOutput {
    /// Per-window outputs, sorted by window index.
    pub windows: Vec<WindowOutput>,
    /// True when at least one window failed: the run completed, but its
    /// output is incomplete (the degraded-run contract — see DESIGN.md).
    pub degraded: bool,
}

impl RunOutput {
    /// Total PageRank iterations across all windows — the work metric the
    /// partial-initialization experiment (Fig. 6) reports on.
    pub fn total_iterations(&self) -> usize {
        self.windows.iter().map(|w| w.stats.iterations).sum()
    }

    /// Window indices that produced no valid ranks.
    pub fn failed_windows(&self) -> Vec<usize> {
        self.windows
            .iter()
            .filter(|w| !w.status.is_valid())
            .map(|w| w.window)
            .collect()
    }

    /// Recomputes the `degraded` flag from per-window statuses.
    /// Recomputes the `degraded` flag from the per-window statuses. Run
    /// drivers call this once after assembling `windows`.
    pub fn finalize_status(&mut self) {
        self.degraded = self.windows.iter().any(|w| !w.status.is_valid());
    }

    /// One-line per-status summary: `"N ok, N recovered, N failed"` plus
    /// the failed window ids when any.
    pub fn status_summary(&self) -> String {
        let mut ok = 0usize;
        let mut recovered = 0usize;
        let mut failed = Vec::new();
        for w in &self.windows {
            match &w.status {
                WindowStatus::Ok => ok += 1,
                WindowStatus::Recovered { .. } => recovered += 1,
                WindowStatus::Failed { .. } => failed.push(w.window),
            }
        }
        if failed.is_empty() {
            format!("{ok} ok, {recovered} recovered, 0 failed")
        } else {
            format!(
                "{ok} ok, {recovered} recovered, {} failed (windows {failed:?})",
                failed.len()
            )
        }
    }

    /// Panics unless windows are exactly `0..n` in order.
    pub fn assert_complete(&self, n: usize) {
        assert_eq!(self.windows.len(), n, "missing window outputs");
        for (i, w) in self.windows.iter().enumerate() {
            assert_eq!(w.window, i, "window outputs out of order");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_keeps_positive_entries_sorted() {
        let s = SparseRanks::from_dense(&[0.0, 0.5, 0.0, 0.25, 0.25]);
        assert_eq!(s.vertices, vec![1, 3, 4]);
        assert_eq!(s.values, vec![0.5, 0.25, 0.25]);
        assert_eq!(s.len(), 3);
        assert!((s.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_local_maps_to_global() {
        let s = SparseRanks::from_local(&[0.4, 0.0, 0.6], &[2, 5, 9]);
        assert_eq!(s.vertices, vec![2, 9]);
        assert_eq!(s.rank_of(9), 0.6);
        assert_eq!(s.rank_of(5), 0.0);
        assert_eq!(s.rank_of(7), 0.0);
    }

    #[test]
    fn top_finds_max() {
        let s = SparseRanks::from_dense(&[0.1, 0.7, 0.2]);
        assert_eq!(s.top(), Some((1, 0.7)));
        assert_eq!(SparseRanks::default().top(), None);
    }

    #[test]
    fn linf_distance_over_union_support() {
        let a = SparseRanks::from_dense(&[0.5, 0.5, 0.0]);
        let b = SparseRanks::from_dense(&[0.5, 0.0, 0.5]);
        assert!((a.linf_distance(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.linf_distance(&a), 0.0);
    }

    #[test]
    fn fingerprint_is_numbering_independent() {
        // Same global ranks expressed via different local numberings.
        let a = SparseRanks::from_local(&[0.3, 0.7], &[4, 8]);
        let b = SparseRanks::from_dense(&{
            let mut d = vec![0.0; 9];
            d[4] = 0.3;
            d[8] = 0.7;
            d
        });
        assert!((a.fingerprint() - b.fingerprint()).abs() < 1e-15);
        // And differs when ranks differ.
        let c = SparseRanks::from_local(&[0.7, 0.3], &[4, 8]);
        assert!((a.fingerprint() - c.fingerprint()).abs() > 1e-6);
    }

    #[test]
    fn rank_fingerprint_matches_sparse_forms() {
        let local = [0.3, 0.0, 0.7];
        let map = [4u32, 6, 8];
        let via_helper = rank_fingerprint(&local, Some(&map));
        let via_sparse = SparseRanks::from_local(&local, &map).fingerprint();
        assert_eq!(via_helper.to_bits(), via_sparse.to_bits());

        let dense = [0.0, 0.25, 0.0, 0.75];
        let via_dense_helper = rank_fingerprint(&dense, None);
        let via_dense_sparse = SparseRanks::from_dense(&dense).fingerprint();
        assert_eq!(via_dense_helper.to_bits(), via_dense_sparse.to_bits());
    }

    #[test]
    fn hash01_in_unit_interval() {
        for v in [0u32, 1, 17, u32::MAX] {
            let h = hash01(v);
            assert!((0.0..1.0).contains(&h));
        }
        assert_ne!(hash01(1), hash01(2));
    }

    #[test]
    fn run_output_totals_and_completeness() {
        use tempopr_kernel::{PrHealth, PrStats};
        let mk = |w, it| WindowOutput {
            window: w,
            stats: PrStats {
                iterations: it,
                converged: true,
                active_vertices: 1,
                health: PrHealth::default(),
            },
            fingerprint: 0.0,
            ranks: None,
            status: WindowStatus::Ok,
            attempts: 1,
        };
        let out = RunOutput {
            windows: vec![mk(0, 3), mk(1, 5)],
            ..Default::default()
        };
        assert_eq!(out.total_iterations(), 8);
        out.assert_complete(2);
        assert_eq!(out.status_summary(), "2 ok, 0 recovered, 0 failed");
        assert!(out.failed_windows().is_empty());
    }

    #[test]
    fn status_summary_reports_failures() {
        use tempopr_kernel::PrStats;
        let mk = |w, status| WindowOutput {
            window: w,
            stats: PrStats::empty(),
            fingerprint: 0.0,
            ranks: None,
            status,
            attempts: 1,
        };
        let mut out = RunOutput {
            windows: vec![
                mk(0, WindowStatus::Ok),
                mk(
                    1,
                    WindowStatus::Recovered {
                        via: RecoveryKind::DenseOracle,
                    },
                ),
                mk(
                    2,
                    WindowStatus::Failed {
                        diagnostic: "kernel panicked".into(),
                    },
                ),
            ],
            ..Default::default()
        };
        out.finalize_status();
        assert!(out.degraded);
        assert_eq!(out.failed_windows(), vec![2]);
        let s = out.status_summary();
        assert!(s.contains("1 ok") && s.contains("1 recovered"), "{s}");
        assert!(s.contains("windows [2]"), "{s}");
    }

    #[test]
    #[should_panic(expected = "missing window outputs")]
    fn incomplete_output_panics() {
        RunOutput::default().assert_complete(1);
    }
}
