//! Cross-boundary warm-start seeding ([`crate::config::InitMode::Warm`]).
//!
//! Partial initialization (Eq. 4) only ever reuses ranks *inside* one
//! multi-window part: the previous vector lives in the part's local vertex
//! space, and local numberings differ between parts. This module carries a
//! converged rank vector across a part boundary by remapping it through the
//! two parts' sorted local→global vertex maps, so the Eq. 4 machinery in
//! [`tempopr_kernel::pagerank::initialize`] (shared vertices keep scaled mass,
//! newcomers take the uniform share) applies across the boundary too.
//!
//! The carry is a *seed*, never an answer: the kernel still iterates to its
//! configured tolerance, so ranks are unchanged up to the usual
//! starting-point noise (the warm-start parity tests bound it). A carry
//! with no surviving vertices or with vanished rank mass is rejected here
//! — the caller falls back to full initialization instead of letting a
//! zero denominator reach the renormalization.

/// What a successful carry brought across the boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarryStats {
    /// Vertices of the previous vector that exist in the new part.
    pub shared: usize,
    /// Total rank mass those vertices carried.
    pub mass: f64,
}

/// Rank mass below which a carry is treated as degenerate: seeding from a
/// distribution this close to zero would amplify floating-point noise in
/// the renormalization instead of saving iterations.
pub const MIN_CARRY_MASS: f64 = 1e-12;

/// Remaps `prev_ranks` (local to the part described by `prev_map`) into
/// the vertex space of `new_map`, writing into `out` (resized to
/// `new_map.len()`, zero where a vertex has no carried rank).
///
/// Both maps are sorted local→global vertex maps
/// ([`tempopr_graph::MultiWindowGraph::vertex_map`]), so the remap is a
/// single merge-join: `O(|V_prev| + |V_new|)`. Only finite, strictly
/// positive ranks are carried — a poisoned entry (NaN/Inf from a faulted
/// kernel) is dropped rather than propagated.
///
/// Returns `None` — and leaves `out` unusable as a seed — when the carry
/// is degenerate: the vertex sets are disjoint, or the carried mass is
/// below [`MIN_CARRY_MASS`]. Callers must fall back to full (uniform)
/// initialization in that case.
pub fn carry_ranks(
    prev_map: &[u32],
    prev_ranks: &[f64],
    new_map: &[u32],
    out: &mut Vec<f64>,
) -> Option<CarryStats> {
    debug_assert_eq!(prev_map.len(), prev_ranks.len());
    out.clear();
    out.resize(new_map.len(), 0.0);
    let mut shared = 0usize;
    let mut mass = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < prev_map.len() && j < new_map.len() {
        match prev_map[i].cmp(&new_map[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let r = prev_ranks[i];
                if r.is_finite() && r > 0.0 {
                    out[j] = r;
                    shared += 1;
                    mass += r;
                }
                i += 1;
                j += 1;
            }
        }
    }
    (shared > 0 && mass > MIN_CARRY_MASS).then_some(CarryStats { shared, mass })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_remaps_shared_vertices() {
        // Prev part holds globals {1,3,5,7}, new part {3,4,5,9}.
        let prev_map = [1u32, 3, 5, 7];
        let prev = [0.1, 0.2, 0.3, 0.4];
        let new_map = [3u32, 4, 5, 9];
        let mut out = Vec::new();
        let stats = carry_ranks(&prev_map, &prev, &new_map, &mut out).unwrap();
        assert_eq!(out, vec![0.2, 0.0, 0.3, 0.0]);
        assert_eq!(stats.shared, 2);
        assert!((stats.mass - 0.5).abs() < 1e-15);
    }

    #[test]
    fn disjoint_vertex_sets_are_degenerate() {
        let mut out = Vec::new();
        assert_eq!(
            carry_ranks(&[0, 1, 2], &[0.3, 0.3, 0.4], &[5, 6, 7], &mut out),
            None
        );
    }

    #[test]
    fn vanished_mass_is_degenerate() {
        // Shared vertices exist but carry (essentially) no rank: the old
        // zero-denominator path, now rejected before renormalization.
        let mut out = Vec::new();
        assert_eq!(carry_ranks(&[0, 1], &[0.0, 1e-15], &[0, 1], &mut out), None);
    }

    #[test]
    fn poisoned_entries_are_dropped_not_propagated() {
        let prev = [f64::NAN, 0.5, f64::INFINITY];
        let mut out = Vec::new();
        let stats = carry_ranks(&[0, 1, 2], &prev, &[0, 1, 2], &mut out).unwrap();
        assert_eq!(stats.shared, 1);
        assert_eq!(out, vec![0.0, 0.5, 0.0]);
        assert!(out.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn empty_inputs_are_degenerate() {
        let mut out = Vec::new();
        assert_eq!(carry_ranks(&[], &[], &[0, 1], &mut out), None);
        assert_eq!(out, vec![0.0, 0.0]);
        assert_eq!(carry_ranks(&[0], &[1.0], &[], &mut out), None);
    }
}
