//! The bridge between the kernel crate's observation hooks and a
//! [`Telemetry`] sink.
//!
//! The kernel crate stays dependency-free by defining only the
//! [`tempopr_kernel::KernelObserver`] trait; this module supplies the one
//! implementation the drivers use. One bridge is constructed per kernel
//! *attempt* — the kernel closures handed to
//! [`crate::exec::WindowExecutor::drive`] build a fresh one each time the
//! executor re-invokes them — so every forwarded trace event carries the
//! recovery-attempt label (1 = configured run, 2 = full-init retry)
//! without interior mutability; the bridge itself is a pair of plain
//! references and is trivially `Sync` for the scheduler's thread pool.

use tempopr_kernel::KernelObserver;
use tempopr_telemetry::{Phase, Telemetry, TraceEvent, TraceKind};

/// Forwards kernel observations into a telemetry sink, labeling trace
/// events with a fixed recovery-attempt number.
pub struct TelemetryKernelBridge<'a> {
    tele: &'a Telemetry,
    attempt: u16,
}

impl<'a> TelemetryKernelBridge<'a> {
    /// A bridge recording into `tele` under recovery attempt `attempt`.
    pub fn new(tele: &'a Telemetry, attempt: u16) -> Self {
        TelemetryKernelBridge { tele, attempt }
    }
}

impl KernelObserver for TelemetryKernelBridge<'_> {
    fn on_setup(&self, window: u32, active_vertices: usize, ns: u64) {
        self.tele.add_phase_ns(Phase::WindowSetup, ns);
        self.tele
            .observe("setup.active_vertices", active_vertices as f64);
        self.tele.record(TraceEvent::marker(
            TraceKind::Setup,
            window,
            self.attempt,
            0,
        ));
    }

    fn on_iteration(
        &self,
        window: u32,
        iteration: u32,
        residual: f64,
        mass: f64,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        self.tele.add_phase_ns(Phase::Spmv, spmv_ns);
        self.tele.add_phase_ns(Phase::ConvergenceCheck, check_ns);
        self.tele.add("iterations.total", 1);
        self.tele.record(TraceEvent::iteration(
            window,
            self.attempt,
            iteration,
            residual,
            mass,
        ));
    }

    fn on_guard(&self, window: u32, iteration: u32, restart: bool) {
        let (kind, counter) = if restart {
            (TraceKind::GuardRestart, "guard.restart")
        } else {
            (TraceKind::GuardRenormalize, "guard.renormalize")
        };
        self.tele.add(counter, 1);
        self.tele
            .record(TraceEvent::marker(kind, window, self.attempt, iteration));
    }

    fn on_batch_round(
        &self,
        _iteration: u32,
        lanes_live: u32,
        lanes_total: u32,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        self.tele.add_phase_ns(Phase::Spmv, spmv_ns);
        self.tele.add_phase_ns(Phase::ConvergenceCheck, check_ns);
        self.tele.add("spmm.rounds", 1);
        self.tele.observe("spmm.lanes_live", f64::from(lanes_live));
        self.tele.set_gauge("spmm.lanes", f64::from(lanes_total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_forwards_into_sink() {
        let tele = Telemetry::enabled();
        let b = TelemetryKernelBridge::new(&tele, 1);
        b.on_setup(3, 17, 500);
        b.on_iteration(3, 1, 0.25, 1.0, 100, 50);
        b.on_guard(3, 1, true);
        b.on_batch_round(1, 2, 4, 10, 5);
        let report = tele.report();
        assert_eq!(report.counter("iterations.total"), 1);
        assert_eq!(report.counter("guard.restart"), 1);
        assert_eq!(report.counter("spmm.rounds"), 1);
        assert_eq!(report.phase_ns(Phase::WindowSetup), 500);
        assert_eq!(report.phase_ns(Phase::Spmv), 110);
        assert_eq!(report.phase_ns(Phase::ConvergenceCheck), 55);
        let trace = tele.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].kind, TraceKind::Setup);
        assert_eq!(trace.events[1].kind, TraceKind::Iteration);
        assert_eq!(trace.events[2].kind, TraceKind::GuardRestart);
        assert!(trace.events.iter().all(|e| e.attempt == 1));
    }

    #[test]
    fn bridge_on_noop_sink_records_nothing() {
        let tele = Telemetry::noop();
        let b = TelemetryKernelBridge::new(&tele, 1);
        b.on_iteration(0, 1, 0.5, 1.0, 10, 10);
        assert!(tele.trace().is_empty());
    }
}
