//! The bridge between the kernel crate's observation hooks and a
//! [`Telemetry`] sink.
//!
//! The kernel crate stays dependency-free by defining only the
//! [`tempopr_kernel::KernelObserver`] trait; this module supplies the one
//! implementation the drivers use. One bridge is constructed per kernel
//! *attempt* — the kernel closures handed to
//! [`crate::exec::WindowExecutor::drive`] build a fresh one each time the
//! executor re-invokes them — so every forwarded trace event carries the
//! recovery-attempt label (1 = configured run, 2 = full-init retry)
//! without interior mutability; the bridge itself is a pair of plain
//! references and is trivially `Sync` for the scheduler's thread pool.

use tempopr_kernel::KernelObserver;
use tempopr_telemetry::{Phase, Telemetry, TraceEvent, TraceKind};

/// Forwards kernel observations into a telemetry sink, labeling trace
/// events with a fixed recovery-attempt number.
pub struct TelemetryKernelBridge<'a> {
    tele: &'a Telemetry,
    attempt: u16,
}

impl<'a> TelemetryKernelBridge<'a> {
    /// A bridge recording into `tele` under recovery attempt `attempt`.
    pub fn new(tele: &'a Telemetry, attempt: u16) -> Self {
        TelemetryKernelBridge { tele, attempt }
    }
}

impl KernelObserver for TelemetryKernelBridge<'_> {
    fn on_setup(&self, window: u32, active_vertices: usize, ns: u64) {
        self.tele.add_phase_ns(Phase::WindowSetup, ns);
        self.tele
            .observe("setup.active_vertices", active_vertices as f64);
        self.tele.record(TraceEvent::marker(
            TraceKind::Setup,
            window,
            self.attempt,
            0,
        ));
    }

    fn on_iteration(
        &self,
        window: u32,
        iteration: u32,
        residual: f64,
        mass: f64,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        self.tele.add_phase_ns(Phase::Spmv, spmv_ns);
        self.tele.add_phase_ns(Phase::ConvergenceCheck, check_ns);
        self.tele.add("iterations.total", 1);
        self.tele.record(TraceEvent::iteration(
            window,
            self.attempt,
            iteration,
            residual,
            mass,
        ));
    }

    fn on_guard(&self, window: u32, iteration: u32, restart: bool) {
        let (kind, counter) = if restart {
            (TraceKind::GuardRestart, "guard.restart")
        } else {
            (TraceKind::GuardRenormalize, "guard.renormalize")
        };
        self.tele.add(counter, 1);
        self.tele
            .record(TraceEvent::marker(kind, window, self.attempt, iteration));
    }

    fn on_batch_round(
        &self,
        _iteration: u32,
        lanes_live: u32,
        lanes_total: u32,
        edges: u64,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        self.tele.add_phase_ns(Phase::Spmv, spmv_ns);
        self.tele.add_phase_ns(Phase::ConvergenceCheck, check_ns);
        self.tele.add("spmm.rounds", 1);
        self.tele.add("spmm.edges_processed", edges);
        self.tele.observe("spmm.lanes_live", f64::from(lanes_live));
        self.tele.set_gauge("spmm.lanes", f64::from(lanes_total));
    }

    fn on_batch_dispatch(&self, isa: &'static str, lanes: u32) {
        // Counters and gauges never enter the deterministic trace
        // projection, so this machine-dependent value cannot perturb the
        // golden-trace tests.
        let code = match isa {
            "bitwalk" => 0.0,
            "scalar" => 1.0,
            _ => 2.0, // avx2 (and any wider future ISA)
        };
        self.tele.set_gauge("kernel.isa", code);
        match isa {
            "bitwalk" => self.tele.add("kernel.isa.bitwalk", 1),
            "scalar" => self.tele.add("kernel.isa.scalar", 1),
            _ => self.tele.add("kernel.isa.avx2", 1),
        }
        self.tele.observe("spmm.batch_lanes", f64::from(lanes));
    }

    fn on_batch_compaction(&self, from_lanes: u32, to_lanes: u32) {
        self.tele.add("spmm.compactions", 1);
        self.tele.add(
            "spmm.lanes_compacted",
            u64::from(from_lanes.saturating_sub(to_lanes)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_forwards_into_sink() {
        let tele = Telemetry::enabled();
        let b = TelemetryKernelBridge::new(&tele, 1);
        b.on_setup(3, 17, 500);
        b.on_iteration(3, 1, 0.25, 1.0, 100, 50);
        b.on_guard(3, 1, true);
        b.on_batch_round(1, 2, 4, 120, 10, 5);
        b.on_batch_dispatch("avx2", 4);
        b.on_batch_compaction(4, 1);
        let report = tele.report();
        assert_eq!(report.counter("iterations.total"), 1);
        assert_eq!(report.counter("guard.restart"), 1);
        assert_eq!(report.counter("spmm.rounds"), 1);
        assert_eq!(report.counter("spmm.edges_processed"), 120);
        assert_eq!(report.counter("kernel.isa.avx2"), 1);
        assert_eq!(report.counter("spmm.compactions"), 1);
        assert_eq!(report.counter("spmm.lanes_compacted"), 3);
        assert_eq!(report.phase_ns(Phase::WindowSetup), 500);
        assert_eq!(report.phase_ns(Phase::Spmv), 110);
        assert_eq!(report.phase_ns(Phase::ConvergenceCheck), 55);
        let trace = tele.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].kind, TraceKind::Setup);
        assert_eq!(trace.events[1].kind, TraceKind::Iteration);
        assert_eq!(trace.events[2].kind, TraceKind::GuardRestart);
        assert!(trace.events.iter().all(|e| e.attempt == 1));
    }

    #[test]
    fn bridge_on_noop_sink_records_nothing() {
        let tele = Telemetry::noop();
        let b = TelemetryKernelBridge::new(&tele, 1);
        b.on_iteration(0, 1, 0.5, 1.0, 10, 10);
        assert!(tele.trace().is_empty());
    }
}
