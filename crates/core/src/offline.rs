//! The *offline* execution model (paper §3.3.1): rebuild a fresh static
//! graph for every window and run PageRank from scratch.
//!
//! The model's defining property is that its cost is dominated by repeated
//! graph construction, but it is massively parallel across windows (every
//! window is independent — no partial initialization is possible). The
//! builder here is the natural optimized one: the time-sorted event log is
//! sliced by binary search, then deduplicated into a CSR.

use crate::config::RetainMode;
use crate::error::EngineError;
use crate::observe::TelemetryKernelBridge;
use crate::result::{RunOutput, SparseRanks, WindowOutput, WindowStatus};
use std::panic::{catch_unwind, AssertUnwindSafe};
use tempopr_graph::{Csr, EventLog, WindowSpec};
use tempopr_kernel::{
    pagerank_csr_obs, thread_pool, Init, Obs, PrConfig, PrStats, PrWorkspace, Scheduler,
};
use tempopr_telemetry::{Phase as RunPhase, Telemetry, TraceEvent, TraceKind};

/// Configuration of an offline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineConfig {
    /// Symmetrize events when building each window's graph.
    pub symmetric: bool,
    /// PageRank parameters.
    pub pr: PrConfig,
    /// Process windows in parallel (the model's natural parallelism).
    pub parallel_windows: bool,
    /// Scheduler for the across-window loop (and, when
    /// `parallel_windows` is false, for inside-PageRank parallelism).
    pub scheduler: Scheduler,
    /// Worker threads (0 = rayon default).
    pub threads: usize,
    /// Output retention.
    pub retain: RetainMode,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            symmetric: true,
            pr: PrConfig::default(),
            parallel_windows: true,
            scheduler: Scheduler::default(),
            threads: 0,
            retain: RetainMode::Full,
        }
    }
}

/// Runs the offline model: for each window, slice the event log, build a
/// fresh CSR over the full vertex universe, and run uniformly-initialized
/// PageRank.
///
/// ```
/// use tempopr_core::{run_offline, OfflineConfig};
/// use tempopr_graph::{Event, EventLog, WindowSpec};
/// let log = EventLog::from_unsorted(
///     (0..60u32).map(|i| Event::new(i % 8, (i * 3 + 1) % 8, i as i64)).collect(),
///     8,
/// ).unwrap();
/// let spec = WindowSpec::covering(&log, 20, 10).unwrap();
/// let out = run_offline(&log, spec, &OfflineConfig::default()).unwrap();
/// assert_eq!(out.windows.len(), spec.count);
/// ```
///
/// Errors only on setup (an unbuildable thread pool); per-window kernel
/// failures are contained as [`WindowStatus::Failed`] entries and set the
/// output's `degraded` flag, exactly like the postmortem engine.
pub fn run_offline(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
) -> Result<RunOutput, EngineError> {
    run_offline_traced(log, spec, cfg, &Telemetry::noop())
}

/// [`run_offline`] recording into a telemetry sink: per-window CSR builds
/// count toward the build phase (the offline model's defining cost),
/// kernels report SpMV/check time and the convergence trace, and CSR sizes
/// land in the `memory.csr_bytes` histogram. A noop sink is exactly
/// [`run_offline`].
pub fn run_offline_traced(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    let inner = || run_offline_inner(log, spec, cfg, tele);
    let mut out = if cfg.threads > 0 {
        thread_pool(cfg.threads)?.install(inner)
    } else {
        inner()
    };
    out.windows.sort_by_key(|w| w.window);
    out.finalize_status();
    out.assert_complete(spec.count);
    tele.add("windows.total", out.windows.len() as u64);
    tele.set_gauge("run.degraded", f64::from(u8::from(out.degraded)));
    Ok(out)
}

fn run_offline_inner(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    tele: &Telemetry,
) -> RunOutput {
    let windows = if cfg.parallel_windows {
        cfg.scheduler.map_reduce_range(
            spec.count,
            Vec::new(),
            |r| {
                let mut ws = PrWorkspace::default();
                r.map(|w| offline_window(log, spec, cfg, w, None, &mut ws, tele))
                    .collect()
            },
            |mut a: Vec<WindowOutput>, mut b| {
                a.append(&mut b);
                a
            },
        )
    } else {
        let mut ws = PrWorkspace::default();
        (0..spec.count)
            .map(|w| offline_window(log, spec, cfg, w, Some(&cfg.scheduler), &mut ws, tele))
            .collect()
    };
    RunOutput {
        windows,
        degraded: false, // recomputed by finalize_status
    }
}

fn offline_window(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    w: usize,
    inner: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    tele: &Telemetry,
) -> WindowOutput {
    let range = spec.window(w);
    let build = tele.phase(RunPhase::Build);
    let events = log.slice_by_time(range.start, range.end);
    // The per-window construction the offline model pays for: a fresh CSR
    // over the whole universe.
    let csr = Csr::from_events(log.num_vertices(), events, cfg.symmetric);
    drop(build);
    tele.observe("memory.csr_bytes", csr.memory_bytes() as f64);
    let bridge = TelemetryKernelBridge::new(tele, 1);
    let obs = if tele.is_enabled() {
        Obs::new(&bridge, w as u32)
    } else {
        Obs::off()
    };
    // Offline windows always start from uniform init, so the engine's
    // full-init retry is meaningless here; a kernel error, panic, or
    // non-convergence simply fails the window (the run continues and the
    // output is flagged degraded).
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if cfg.symmetric {
            pagerank_csr_obs(&csr, &csr, Init::Uniform, &cfg.pr, inner, ws, obs)
        } else {
            let pull = csr.transpose();
            pagerank_csr_obs(&pull, &csr, Init::Uniform, &cfg.pr, inner, ws, obs)
        }
    }));
    let (stats, status) = match attempt {
        Ok(Ok(stats)) if stats.converged || cfg.pr.max_iters == 0 => {
            let status = if stats.health.is_clean() {
                WindowStatus::Ok
            } else {
                WindowStatus::Recovered {
                    via: crate::result::RecoveryKind::GuardIntervention,
                }
            };
            (stats, status)
        }
        Ok(Ok(stats)) => (
            stats,
            WindowStatus::Failed {
                diagnostic: format!("did not converge within {} iterations", cfg.pr.max_iters),
            },
        ),
        Ok(Err(e)) => (
            PrStats::empty(),
            WindowStatus::Failed {
                diagnostic: e.to_string(),
            },
        ),
        Err(_) => {
            // The workspace may hold partial state; discard it.
            *ws = PrWorkspace::default();
            (
                PrStats::empty(),
                WindowStatus::Failed {
                    diagnostic: "kernel panicked".to_string(),
                },
            )
        }
    };
    let (kind, counter) = match &status {
        WindowStatus::Ok => (TraceKind::WindowOk, "windows.ok"),
        WindowStatus::Recovered { .. } => (TraceKind::WindowRecovered, "windows.recovered"),
        WindowStatus::Failed { .. } => (TraceKind::WindowFailed, "windows.failed"),
    };
    tele.add(counter, 1);
    tele.observe("window.iterations", stats.iterations as f64);
    tele.record(TraceEvent::marker(TraceKind::WindowStart, w as u32, 1, 0));
    tele.record(TraceEvent::marker(
        kind,
        w as u32,
        1,
        stats.iterations as u32,
    ));
    let sparse = if status.is_valid() {
        SparseRanks::from_dense(ws.ranks())
    } else {
        SparseRanks::from_dense(&[])
    };
    let fingerprint = sparse.fingerprint();
    WindowOutput {
        window: w,
        stats,
        fingerprint,
        status,
        ranks: match cfg.retain {
            RetainMode::Full => Some(sparse),
            RetainMode::Summary => None,
        },
        attempts: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..300u32 {
            let u = (i * 11 + 1) % 24;
            let v = (i * 5 + 7) % 24;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 24).unwrap()
    }

    fn tight() -> OfflineConfig {
        OfflineConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn offline_matches_reference() {
        use tempopr_kernel::reference_pagerank;
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(&log, spec, &tight()).unwrap();
        for w in 0..spec.count {
            let range = spec.window(w);
            let mut edges = Vec::new();
            for e in log.events() {
                if range.contains(e.t) {
                    edges.push((e.u, e.v));
                    edges.push((e.v, e.u));
                }
            }
            let dense = reference_pagerank(24, &edges, &tight().pr);
            let expect = SparseRanks::from_dense(&dense);
            let got = out.windows[w].ranks.as_ref().unwrap();
            assert!(got.linf_distance(&expect) < 1e-8, "window {w}");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let par = run_offline(&log, spec, &tight()).unwrap();
        let seq = run_offline(
            &log,
            spec,
            &OfflineConfig {
                parallel_windows: false,
                ..tight()
            },
        )
        .unwrap();
        for (a, b) in par.windows.iter().zip(seq.windows.iter()) {
            assert!((a.fingerprint - b.fingerprint).abs() < 1e-9);
            assert_eq!(a.stats.active_vertices, b.stats.active_vertices);
        }
    }

    #[test]
    fn summary_retention_has_no_vectors() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(
            &log,
            spec,
            &OfflineConfig {
                retain: RetainMode::Summary,
                ..tight()
            },
        )
        .unwrap();
        assert!(out.windows.iter().all(|w| w.ranks.is_none()));
        assert!(out.windows.iter().any(|w| w.fingerprint != 0.0));
    }

    #[test]
    fn explicit_threads_work() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(
            &log,
            spec,
            &OfflineConfig {
                threads: 2,
                ..tight()
            },
        )
        .unwrap();
        assert_eq!(out.windows.len(), spec.count);
    }
}
