//! The *offline* execution model (paper §3.3.1): rebuild a fresh static
//! graph for every window and run PageRank from scratch.
//!
//! The model's defining property is that its cost is dominated by repeated
//! graph construction, but it is massively parallel across windows (every
//! window is independent — no partial initialization is possible). The
//! builder here is the natural optimized one: the time-sorted event log is
//! sliced by binary search, then deduplicated into a CSR — rebuilt *in
//! place* into the previous window's buffers, so the steady-state walk
//! allocates nothing per window.
//!
//! The per-window lifecycle (setup → kernel → terminal status → output)
//! runs on the shared execution layer ([`crate::exec`]): the
//! [`WindowSource`] here is the CSR rebuilder, and the in-order walk can
//! overlap the next window's CSR construction with the current kernel when
//! [`OfflineConfig::pipeline`] is set.

use crate::checkpoint::{self, CheckpointOptions, CheckpointRecord, CheckpointSink};
use crate::config::{FaultPlan, RetainMode};
use crate::error::EngineError;
use crate::exec::{
    oracle_from_events, run_windows, Prefetcher, RecoveryPolicy, WindowExecutor, WindowSource,
};
use crate::observe::TelemetryKernelBridge;
use crate::result::{RunOutput, WindowOutput};
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use tempopr_graph::{Csr, EventLog, WindowSpec};
use tempopr_kernel::{pagerank_csr_obs, thread_pool, Init, Obs, PrConfig, PrWorkspace, Scheduler};
use tempopr_telemetry::{Phase as RunPhase, Telemetry};

/// Configuration of an offline run.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineConfig {
    /// Symmetrize events when building each window's graph.
    pub symmetric: bool,
    /// PageRank parameters.
    pub pr: PrConfig,
    /// Process windows in parallel (the model's natural parallelism).
    pub parallel_windows: bool,
    /// Scheduler for the across-window loop (and, when
    /// `parallel_windows` is false, for inside-PageRank parallelism).
    pub scheduler: Scheduler,
    /// Worker threads (0 = rayon default).
    pub threads: usize,
    /// Output retention.
    pub retain: RetainMode,
    /// Deterministic fault injection plan (testing only; empty by default).
    pub faults: FaultPlan,
    /// Recovery rungs for failed windows. Defaults to
    /// [`RecoveryPolicy::fail_only`] — the offline baseline historically
    /// reports a window that cannot converge as `Failed` — but accepts the
    /// full ladder for cross-driver parity testing.
    pub recovery: RecoveryPolicy,
    /// Overlap the next window's CSR construction with the current
    /// window's kernel (sequential walks only). Ranks are identical either
    /// way; only wall-clock build time moves off the critical path. Off by
    /// default.
    pub pipeline: bool,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            symmetric: true,
            pr: PrConfig::default(),
            parallel_windows: true,
            scheduler: Scheduler::default(),
            threads: 0,
            retain: RetainMode::Full,
            faults: FaultPlan::default(),
            recovery: RecoveryPolicy::fail_only(),
            pipeline: false,
        }
    }
}

/// Runs the offline model: for each window, slice the event log, build a
/// fresh CSR over the full vertex universe, and run uniformly-initialized
/// PageRank.
///
/// ```
/// use tempopr_core::{run_offline, OfflineConfig};
/// use tempopr_graph::{Event, EventLog, WindowSpec};
/// let log = EventLog::from_unsorted(
///     (0..60u32).map(|i| Event::new(i % 8, (i * 3 + 1) % 8, i as i64)).collect(),
///     8,
/// ).unwrap();
/// let spec = WindowSpec::covering(&log, 20, 10).unwrap();
/// let out = run_offline(&log, spec, &OfflineConfig::default()).unwrap();
/// assert_eq!(out.windows.len(), spec.count);
/// ```
///
/// Errors only on setup (an unbuildable thread pool); per-window kernel
/// failures are contained as
/// [`WindowStatus::Failed`](crate::result::WindowStatus::Failed) entries
/// and set the output's `degraded` flag, exactly like the postmortem
/// engine.
pub fn run_offline(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
) -> Result<RunOutput, EngineError> {
    run_offline_traced(log, spec, cfg, &Telemetry::noop())
}

/// [`run_offline`] recording into a telemetry sink: per-window CSR builds
/// count toward the build phase (the offline model's defining cost),
/// kernels report SpMV/check time and the convergence trace, and CSR sizes
/// land in the `memory.csr_bytes` histogram. A noop sink is exactly
/// [`run_offline`].
pub fn run_offline_traced(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    run_offline_durable(log, spec, cfg, &CheckpointOptions::default(), tele)
}

/// [`run_offline_traced`] with durability ([`crate::checkpoint`]): finalized
/// windows are persisted as `tempopr.ckpt.v1` records when `opts` names a
/// checkpoint directory, and a resume source's valid prefix is restored
/// instead of recomputed. Offline windows are independent and always start
/// from uniform init, so resume is a pure prefix skip — bit-identical under
/// any scheduling, including `parallel_windows` (records are reordered into
/// window order before hitting disk).
pub fn run_offline_durable(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    opts: &CheckpointOptions,
    tele: &Telemetry,
) -> Result<RunOutput, EngineError> {
    let header = checkpoint::ManifestHeader::new(
        checkpoint::DRIVER_OFFLINE,
        offline_config_hash(cfg),
        checkpoint::log_fingerprint(log),
        &spec,
    );
    let mut prefix: Vec<CheckpointRecord> = Vec::new();
    if let Some(from) = &opts.resume {
        let scan = {
            let _t = tele.phase(RunPhase::ResumeScan);
            checkpoint::resume_scan(from, &header)?
        };
        tele.add("checkpoint.corrupt_discarded", scan.corrupt_discarded);
        prefix = scan.records;
        prefix.truncate(spec.count);
    }
    let start = prefix.len();
    tele.add("checkpoint.resume_skipped", start as u64);
    let mut restored: Vec<WindowOutput> = prefix.iter().map(|r| r.to_output(cfg.retain)).collect();
    let ckpt = match &opts.dir {
        Some(dir) => Some(Arc::new(CheckpointSink::create(
            dir,
            &header,
            &prefix,
            opts.every,
            cfg.faults.crash_after_checkpoint,
            tele.clone(),
        )?)),
        None => None,
    };
    let inner = || run_offline_inner(log, spec, cfg, start, ckpt.as_ref(), tele);
    let mut out = if cfg.threads > 0 {
        thread_pool(cfg.threads)?.install(inner)
    } else {
        inner()
    };
    if let Some(sink) = &ckpt {
        sink.finish();
    }
    out.windows.append(&mut restored);
    out.windows.sort_by_key(|w| w.window);
    out.finalize_status();
    out.assert_complete(spec.count);
    tele.add("windows.total", out.windows.len() as u64);
    tele.set_gauge("run.degraded", f64::from(u8::from(out.degraded)));
    Ok(out)
}

/// Compatibility hash of an offline configuration: FNV-1a over the config's
/// `Debug` rendering with crash injection masked out (the crashed run and
/// its resume differ exactly there).
fn offline_config_hash(cfg: &OfflineConfig) -> u64 {
    let mut c = cfg.clone();
    c.faults.crash_after_checkpoint = None;
    checkpoint::hash_config(&format!("{c:?}"))
}

/// Locks the prefetch cache, recovering from poison (a panicked prefetch
/// must not take the run down).
fn lock(m: &Mutex<Option<(usize, Csr)>>) -> std::sync::MutexGuard<'_, Option<(usize, Csr)>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`WindowSource`] of the offline model: slices the event log and
/// (re)builds one CSR per window, recycling the previous window's arrays.
/// With a prefetch cache attached, a CSR built ahead of time by the
/// [`OfflinePrefetcher`] is claimed instead of rebuilt.
struct OfflineSource<'a> {
    log: &'a EventLog,
    spec: WindowSpec,
    symmetric: bool,
    tele: &'a Telemetry,
    cache: Option<&'a Mutex<Option<(usize, Csr)>>>,
    spare: Option<Csr>,
}

impl WindowSource for OfflineSource<'_> {
    type Item = Csr;

    fn setup(&mut self, window: usize) -> Csr {
        if let Some(cache) = self.cache {
            let mut slot = lock(cache);
            if matches!(*slot, Some((w, _)) if w == window) {
                if let Some((_, csr)) = slot.take() {
                    return csr;
                }
            }
        }
        let range = self.spec.window(window);
        let build = self.tele.phase(RunPhase::Build);
        let events = self.log.slice_by_time(range.start, range.end);
        // The per-window construction the offline model pays for: a fresh
        // CSR over the whole universe, into the recycled buffers.
        let csr = match self.spare.take() {
            Some(mut spare) => {
                spare.rebuild_from_events(self.log.num_vertices(), events, self.symmetric);
                spare
            }
            None => Csr::from_events(self.log.num_vertices(), events, self.symmetric),
        };
        drop(build);
        csr
    }

    fn finalize(&mut self, _window: usize, csr: Csr) {
        self.spare = Some(csr);
    }
}

/// Builds window `w+1`'s CSR into a shared cache slot while window `w`'s
/// kernel runs. Construction records only wall-clock build time (no trace
/// events), so the overlapped run's deterministic trace is unchanged.
struct OfflinePrefetcher<'a> {
    log: &'a EventLog,
    spec: WindowSpec,
    symmetric: bool,
    tele: &'a Telemetry,
    cache: &'a Mutex<Option<(usize, Csr)>>,
}

impl Prefetcher for OfflinePrefetcher<'_> {
    fn next_after(&self, window: usize) -> Option<usize> {
        let next = window + 1;
        (next < self.spec.count).then_some(next)
    }

    fn prefetch(&self, window: usize) {
        let spare = lock(self.cache).take().map(|(_, csr)| csr);
        let range = self.spec.window(window);
        let build = self.tele.phase(RunPhase::Build);
        let events = self.log.slice_by_time(range.start, range.end);
        let csr = match spare {
            Some(mut csr) => {
                csr.rebuild_from_events(self.log.num_vertices(), events, self.symmetric);
                csr
            }
            None => Csr::from_events(self.log.num_vertices(), events, self.symmetric),
        };
        drop(build);
        *lock(self.cache) = Some((window, csr));
    }
}

fn run_offline_inner(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    start: usize,
    ckpt: Option<&Arc<CheckpointSink>>,
    tele: &Telemetry,
) -> RunOutput {
    let windows = if cfg.parallel_windows {
        cfg.scheduler.map_reduce_range(
            spec.count - start,
            Vec::new(),
            |r| {
                let mut ws = PrWorkspace::default();
                let mut source = OfflineSource {
                    log,
                    spec,
                    symmetric: cfg.symmetric,
                    tele,
                    cache: None,
                    spare: None,
                };
                run_windows(
                    &mut source,
                    r.start + start..r.end + start,
                    None,
                    tele,
                    |_, w, csr| offline_compute(log, spec, cfg, w, csr, None, ckpt, &mut ws, tele),
                )
            },
            |mut a: Vec<WindowOutput>, mut b| {
                a.append(&mut b);
                a
            },
        )
    } else {
        let cache = Mutex::new(None);
        let prefetcher = cfg.pipeline.then_some(OfflinePrefetcher {
            log,
            spec,
            symmetric: cfg.symmetric,
            tele,
            cache: &cache,
        });
        let prefetcher = prefetcher.as_ref().map(|p| p as &dyn Prefetcher);
        let mut ws = PrWorkspace::default();
        let mut source = OfflineSource {
            log,
            spec,
            symmetric: cfg.symmetric,
            tele,
            cache: cfg.pipeline.then_some(&cache),
            spare: None,
        };
        run_windows(
            &mut source,
            start..spec.count,
            prefetcher,
            tele,
            |_, w, csr| {
                offline_compute(
                    log,
                    spec,
                    cfg,
                    w,
                    csr,
                    Some(&cfg.scheduler),
                    ckpt,
                    &mut ws,
                    tele,
                )
            },
        )
    };
    RunOutput {
        windows,
        degraded: false, // recomputed by finalize_status
    }
}

/// Runs one prepared window through the shared executor and assembles its
/// terminal output.
#[allow(clippy::too_many_arguments)]
fn offline_compute(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &OfflineConfig,
    w: usize,
    csr: &Csr,
    inner: Option<&Scheduler>,
    ckpt: Option<&Arc<CheckpointSink>>,
    ws: &mut PrWorkspace,
    tele: &Telemetry,
) -> WindowOutput {
    tele.observe("memory.csr_bytes", csr.memory_bytes() as f64);
    let executor =
        WindowExecutor::new(tele, &cfg.pr, cfg.recovery, cfg.retain).with_checkpoint(ckpt.cloned());
    let prcfg = PrConfig {
        fault: cfg.faults.fault_for(w).or(cfg.pr.fault),
        ..cfg.pr
    };
    let range = spec.window(w);
    let attempt_no = Cell::new(0u16);
    // Offline windows always start from uniform init, so the `uniform`
    // retry flag changes nothing — every attempt is a cold recompute.
    let kernel = |_uniform: bool| {
        attempt_no.set(attempt_no.get() + 1);
        let bridge = TelemetryKernelBridge::new(tele, attempt_no.get());
        let obs = if tele.is_enabled() {
            Obs::new(&bridge, w as u32)
        } else {
            Obs::off()
        };
        if cfg.symmetric {
            pagerank_csr_obs(csr, csr, Init::Uniform, &prcfg, inner, ws, obs)
        } else {
            let pull = csr.transpose();
            pagerank_csr_obs(&pull, csr, Init::Uniform, &prcfg, inner, ws, obs)
        }
    };
    let oracle = || {
        let events = log.slice_by_time(range.start, range.end);
        oracle_from_events(
            log.num_vertices(),
            events,
            cfg.symmetric,
            range,
            &cfg.pr,
            cfg.recovery.max_oracle_active,
        )
    };
    let (stats, status, override_ranks, attempts) =
        executor.drive(w as u32, false, log.num_vertices(), kernel, oracle);
    if !status.is_valid() {
        // A failed attempt may have left partial state behind.
        *ws = PrWorkspace::default();
    }
    let local: &[f64] = match &override_ranks {
        Some(x) => x,
        None => ws.ranks(),
    };
    executor.finalize(w, None, stats, local, status, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SparseRanks;
    use tempopr_graph::Event;

    fn test_log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..300u32 {
            let u = (i * 11 + 1) % 24;
            let v = (i * 5 + 7) % 24;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 24).unwrap()
    }

    fn tight() -> OfflineConfig {
        OfflineConfig {
            pr: PrConfig {
                alpha: 0.15,
                tol: 1e-12,
                max_iters: 500,
                ..PrConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn offline_matches_reference() {
        use tempopr_kernel::reference_pagerank;
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(&log, spec, &tight()).unwrap();
        for w in 0..spec.count {
            let range = spec.window(w);
            let mut edges = Vec::new();
            for e in log.events() {
                if range.contains(e.t) {
                    edges.push((e.u, e.v));
                    edges.push((e.v, e.u));
                }
            }
            let dense = reference_pagerank(24, &edges, &tight().pr);
            let expect = SparseRanks::from_dense(&dense);
            let got = out.windows[w].ranks.as_ref().unwrap();
            assert!(got.linf_distance(&expect) < 1e-8, "window {w}");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let par = run_offline(&log, spec, &tight()).unwrap();
        let seq = run_offline(
            &log,
            spec,
            &OfflineConfig {
                parallel_windows: false,
                ..tight()
            },
        )
        .unwrap();
        for (a, b) in par.windows.iter().zip(seq.windows.iter()) {
            assert!((a.fingerprint - b.fingerprint).abs() < 1e-9);
            assert_eq!(a.stats.active_vertices, b.stats.active_vertices);
        }
    }

    #[test]
    fn pipelined_run_is_bit_identical() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let mk = |pipeline| OfflineConfig {
            parallel_windows: false,
            pipeline,
            ..tight()
        };
        let plain = run_offline(&log, spec, &mk(false)).unwrap();
        let piped = run_offline(&log, spec, &mk(true)).unwrap();
        for (a, b) in plain.windows.iter().zip(piped.windows.iter()) {
            assert_eq!(a.fingerprint.to_bits(), b.fingerprint.to_bits());
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn summary_retention_has_no_vectors() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(
            &log,
            spec,
            &OfflineConfig {
                retain: RetainMode::Summary,
                ..tight()
            },
        )
        .unwrap();
        assert!(out.windows.iter().all(|w| w.ranks.is_none()));
        assert!(out.windows.iter().any(|w| w.fingerprint != 0.0));
    }

    #[test]
    fn explicit_threads_work() {
        let log = test_log();
        let spec = WindowSpec::covering(&log, 50, 30).unwrap();
        let out = run_offline(
            &log,
            spec,
            &OfflineConfig {
                threads: 2,
                ..tight()
            },
        )
        .unwrap();
        assert_eq!(out.windows.len(), spec.count);
    }
}
