//! Temporal arrival profiles (paper §6.1, Fig. 4).
//!
//! The paper's seven datasets fall into three temporal shapes: spiky
//! (Enron's scandal spike, Epinions' 2001 peak, HepTh's irregular bursts),
//! smoothly growing (wiki-talk, askubuntu, stackoverflow), and
//! bursty-but-steady (youtube). An [`ArrivalProfile`] samples event-time
//! *positions* in `[0, 1)` with the corresponding density; the generator
//! maps positions onto the dataset's time span.

use rand::Rng;

/// The shape of event arrivals over the normalized time axis `[0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Events distributed uniformly.
    Uniform,
    /// One dominant spike (Enron, Epinions): a truncated Gaussian at
    /// `center` with standard deviation `width`, mixed with a uniform
    /// background.
    Spike {
        /// Spike position in `[0, 1)`.
        center: f64,
        /// Spike standard deviation (fraction of the span).
        width: f64,
        /// Fraction of events belonging to the spike (rest uniform).
        share: f64,
    },
    /// Several bursts of random position/width (ca-cit-HepTh's irregular
    /// pattern); burst parameters derive deterministically from the RNG.
    IrregularBursts {
        /// Number of bursts.
        bursts: usize,
        /// Fraction of events in bursts (rest uniform).
        share: f64,
    },
    /// Arrival rate growing linearly from `1` to `ratio` over the span
    /// (wiki-talk, askubuntu, stackoverflow).
    LinearGrowth {
        /// Final/initial rate ratio (> 1).
        ratio: f64,
    },
    /// Steady background plus periodic narrow bursts (youtube-growth).
    SteadyBursty {
        /// Number of bursts, evenly spaced.
        bursts: usize,
        /// Fraction of events in bursts.
        share: f64,
    },
}

impl ArrivalProfile {
    /// Samples one event-time position in `[0, 1)`.
    pub fn sample<R: Rng>(&self, rng: &mut R, burst_centers: &[f64]) -> f64 {
        let u: f64 = rng.gen();
        let pos = match *self {
            ArrivalProfile::Uniform => u,
            ArrivalProfile::Spike {
                center,
                width,
                share,
            } => {
                if u < share {
                    truncated_gaussian(rng, center, width)
                } else {
                    rng.gen()
                }
            }
            ArrivalProfile::IrregularBursts { share, .. }
            | ArrivalProfile::SteadyBursty { share, .. } => {
                if u < share && !burst_centers.is_empty() {
                    let i = rng.gen_range(0..burst_centers.len());
                    truncated_gaussian(rng, burst_centers[i], 0.01)
                } else {
                    rng.gen()
                }
            }
            ArrivalProfile::LinearGrowth { ratio } => {
                // pdf ∝ 1 + (r-1)x; inverse CDF.
                let r = ratio.max(1.0 + 1e-9);
                ((1.0 + u * (r * r - 1.0)).sqrt() - 1.0) / (r - 1.0)
            }
        };
        pos.clamp(0.0, 1.0 - 1e-12)
    }

    /// Burst centers this profile needs, drawn once per dataset.
    pub fn burst_centers<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        match *self {
            ArrivalProfile::IrregularBursts { bursts, .. } => {
                (0..bursts).map(|_| rng.gen::<f64>()).collect()
            }
            ArrivalProfile::SteadyBursty { bursts, .. } => (0..bursts)
                .map(|i| (i as f64 + 0.5) / bursts as f64)
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Box–Muller Gaussian truncated to `[0, 1)` by resampling (falling back to
/// the mean after a few rejections, which only matters for extreme widths).
fn truncated_gaussian<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    for _ in 0..16 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mean + sd * z;
        if (0.0..1.0).contains(&x) {
            return x;
        }
    }
    mean.clamp(0.0, 1.0 - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_many(p: ArrivalProfile, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(42);
        let centers = p.burst_centers(&mut rng);
        (0..n).map(|_| p.sample(&mut rng, &centers)).collect()
    }

    #[test]
    fn all_samples_in_unit_interval() {
        for p in [
            ArrivalProfile::Uniform,
            ArrivalProfile::Spike {
                center: 0.5,
                width: 0.05,
                share: 0.7,
            },
            ArrivalProfile::IrregularBursts {
                bursts: 5,
                share: 0.6,
            },
            ArrivalProfile::LinearGrowth { ratio: 10.0 },
            ArrivalProfile::SteadyBursty {
                bursts: 8,
                share: 0.3,
            },
        ] {
            for x in sample_many(p, 5000) {
                assert!((0.0..1.0).contains(&x), "{p:?} produced {x}");
            }
        }
    }

    #[test]
    fn spike_concentrates_mass_at_center() {
        let xs = sample_many(
            ArrivalProfile::Spike {
                center: 0.6,
                width: 0.03,
                share: 0.7,
            },
            20000,
        );
        let near = xs.iter().filter(|&&x| (x - 0.6).abs() < 0.1).count();
        // 70% spike mass plus uniform background in the 0.2-wide strip.
        assert!(near as f64 > 0.6 * xs.len() as f64, "near = {near}");
    }

    #[test]
    fn linear_growth_puts_more_mass_late() {
        let xs = sample_many(ArrivalProfile::LinearGrowth { ratio: 8.0 }, 20000);
        let late = xs.iter().filter(|&&x| x > 0.5).count();
        let early = xs.len() - late;
        // With rate 1 -> 8, the second half holds (0.5 + 7*0.375)/4.5 ≈ 0.69
        // of the mass, i.e. late/early ≈ 2.27.
        assert!(
            late as f64 > 2.0 * early as f64,
            "late {late} vs early {early}"
        );
    }

    #[test]
    fn linear_growth_inverse_cdf_hits_endpoints() {
        // u=0 -> 0, u=1 -> 1 analytically.
        let r = 5.0f64;
        let inv = |u: f64| ((1.0 + u * (r * r - 1.0)).sqrt() - 1.0) / (r - 1.0);
        assert!((inv(0.0) - 0.0).abs() < 1e-12);
        assert!((inv(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steady_bursty_has_periodic_bumps() {
        let p = ArrivalProfile::SteadyBursty {
            bursts: 4,
            share: 0.5,
        };
        let xs = sample_many(p, 40000);
        // Count mass near the 4 burst centers (0.125, 0.375, 0.625, 0.875).
        let near: usize = xs
            .iter()
            .filter(|&&x| {
                [0.125, 0.375, 0.625, 0.875]
                    .iter()
                    .any(|c| (x - c).abs() < 0.03)
            })
            .count();
        // Burst share 0.5 plus uniform background (~12% of area).
        assert!(near as f64 > 0.45 * xs.len() as f64, "near = {near}");
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let xs = sample_many(ArrivalProfile::Uniform, 20000);
        let first = xs.iter().filter(|&&x| x < 0.25).count() as f64;
        assert!((first / xs.len() as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = sample_many(ArrivalProfile::LinearGrowth { ratio: 4.0 }, 100);
        let b = sample_many(ArrivalProfile::LinearGrowth { ratio: 4.0 }, 100);
        assert_eq!(a, b);
    }
}
