//! Endpoint samplers: who talks to whom.
//!
//! The paper notes (§6.3.2) that its social graphs have power-law degree
//! distributions — the very imbalance the partitioner experiments probe —
//! and that Epinions is bipartite (users × products). [`Topology`] samples
//! event endpoints accordingly.

use rand::Rng;

/// Degree structure of the generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Power-law-ish endpoint popularity: vertex `floor(n·u^skew)` for
    /// uniform `u`, so low ids are hubs. `skew` ≈ 2–3 gives the heavy head
    /// typical of social graphs.
    PowerLaw {
        /// Skew exponent (1 = uniform, larger = heavier hubs).
        skew: f64,
    },
    /// Bipartite user→item events (Epinions): sources from the first
    /// `left_frac` of the id space, destinations from the rest, each
    /// power-law distributed within their side.
    Bipartite {
        /// Fraction of vertices on the left (user) side.
        left_frac: f64,
        /// Skew exponent on both sides.
        skew: f64,
    },
}

impl Topology {
    /// Samples one event's endpoints from a universe of `n_eff` vertices
    /// (`n_eff <= n` lets growth datasets widen their active universe over
    /// time). Guarantees `u != v`.
    pub fn sample<R: Rng>(&self, rng: &mut R, n_eff: usize) -> (u32, u32) {
        let n_eff = n_eff.max(2);
        match *self {
            Topology::PowerLaw { skew } => {
                let u = powerlaw_id(rng, n_eff, skew);
                loop {
                    let v = powerlaw_id(rng, n_eff, skew);
                    if v != u {
                        return (u, v);
                    }
                }
            }
            Topology::Bipartite { left_frac, skew } => {
                let left = ((n_eff as f64 * left_frac) as usize).clamp(1, n_eff - 1);
                let right = n_eff - left;
                let u = powerlaw_id(rng, left, skew);
                let v = left as u32 + powerlaw_id(rng, right, skew);
                (u, v)
            }
        }
    }
}

/// `floor(n · u^skew)`: the id distribution `P(id < k) = (k/n)^(1/skew)`,
/// a cheap heavy-headed sampler (id 0 is the biggest hub).
fn powerlaw_id<R: Rng>(rng: &mut R, n: usize, skew: f64) -> u32 {
    let u: f64 = rng.gen();
    let id = (n as f64 * u.powf(skew)) as usize;
    id.min(n - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn powerlaw_no_self_loops_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Topology::PowerLaw { skew: 2.5 };
        for _ in 0..5000 {
            let (u, v) = t.sample(&mut rng, 100);
            assert_ne!(u, v);
            assert!(u < 100 && v < 100);
        }
    }

    #[test]
    fn powerlaw_low_ids_are_hubs() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Topology::PowerLaw { skew: 2.5 };
        let mut deg = vec![0usize; 1000];
        for _ in 0..50000 {
            let (u, v) = t.sample(&mut rng, 1000);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let head: usize = deg[..50].iter().sum();
        let total: usize = deg.iter().sum();
        // P(id < 50) = (0.05)^(1/2.5) ≈ 0.30 per endpoint.
        assert!(head as f64 > 0.25 * total as f64, "head {head} of {total}");
        assert!(deg[0] > deg[500] * 5, "hub {} vs mid {}", deg[0], deg[500]);
    }

    #[test]
    fn bipartite_separates_sides() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Topology::Bipartite {
            left_frac: 0.3,
            skew: 2.0,
        };
        for _ in 0..5000 {
            let (u, v) = t.sample(&mut rng, 100);
            assert!(u < 30, "source {u} must be a user");
            assert!((30..100).contains(&v), "dest {v} must be an item");
        }
    }

    #[test]
    fn small_universe_still_works() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in [
            Topology::PowerLaw { skew: 2.0 },
            Topology::Bipartite {
                left_frac: 0.5,
                skew: 2.0,
            },
        ] {
            let (u, v) = t.sample(&mut rng, 2);
            assert_ne!(u, v);
            let (u, v) = t.sample(&mut rng, 1); // clamped to 2
            assert_ne!(u, v);
        }
    }

    #[test]
    fn growth_universe_limits_ids() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Topology::PowerLaw { skew: 2.0 };
        for _ in 0..2000 {
            let (u, v) = t.sample(&mut rng, 10);
            assert!(u < 10 && v < 10);
        }
    }
}
