//! # tempopr-datagen
//!
//! Synthetic temporal graph workloads standing in for the seven real
//! datasets of the paper's Table 1 (see DESIGN.md §2.8 for the
//! substitution rationale). Each [`presets::Dataset`] reproduces the
//! temporal arrival shape of Fig. 4, power-law degrees, bipartiteness
//! (Epinions), the event/vertex ratio, and the (sw, δ) parameter grids —
//! at any scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod presets;
pub mod profiles;
pub mod topology;

pub use presets::{Dataset, DatasetSpec, DAY};
pub use profiles::ArrivalProfile;
pub use topology::Topology;
