//! Synthetic stand-ins for the paper's seven datasets (Table 1, Fig. 4).
//!
//! The real datasets (SNAP / network-repository / DIMACS) are not shipped;
//! each preset reproduces the properties the paper's conclusions rest on:
//! the *temporal shape* of event arrivals (Fig. 4), power-law degree
//! imbalance (§6.3.2), bipartiteness where applicable, the event/vertex
//! ratio, and the (sw, δ) parameter grids of Table 1 / Fig. 11. Absolute
//! sizes scale with a `scale` factor so the same presets serve unit tests
//! (`scale ≈ 0.001`), benches (`≈ 0.01`), and full experiments (`1.0`).

use crate::profiles::ArrivalProfile;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tempopr_graph::{Event, EventLog};

/// Seconds per day, the unit of Table 1's window sizes.
pub const DAY: i64 = 86_400;

/// The seven datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// `ia-enron-email`: corporate email with the 2001 scandal spike.
    Enron,
    /// `epinions-user-ratings`: bipartite user→product reviews, 2001 peak.
    Epinions,
    /// `ca-cit-HepTh`: physics citations, irregular bursts.
    HepTh,
    /// `Youtube-Growth`: bursty by moments, steady in general.
    Youtube,
    /// `wiki-talk`: smoothly growing talk-page edits.
    WikiTalk,
    /// `stackoverflow`: the largest, smoothly growing Q&A graph.
    StackOverflow,
    /// `askubuntu`: the smallest growing Q&A graph.
    AskUbuntu,
}

impl Dataset {
    /// All seven, in the paper's Table 1 order.
    pub fn all() -> [Dataset; 7] {
        [
            Dataset::HepTh,
            Dataset::StackOverflow,
            Dataset::AskUbuntu,
            Dataset::Youtube,
            Dataset::Epinions,
            Dataset::Enron,
            Dataset::WikiTalk,
        ]
    }

    /// The dataset's display name (matching the paper).
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Enron => "ia-enron-email",
            Dataset::Epinions => "epinions-user-ratings",
            Dataset::HepTh => "ca-cit-HepTh",
            Dataset::Youtube => "Youtube-Growth",
            Dataset::WikiTalk => "wiki-talk",
            Dataset::StackOverflow => "stackoverflow",
            Dataset::AskUbuntu => "askubuntu",
        }
    }

    /// The generator spec for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        let d = |days: &[i64]| days.iter().map(|&x| x * DAY).collect::<Vec<_>>();
        match self {
            Dataset::Enron => DatasetSpec {
                dataset: *self,
                full_vertices: 87_000,
                full_events: 1_134_990,
                span_days: 3_650.0,
                profile: ArrivalProfile::Spike {
                    center: 0.55,
                    width: 0.05,
                    share: 0.65,
                },
                topology: Topology::PowerLaw { skew: 2.5 },
                growth_universe: false,
                sliding_offsets: vec![DAY, 2 * DAY],
                window_sizes: d(&[730, 1460]),
            },
            Dataset::Epinions => DatasetSpec {
                dataset: *self,
                full_vertices: 876_000,
                full_events: 13_668_281,
                span_days: 430.0,
                profile: ArrivalProfile::Spike {
                    center: 0.35,
                    width: 0.08,
                    share: 0.7,
                },
                topology: Topology::Bipartite {
                    left_frac: 0.14,
                    skew: 2.2,
                },
                growth_universe: false,
                sliding_offsets: vec![DAY / 2, DAY],
                window_sizes: d(&[60, 90]),
            },
            Dataset::HepTh => DatasetSpec {
                dataset: *self,
                full_vertices: 22_900,
                full_events: 2_673_133,
                span_days: 2_900.0,
                profile: ArrivalProfile::IrregularBursts {
                    bursts: 6,
                    share: 0.5,
                },
                topology: Topology::PowerLaw { skew: 2.5 },
                growth_universe: false,
                sliding_offsets: vec![DAY / 2, DAY, 2 * DAY],
                window_sizes: d(&[10, 15, 90, 180, 730, 1460]),
            },
            Dataset::Youtube => DatasetSpec {
                dataset: *self,
                full_vertices: 3_200_000,
                full_events: 12_223_774,
                span_days: 210.0,
                profile: ArrivalProfile::SteadyBursty {
                    bursts: 6,
                    share: 0.35,
                },
                topology: Topology::PowerLaw { skew: 2.3 },
                growth_universe: true,
                sliding_offsets: vec![DAY / 2, DAY],
                window_sizes: d(&[60, 90]),
            },
            Dataset::WikiTalk => DatasetSpec {
                dataset: *self,
                full_vertices: 2_400_000,
                full_events: 6_100_538,
                span_days: 1_900.0,
                profile: ArrivalProfile::LinearGrowth { ratio: 8.0 },
                topology: Topology::PowerLaw { skew: 2.6 },
                growth_universe: true,
                sliding_offsets: vec![DAY / 2, DAY, 2 * DAY, 3 * DAY],
                window_sizes: d(&[10, 15, 90, 180]),
            },
            Dataset::StackOverflow => DatasetSpec {
                dataset: *self,
                full_vertices: 2_600_000,
                full_events: 47_903_266,
                span_days: 2_550.0,
                profile: ArrivalProfile::LinearGrowth { ratio: 6.0 },
                topology: Topology::PowerLaw { skew: 2.4 },
                growth_universe: true,
                sliding_offsets: vec![DAY / 2, DAY],
                window_sizes: d(&[10, 15, 90, 180, 730]),
            },
            Dataset::AskUbuntu => DatasetSpec {
                dataset: *self,
                full_vertices: 159_000,
                full_events: 726_661,
                span_days: 2_500.0,
                profile: ArrivalProfile::LinearGrowth { ratio: 10.0 },
                topology: Topology::PowerLaw { skew: 2.5 },
                growth_universe: true,
                sliding_offsets: vec![DAY, 2 * DAY],
                window_sizes: d(&[90, 180]),
            },
        }
    }
}

/// Everything needed to synthesize one dataset at any scale.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this spec models.
    pub dataset: Dataset,
    /// Vertex count of the real dataset.
    pub full_vertices: usize,
    /// Event count of the real dataset (Table 1).
    pub full_events: usize,
    /// Time span in days (from Fig. 4's x-axes).
    pub span_days: f64,
    /// Temporal arrival shape (Fig. 4).
    pub profile: ArrivalProfile,
    /// Endpoint/degree structure.
    pub topology: Topology,
    /// Whether the active vertex universe widens over time (growth
    /// datasets: later events reach vertices unseen earlier).
    pub growth_universe: bool,
    /// Table 1 / Fig. 11 sliding offsets, in seconds.
    pub sliding_offsets: Vec<i64>,
    /// Table 1 / Fig. 11 window sizes, in seconds.
    pub window_sizes: Vec<i64>,
}

impl DatasetSpec {
    /// Event count at `scale` (at least 1 000).
    pub fn scaled_events(&self, scale: f64) -> usize {
        ((self.full_events as f64 * scale) as usize).max(1_000)
    }

    /// Vertex count at `scale` (at least 200).
    pub fn scaled_vertices(&self, scale: f64) -> usize {
        ((self.full_vertices as f64 * scale) as usize).max(200)
    }

    /// The span in seconds.
    pub fn span_seconds(&self) -> i64 {
        (self.span_days * DAY as f64) as i64
    }

    /// The full (sw, δ) grid, in seconds.
    pub fn param_grid(&self) -> Vec<(i64, i64)> {
        let mut grid = Vec::new();
        for &sw in &self.sliding_offsets {
            for &delta in &self.window_sizes {
                grid.push((sw, delta));
            }
        }
        grid
    }

    /// Synthesizes the dataset at `scale` with a deterministic `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> EventLog {
        let n = self.scaled_vertices(scale);
        let m = self.scaled_events(scale);
        let span = self.span_seconds();
        let mut rng = StdRng::seed_from_u64(seed ^ fxmix(self.dataset as u64));
        let centers = self.profile.burst_centers(&mut rng);
        let mut events = Vec::with_capacity(m);
        for _ in 0..m {
            let pos = self.profile.sample(&mut rng, &centers);
            let t = (pos * span as f64) as i64;
            let n_eff = if self.growth_universe {
                ((n as f64) * (0.15 + 0.85 * pos)) as usize
            } else {
                n
            };
            let (u, v) = self.topology.sample(&mut rng, n_eff.max(2));
            events.push(Event::new(u, v, t));
        }
        EventLog::from_unsorted(events, n).expect("generator produced invalid log")
    }
}

/// Cheap 64-bit mixer for per-dataset seed derivation.
fn fxmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_valid_logs() {
        for d in Dataset::all() {
            let spec = d.spec();
            let log = spec.generate(0.002, 1);
            assert!(log.len() >= 1_000, "{}", d.name());
            assert!(log.num_vertices() >= 200);
            assert!(log.first_time() >= 0);
            assert!(log.last_time() <= spec.span_seconds());
            // Sorted by construction.
            for w in log.events().windows(2) {
                assert!(w[0].t <= w[1].t);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = Dataset::WikiTalk.spec();
        let a = spec.generate(0.001, 9);
        let b = spec.generate(0.001, 9);
        assert_eq!(a, b);
        let c = spec.generate(0.001, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn different_datasets_differ_for_same_seed() {
        let a = Dataset::Enron.spec().generate(0.01, 5);
        let b = Dataset::HepTh.spec().generate(0.01, 5);
        assert_ne!(a.events()[..50], b.events()[..50]);
    }

    #[test]
    fn scaled_sizes_track_scale() {
        let spec = Dataset::StackOverflow.spec();
        assert_eq!(spec.scaled_events(1.0), 47_903_266);
        assert!(spec.scaled_events(0.01) >= 470_000);
        assert_eq!(spec.scaled_events(1e-9), 1_000);
        assert_eq!(spec.scaled_vertices(1e-9), 200);
    }

    #[test]
    fn epinions_is_bipartite() {
        let spec = Dataset::Epinions.spec();
        let log = spec.generate(0.001, 3);
        let left = (log.num_vertices() as f64 * 0.14) as u32;
        for e in log.events() {
            assert!(e.u < left, "source {} must be a user", e.u);
            assert!(e.v >= left, "dest {} must be a product", e.v);
        }
    }

    #[test]
    fn enron_spike_shows_in_distribution() {
        let spec = Dataset::Enron.spec();
        let log = spec.generate(0.02, 4);
        let span = spec.span_seconds() as f64;
        let near = log
            .events()
            .iter()
            .filter(|e| ((e.t as f64 / span) - 0.55).abs() < 0.1)
            .count();
        assert!(
            near as f64 > 0.55 * log.len() as f64,
            "spike mass {near} of {}",
            log.len()
        );
    }

    #[test]
    fn wikitalk_grows_over_time() {
        let spec = Dataset::WikiTalk.spec();
        let log = spec.generate(0.002, 4);
        let half = spec.span_seconds() / 2;
        let late = log.events().iter().filter(|e| e.t > half).count();
        assert!(late as f64 > 2.0 * (log.len() - late) as f64);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let spec = Dataset::WikiTalk.spec();
        let log = spec.generate(0.005, 4);
        let mut deg = vec![0usize; log.num_vertices()];
        for e in log.events() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = deg[..deg.len() / 100].iter().sum();
        let total: usize = deg.iter().sum();
        assert!(
            top1pct as f64 > 0.2 * total as f64,
            "top 1% holds {top1pct} of {total}"
        );
    }

    #[test]
    fn param_grids_match_table1() {
        assert_eq!(Dataset::WikiTalk.spec().param_grid().len(), 16);
        assert_eq!(Dataset::Enron.spec().param_grid().len(), 4);
        assert_eq!(Dataset::HepTh.spec().param_grid().len(), 18);
        // All positive.
        for d in Dataset::all() {
            for (sw, delta) in d.spec().param_grid() {
                assert!(sw > 0 && delta > 0);
            }
        }
    }
}
