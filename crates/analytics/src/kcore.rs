//! k-core decomposition of one window (paper §3.1, §3.2: Sarıyüce et al.'s
//! streaming k-core and Gabert et al.'s postmortem dense-region analysis).
//!
//! The core number of a vertex is the largest `k` such that the vertex
//! belongs to a subgraph where every vertex has degree ≥ `k`. Computed by
//! the classic Matula–Beck bucket peeling in `O(V + E)` over the window's
//! active adjacency.

use tempopr_graph::{TemporalCsr, TimeRange};

/// Core number per vertex (`0` for vertices inactive in the window —
/// distinguishable from an active degree-ge-1 vertex whose core is ≥ 1,
/// because an active vertex always has at least one neighbor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreNumbers {
    /// Core number per vertex.
    pub core: Vec<u32>,
    /// The maximum core number (degeneracy) of the window.
    pub degeneracy: u32,
}

/// Computes the k-core decomposition of the window `range`. Self-loops
/// are ignored (a vertex is never its own core neighbor).
pub fn kcore_window(tcsr: &TemporalCsr, range: TimeRange) -> CoreNumbers {
    let n = tcsr.num_vertices();
    // Degrees excluding self-loops (peeling needs repeated neighbor access
    // and mutable degrees).
    let mut deg = vec![0u32; n];
    for (v, d) in deg.iter_mut().enumerate() {
        *d = tcsr
            .active_neighbors(v as u32, range)
            .filter(|&u| u != v as u32)
            .count() as u32;
    }
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    if max_deg == 0 {
        return CoreNumbers {
            core: vec![0; n],
            degeneracy: 0,
        };
    }
    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 0..max_deg + 1 {
        bin[i + 1] += bin[i];
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0u32; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }
    // bin[d] = first index in `vert` of degree d.
    let mut core = deg.clone();
    let mut start = bin;
    for i in 0..n {
        let v = vert[i] as usize;
        // v is peeled with current degree = its core number.
        for u in tcsr.active_neighbors(v as u32, range) {
            if u as usize == v {
                continue;
            }
            let u = u as usize;
            if core[u] > core[v] {
                // Move u one bucket down: swap with the first vertex of
                // its current bucket.
                let du = core[u] as usize;
                let pu = pos[u];
                let pw = start[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                start[du] += 1;
                core[u] -= 1;
            }
        }
    }
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreNumbers { core, degeneracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    /// Brute-force core numbers by repeated minimum peeling.
    fn brute_core(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
        }
        let mut alive: Vec<bool> = (0..n).map(|v| !adj[v].is_empty()).collect();
        let mut deg: Vec<usize> = adj.iter().map(|a| a.len()).collect();
        let mut core = vec![0u32; n];
        let mut k = 0u32;
        loop {
            let remaining: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
            if remaining.is_empty() {
                break;
            }
            let min_deg = remaining.iter().map(|&v| deg[v]).min().unwrap() as u32;
            k = k.max(min_deg);
            // Peel every alive vertex with degree <= k.
            let mut queue: Vec<usize> = remaining
                .into_iter()
                .filter(|&v| deg[v] <= k as usize)
                .collect();
            while let Some(v) = queue.pop() {
                if !alive[v] {
                    continue;
                }
                alive[v] = false;
                core[v] = k;
                for &u in &adj[v] {
                    let u = u as usize;
                    if alive[u] {
                        deg[u] -= 1;
                        if deg[u] <= k as usize {
                            queue.push(u);
                        }
                    }
                }
            }
        }
        core
    }

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for &(u, v) in edges {
            out.push((u, v));
            out.push((v, u));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (core 2) with a pendant 3 (core 1).
        let t = TemporalCsr::from_events(
            4,
            &[ev(0, 1, 1), ev(1, 2, 1), ev(2, 0, 1), ev(2, 3, 1)],
            true,
        );
        let c = kcore_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.core, vec![2, 2, 2, 1]);
        assert_eq!(c.degeneracy, 2);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut events = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                events.push(ev(u, v, 1));
            }
        }
        let t = TemporalCsr::from_events(6, &events, true);
        let c = kcore_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.degeneracy, 4);
        for v in 0..5 {
            assert_eq!(c.core[v], 4);
        }
        assert_eq!(c.core[5], 0);
    }

    #[test]
    fn window_filter_changes_cores() {
        // Triangle only complete late.
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 1), ev(2, 0, 50)], true);
        let early = kcore_window(&t, TimeRange::new(0, 10));
        assert_eq!(early.degeneracy, 1);
        let late = kcore_window(&t, TimeRange::new(0, 100));
        assert_eq!(late.degeneracy, 2);
    }

    #[test]
    fn self_loops_do_not_inflate_cores() {
        let t = TemporalCsr::from_events(3, &[ev(0, 0, 1), ev(0, 1, 1)], true);
        let c = kcore_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.core, vec![1, 1, 0]);
        // Pure self-loop vertex: active but core 0.
        let t = TemporalCsr::from_events(2, &[ev(0, 0, 1)], true);
        let c = kcore_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.core, vec![0, 0]);
    }

    #[test]
    fn empty_window_all_zero() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 5)], true);
        let c = kcore_window(&t, TimeRange::new(50, 60));
        assert_eq!(c.core, vec![0, 0, 0]);
        assert_eq!(c.degeneracy, 0);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        for seed in 0..5u32 {
            let mut events = Vec::new();
            for i in 0..150u32 {
                let u = (i * 13 + seed) % 25;
                let v = (i * 7 + 3 * seed + 1) % 25;
                if u != v {
                    events.push(ev(u, v, (i % 40) as i64));
                }
            }
            let t = TemporalCsr::from_events(25, &events, true);
            let range = TimeRange::new(5, 30);
            let got = kcore_window(&t, range);
            let edges: Vec<(u32, u32)> = events
                .iter()
                .filter(|e| range.contains(e.t))
                .map(|e| (e.u, e.v))
                .collect();
            let expect = brute_core(25, &sym(&edges));
            assert_eq!(got.core, expect, "seed {seed}");
        }
    }
}
