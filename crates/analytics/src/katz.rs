//! Per-window Katz centrality (Nathan & Bader's streaming algorithm is
//! cited in the paper's §3.2 — postmortem computes the exact values window
//! by window).
//!
//! Katz centrality solves `x = α·A·x + 1` (attenuation `α` strictly below
//! the inverse spectral radius), weighting walks of length `k` by `α^k`.
//! Computed by Jacobi iteration over the window's active adjacency; `α` is
//! chosen per window as `katz_alpha / (max_degree + 1)`, which guarantees
//! convergence since the spectral radius is at most the maximum degree.

use tempopr_graph::{TemporalCsr, TimeRange, VertexId};

/// Katz parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KatzConfig {
    /// Attenuation as a fraction of the per-window convergence bound
    /// `1 / (max_degree + 1)`; must be in `(0, 1)`.
    pub alpha_fraction: f64,
    /// L∞ convergence tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for KatzConfig {
    fn default() -> Self {
        KatzConfig {
            alpha_fraction: 0.85,
            tol: 1e-9,
            max_iters: 200,
        }
    }
}

/// Katz scores of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct KatzScores {
    /// Katz centrality per vertex (0 for inactive vertices; active
    /// vertices score at least 1).
    pub score: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// The attenuation actually used for this window.
    pub alpha: f64,
}

/// Computes Katz centrality of the window `range`.
pub fn katz_window(tcsr: &TemporalCsr, range: TimeRange, cfg: &KatzConfig) -> KatzScores {
    assert!(
        cfg.alpha_fraction > 0.0 && cfg.alpha_fraction < 1.0,
        "alpha_fraction must be in (0, 1)"
    );
    let n = tcsr.num_vertices();
    let mut deg = vec![0u32; n];
    tcsr.active_degrees(range, &mut deg);
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    let actives: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] > 0).collect();
    if actives.is_empty() {
        return KatzScores {
            score: vec![0.0; n],
            iterations: 0,
            converged: true,
            alpha: 0.0,
        };
    }
    let alpha = cfg.alpha_fraction / (max_deg as f64 + 1.0);
    let mut x = vec![0.0f64; n];
    for &v in &actives {
        x[v as usize] = 1.0;
    }
    let mut y = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut diff = 0.0f64;
        for &v in &actives {
            let mut s = 0.0;
            for u in tcsr.active_neighbors(v as VertexId, range) {
                s += x[u as usize];
            }
            let val = 1.0 + alpha * s;
            diff = diff.max((val - x[v as usize]).abs());
            y[v as usize] = val;
        }
        for &v in &actives {
            x[v as usize] = y[v as usize];
        }
        if diff < cfg.tol {
            converged = true;
            break;
        }
    }
    KatzScores {
        score: x,
        iterations,
        converged,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    fn cfg() -> KatzConfig {
        KatzConfig {
            alpha_fraction: 0.85,
            tol: 1e-12,
            max_iters: 2000,
        }
    }

    /// Dense reference: solve x = αAx + 1 by long Jacobi iteration on an
    /// explicit matrix.
    fn dense_katz(n: usize, edges: &[(u32, u32)], alpha: f64) -> Vec<f64> {
        let mut adj = vec![vec![false; n]; n];
        let mut active = vec![false; n];
        for &(u, v) in edges {
            adj[u as usize][v as usize] = true;
            adj[v as usize][u as usize] = true;
            active[u as usize] = true;
            active[v as usize] = true;
        }
        let mut x = vec![0.0; n];
        for v in 0..n {
            if active[v] {
                x[v] = 1.0;
            }
        }
        for _ in 0..5000 {
            let mut y = vec![0.0; n];
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                let s: f64 = (0..n).filter(|&u| adj[v][u]).map(|u| x[u]).sum();
                y[v] = 1.0 + alpha * s;
            }
            x = y;
        }
        x
    }

    #[test]
    fn star_center_scores_highest() {
        let events: Vec<Event> = (1..6).map(|v| ev(0, v, 1)).collect();
        let t = TemporalCsr::from_events(6, &events, true);
        let k = katz_window(&t, TimeRange::new(0, 10), &cfg());
        assert!(k.converged);
        for leaf in 1..6 {
            assert!(k.score[0] > k.score[leaf]);
            assert!(k.score[leaf] >= 1.0);
        }
    }

    #[test]
    fn matches_dense_reference() {
        let mut events = Vec::new();
        for i in 0..80u32 {
            let u = (i * 13 + 1) % 15;
            let v = (i * 7 + 5) % 15;
            if u != v {
                events.push(ev(u, v, 1));
            }
        }
        let t = TemporalCsr::from_events(15, &events, true);
        let range = TimeRange::new(0, 10);
        let k = katz_window(&t, range, &cfg());
        let edges: Vec<(u32, u32)> = events.iter().map(|e| (e.u, e.v)).collect();
        let expect = dense_katz(15, &edges, k.alpha);
        for (v, (g, e)) in k.score.iter().zip(expect.iter()).enumerate() {
            assert!((g - e).abs() < 1e-8, "vertex {v}: {g} vs {e}");
        }
    }

    #[test]
    fn window_filtering_applies() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 100)], true);
        let early = katz_window(&t, TimeRange::new(0, 10), &cfg());
        assert_eq!(early.score[2], 0.0);
        assert!(early.score[0] > 1.0);
        let late = katz_window(&t, TimeRange::new(0, 200), &cfg());
        assert!(late.score[2] > 1.0);
        assert!(late.score[1] > late.score[0], "middle vertex leads");
    }

    #[test]
    fn empty_window() {
        let t = TemporalCsr::from_events(2, &[ev(0, 1, 5)], true);
        let k = katz_window(&t, TimeRange::new(50, 60), &cfg());
        assert!(k.converged);
        assert_eq!(k.score, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "alpha_fraction")]
    fn invalid_alpha_rejected() {
        let t = TemporalCsr::from_events(2, &[ev(0, 1, 5)], true);
        katz_window(
            &t,
            TimeRange::new(0, 10),
            &KatzConfig {
                alpha_fraction: 1.5,
                ..Default::default()
            },
        );
    }
}
