//! Per-window betweenness centrality via Brandes' algorithm (paper §3.1;
//! Green, McColl & Bader's streaming variant is cited in §3.2 — postmortem
//! computes the exact values per window).

use tempopr_graph::{TemporalCsr, TimeRange};

/// Betweenness scores of one window (unnormalized, undirected convention:
/// each pair counted once).
#[derive(Debug, Clone, PartialEq)]
pub struct BetweennessScores {
    /// Betweenness per vertex (0 for inactive vertices).
    pub score: Vec<f64>,
}

/// Computes exact betweenness centrality of the window `range` with
/// Brandes' algorithm (`O(V·E)` per window on unweighted graphs).
pub fn betweenness_window(tcsr: &TemporalCsr, range: TimeRange) -> BetweennessScores {
    let n = tcsr.num_vertices();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut actives: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        for u in tcsr.active_neighbors(v, range) {
            if u != v {
                adj[v as usize].push(u);
            }
        }
        if !adj[v as usize].is_empty() {
            actives.push(v);
        }
    }
    let mut score = vec![0.0f64; n];
    let mut dist = vec![-1i32; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut order: Vec<u32> = Vec::new();
    for &s in &actives {
        // Reset only touched state.
        for &v in &order {
            dist[v as usize] = -1;
            sigma[v as usize] = 0.0;
            delta[v as usize] = 0.0;
            preds[v as usize].clear();
        }
        dist[s as usize] = -1; // in case s was untouched last round
        sigma[s as usize] = 0.0;
        delta[s as usize] = 0.0;
        preds[s as usize].clear();
        order.clear();

        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            let dv = dist[v as usize];
            for &u in &adj[v as usize] {
                if dist[u as usize] < 0 {
                    dist[u as usize] = dv + 1;
                    order.push(u);
                }
                if dist[u as usize] == dv + 1 {
                    sigma[u as usize] += sigma[v as usize];
                    preds[u as usize].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            for &p in &preds[w as usize] {
                delta[p as usize] += sigma[p as usize] * coeff;
            }
            if w != s {
                score[w as usize] += delta[w as usize];
            }
        }
    }
    // Undirected: every pair was counted from both endpoints.
    for x in &mut score {
        *x /= 2.0;
    }
    BetweennessScores { score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn path_graph_known_values() {
        // 0 - 1 - 2: vertex 1 lies on the single (0,2) shortest path.
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 1)], true);
        let b = betweenness_window(&t, TimeRange::new(0, 10));
        assert!((b.score[1] - 1.0).abs() < 1e-12);
        assert_eq!(b.score[0], 0.0);
        assert_eq!(b.score[2], 0.0);
    }

    #[test]
    fn star_center_carries_all_pairs() {
        // Star with 4 leaves: center on C(4,2) = 6 pairs.
        let events: Vec<Event> = (1..5).map(|v| ev(0, v, 1)).collect();
        let t = TemporalCsr::from_events(5, &events, true);
        let b = betweenness_window(&t, TimeRange::new(0, 10));
        assert!((b.score[0] - 6.0).abs() < 1e-12);
        for leaf in 1..5 {
            assert_eq!(b.score[leaf], 0.0);
        }
    }

    #[test]
    fn cycle_splits_shortest_paths() {
        // 4-cycle: two shortest paths between opposite corners, each
        // mid-vertex gets 1/2 per opposite pair -> each vertex 0.5.
        let t = TemporalCsr::from_events(
            4,
            &[ev(0, 1, 1), ev(1, 2, 1), ev(2, 3, 1), ev(3, 0, 1)],
            true,
        );
        let b = betweenness_window(&t, TimeRange::new(0, 10));
        for v in 0..4 {
            assert!(
                (b.score[v] - 0.5).abs() < 1e-12,
                "vertex {v}: {}",
                b.score[v]
            );
        }
    }

    #[test]
    fn window_filter_reroutes_paths() {
        // Square with a late diagonal: once the diagonal (0,2) appears,
        // vertex 1 and 3 lose their brokerage.
        let t = TemporalCsr::from_events(
            4,
            &[
                ev(0, 1, 1),
                ev(1, 2, 1),
                ev(2, 3, 1),
                ev(3, 0, 1),
                ev(0, 2, 50),
            ],
            true,
        );
        let early = betweenness_window(&t, TimeRange::new(0, 10));
        let late = betweenness_window(&t, TimeRange::new(0, 100));
        // Pair (0,2) no longer routes through 1 or 3.
        assert!(late.score[1] < early.score[1]);
        assert_eq!(late.score[1], 0.0);
        // Vertex 0 still brokers exactly the (1,3) pair (score 0.5).
        assert!((late.score[0] - early.score[0]).abs() < 1e-12);
    }

    #[test]
    fn matches_bruteforce_path_counting() {
        // Brute force: for each pair (s, t), v lies on a shortest path iff
        // d(s,v) + d(v,t) = d(s,t); its share is σ_s(v)·σ_t(v)/σ_s(t).
        let mut events = Vec::new();
        for i in 0..60u32 {
            let u = (i * 13 + 1) % 12;
            let v = (i * 7 + 5) % 12;
            if u != v {
                events.push(ev(u, v, 1));
            }
        }
        let t = TemporalCsr::from_events(12, &events, true);
        let range = TimeRange::new(0, 10);
        let got = betweenness_window(&t, range);

        let n = 12usize;
        let mut adj = vec![Vec::new(); n];
        for v in 0..n as u32 {
            for u in t.active_neighbors(v, range) {
                if u != v {
                    adj[v as usize].push(u as usize);
                }
            }
        }
        let bfs = |s: usize| -> (Vec<i32>, Vec<f64>) {
            let mut dist = vec![-1i32; n];
            let mut cnt = vec![0.0f64; n];
            dist[s] = 0;
            cnt[s] = 1.0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(v) = q.pop_front() {
                let dv = dist[v];
                for &u in &adj[v] {
                    if dist[u] < 0 {
                        dist[u] = dv + 1;
                        q.push_back(u);
                    }
                    if dist[u] == dv + 1 {
                        cnt[u] += cnt[v];
                    }
                }
            }
            (dist, cnt)
        };
        let all: Vec<(Vec<i32>, Vec<f64>)> = (0..n).map(bfs).collect();
        let mut expect = vec![0.0f64; n];
        for s in 0..n {
            for tgt in (s + 1)..n {
                let (ds, cs) = &all[s];
                let (dt, ct) = &all[tgt];
                if ds[tgt] < 0 {
                    continue;
                }
                for v in 0..n {
                    if v == s || v == tgt || ds[v] < 0 || dt[v] < 0 {
                        continue;
                    }
                    if ds[v] + dt[v] == ds[tgt] {
                        expect[v] += cs[v] * ct[v] / cs[tgt];
                    }
                }
            }
        }
        for (v, (g, e)) in got.score.iter().zip(expect.iter()).enumerate() {
            assert!((g - e).abs() < 1e-9, "vertex {v}: {g} vs {e}");
        }
    }

    #[test]
    fn empty_window_all_zero() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 5)], true);
        let b = betweenness_window(&t, TimeRange::new(50, 60));
        assert!(b.score.iter().all(|&x| x == 0.0));
    }
}
