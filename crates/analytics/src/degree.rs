//! Per-window degree statistics (the analysis HyperHeadTail estimates
//! under streaming constraints — paper §3.2; postmortem computes it
//! exactly).

use tempopr_graph::{TemporalCsr, TimeRange};

/// Degree statistics of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Histogram: `histogram[d]` = number of active vertices with degree
    /// `d` (index 0 unused — inactive vertices are excluded).
    pub histogram: Vec<usize>,
    /// Number of active vertices.
    pub active_vertices: usize,
    /// Number of undirected active edges (Σ deg / 2 for symmetric graphs).
    pub directed_edges: usize,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree over active vertices (0 for an empty window).
    pub mean_degree: f64,
}

/// Computes the degree distribution of the window `range`.
pub fn degree_stats(tcsr: &TemporalCsr, range: TimeRange) -> DegreeStats {
    let n = tcsr.num_vertices();
    let mut deg = vec![0u32; n];
    tcsr.active_degrees(range, &mut deg);
    let max_degree = deg.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; max_degree as usize + 1];
    let mut active_vertices = 0usize;
    let mut directed_edges = 0usize;
    for &d in &deg {
        if d > 0 {
            histogram[d as usize] += 1;
            active_vertices += 1;
            directed_edges += d as usize;
        }
    }
    let mean_degree = if active_vertices > 0 {
        directed_edges as f64 / active_vertices as f64
    } else {
        0.0
    };
    DegreeStats {
        histogram,
        active_vertices,
        directed_edges,
        max_degree,
        mean_degree,
    }
}

impl DegreeStats {
    /// The complementary cumulative distribution `P(deg >= d)` for each
    /// degree `d` in `1..=max_degree`.
    pub fn ccdf(&self) -> Vec<f64> {
        if self.active_vertices == 0 {
            return Vec::new();
        }
        let mut out = vec![0.0; self.histogram.len()];
        let mut tail = 0usize;
        for d in (1..self.histogram.len()).rev() {
            tail += self.histogram[d];
            out[d] = tail as f64 / self.active_vertices as f64;
        }
        out.remove(0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn star_distribution() {
        let events: Vec<Event> = (1..5).map(|v| ev(0, v, 1)).collect();
        let t = TemporalCsr::from_events(5, &events, true);
        let s = degree_stats(&t, TimeRange::new(0, 10));
        assert_eq!(s.active_vertices, 5);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.histogram[1], 4);
        assert_eq!(s.histogram[4], 1);
        assert_eq!(s.directed_edges, 8);
        assert!((s.mean_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn duplicate_events_do_not_inflate_degrees() {
        let t = TemporalCsr::from_events(2, &[ev(0, 1, 1), ev(0, 1, 2)], true);
        let s = degree_stats(&t, TimeRange::new(0, 10));
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.directed_edges, 2);
    }

    #[test]
    fn window_filtering_applies() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 100)], true);
        let s = degree_stats(&t, TimeRange::new(0, 10));
        assert_eq!(s.active_vertices, 2);
        let s = degree_stats(&t, TimeRange::new(0, 200));
        assert_eq!(s.active_vertices, 3);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn empty_window() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 5)], true);
        let s = degree_stats(&t, TimeRange::new(50, 60));
        assert_eq!(s.active_vertices, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert!(s.ccdf().is_empty());
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_one() {
        let events: Vec<Event> = (1..6).map(|v| ev(0, v, 1)).chain([ev(1, 2, 1)]).collect();
        let t = TemporalCsr::from_events(6, &events, true);
        let s = degree_stats(&t, TimeRange::new(0, 10));
        let ccdf = s.ccdf();
        assert!((ccdf[0] - 1.0).abs() < 1e-12, "P(deg>=1) = 1 over actives");
        for w in ccdf.windows(2) {
            assert!(w[0] >= w[1], "ccdf must be non-increasing");
        }
    }
}
