//! Connected components of one window of a temporal CSR.
//!
//! The paper (§3.1) lists connected components among the kernels a
//! postmortem sliding-window analysis can drive besides PageRank. The
//! implementation is a weighted union-find with path halving over the
//! window's active edges, traversed straight off the temporal CSR.

use tempopr_graph::{TemporalCsr, TimeRange, VertexId};

/// Component labelling of one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// Component id per vertex (`u32::MAX` for vertices inactive in the
    /// window). Ids are the smallest vertex of the component.
    pub label: Vec<u32>,
    /// Number of components among active vertices.
    pub count: usize,
    /// Size of the largest component (0 for an empty window).
    pub largest: usize,
}

/// Union-find with union by size and path halving.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let g = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = g;
            v = g;
        }
        v
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Computes the connected components of the window `range`.
pub fn components_window(tcsr: &TemporalCsr, range: TimeRange) -> ComponentLabels {
    let n = tcsr.num_vertices();
    let mut dsu = Dsu::new(n);
    let mut active = vec![false; n];
    for v in 0..n as u32 {
        for u in tcsr.active_neighbors(v, range) {
            active[v as usize] = true;
            active[u as usize] = true;
            dsu.union(v, u);
        }
    }
    // Canonical labels: smallest vertex of each component.
    let mut label = vec![u32::MAX; n];
    let mut canon = vec![u32::MAX; n];
    let mut sizes = vec![0usize; n];
    let mut count = 0usize;
    for v in 0..n as u32 {
        if !active[v as usize] {
            continue;
        }
        let r = dsu.find(v) as usize;
        if canon[r] == u32::MAX {
            canon[r] = v; // first (smallest) active vertex of the root
            count += 1;
        }
        label[v as usize] = canon[r];
        sizes[canon[r] as usize] += 1;
    }
    let largest = sizes.iter().copied().max().unwrap_or(0);
    ComponentLabels {
        label,
        count,
        largest,
    }
}

/// Whether two vertices are connected in the window (both active and in
/// the same component).
pub fn connected(labels: &ComponentLabels, a: VertexId, b: VertexId) -> bool {
    let la = labels.label[a as usize];
    la != u32::MAX && la == labels.label[b as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn two_components_plus_isolated() {
        let t = TemporalCsr::from_events(6, &[ev(0, 1, 1), ev(1, 2, 2), ev(3, 4, 3)], true);
        let c = components_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.count, 2);
        assert_eq!(c.largest, 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[1], c.label[2]);
        assert_eq!(c.label[3], c.label[4]);
        assert_ne!(c.label[0], c.label[3]);
        assert_eq!(c.label[5], u32::MAX, "vertex 5 is inactive");
        assert!(connected(&c, 0, 2));
        assert!(!connected(&c, 0, 3));
        assert!(!connected(&c, 0, 5));
    }

    #[test]
    fn window_filter_splits_components() {
        // Edge (1,2) only exists late; the early window sees two pieces.
        let t = TemporalCsr::from_events(4, &[ev(0, 1, 1), ev(2, 3, 1), ev(1, 2, 100)], true);
        let early = components_window(&t, TimeRange::new(0, 10));
        assert_eq!(early.count, 2);
        let late = components_window(&t, TimeRange::new(0, 200));
        assert_eq!(late.count, 1);
        assert_eq!(late.largest, 4);
    }

    #[test]
    fn empty_window() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 5)], true);
        let c = components_window(&t, TimeRange::new(10, 20));
        assert_eq!(c.count, 0);
        assert_eq!(c.largest, 0);
        assert!(c.label.iter().all(|&l| l == u32::MAX));
    }

    #[test]
    fn labels_are_smallest_member() {
        let t = TemporalCsr::from_events(5, &[ev(4, 2, 1), ev(2, 3, 1)], true);
        let c = components_window(&t, TimeRange::new(0, 10));
        assert_eq!(c.label[2], 2);
        assert_eq!(c.label[3], 2);
        assert_eq!(c.label[4], 2);
    }

    #[test]
    fn matches_bruteforce_bfs_on_random_graph() {
        let mut events = Vec::new();
        for i in 0..200u32 {
            events.push(ev((i * 13 + 1) % 30, (i * 7 + 5) % 30, (i % 50) as i64));
        }
        let t = TemporalCsr::from_events(30, &events, true);
        let range = TimeRange::new(10, 35);
        let c = components_window(&t, range);
        // Brute-force BFS.
        let mut adj = vec![Vec::new(); 30];
        for e in &events {
            if range.contains(e.t) && e.u != e.v {
                adj[e.u as usize].push(e.v);
                adj[e.v as usize].push(e.u);
            }
        }
        let mut seen = [u32::MAX; 30];
        for s in 0..30u32 {
            if adj[s as usize].is_empty() || seen[s as usize] != u32::MAX {
                continue;
            }
            let mut stack = vec![s];
            seen[s as usize] = s;
            while let Some(v) = stack.pop() {
                for &u in &adj[v as usize] {
                    if seen[u as usize] == u32::MAX {
                        seen[u as usize] = s;
                        stack.push(u);
                    }
                }
            }
        }
        for (v, (&l, &sn)) in c.label.iter().zip(seen.iter()).enumerate() {
            assert_eq!(l == u32::MAX, sn == u32::MAX, "activity of {v}");
        }
        // Same partition (labels may differ; compare pairwise on a sample).
        for a in 0..30u32 {
            for b in 0..30u32 {
                if seen[a as usize] != u32::MAX && seen[b as usize] != u32::MAX {
                    assert_eq!(
                        seen[a as usize] == seen[b as usize],
                        connected(&c, a, b),
                        "pair ({a},{b})"
                    );
                }
            }
        }
    }
}
