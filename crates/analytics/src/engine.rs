//! The postmortem structure engine: runs the non-PageRank kernels over
//! every window of the sliding-window sequence, reusing the same
//! multi-window representation as the PageRank engine (paper §3.1: "the
//! temporal graph constructed this way could be analyzed ... using other
//! kernels").

use crate::components::components_window;
use crate::degree::degree_stats;
use crate::kcore::kcore_window;
use crate::triangles::triangles_window;
use rayon::prelude::*;
use tempopr_graph::{EventLog, GraphError, MultiWindowSet, PartitionStrategy, WindowSpec};

/// Which structure metrics to compute per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureConfig {
    /// Connected components (count + largest size).
    pub components: bool,
    /// k-core decomposition (degeneracy).
    pub kcore: bool,
    /// Triangle count.
    pub triangles: bool,
    /// Process windows in parallel.
    pub parallel: bool,
    /// Multi-window graphs (0 = one part per ~16 windows).
    pub num_multiwindows: usize,
}

impl Default for StructureConfig {
    fn default() -> Self {
        StructureConfig {
            components: true,
            kcore: true,
            triangles: true,
            parallel: true,
            num_multiwindows: 0,
        }
    }
}

/// Structure metrics of one window. Degree statistics are always present;
/// the optional analyses are `None` when disabled in the config.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureSummary {
    /// Global window index.
    pub window: usize,
    /// Active vertices `|V_i|`.
    pub active_vertices: usize,
    /// Undirected active edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree over active vertices.
    pub mean_degree: f64,
    /// Number of connected components.
    pub components: Option<usize>,
    /// Size of the largest component.
    pub largest_component: Option<usize>,
    /// Degeneracy (maximum core number).
    pub degeneracy: Option<u32>,
    /// Triangle count.
    pub triangles: Option<u64>,
}

/// Runs the configured structure analyses on every window.
///
/// ```
/// use tempopr_analytics::{temporal_structure, StructureConfig};
/// use tempopr_graph::{Event, EventLog, WindowSpec};
/// let log = EventLog::from_unsorted(
///     (0..60u32).map(|i| Event::new(i % 8, (i * 3 + 1) % 8, i as i64)).collect(),
///     8,
/// ).unwrap();
/// let spec = WindowSpec::covering(&log, 20, 10).unwrap();
/// let out = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
/// assert_eq!(out.len(), spec.count);
/// assert!(out[0].components.unwrap() >= 1);
/// ```
pub fn temporal_structure(
    log: &EventLog,
    spec: WindowSpec,
    cfg: &StructureConfig,
) -> Result<Vec<StructureSummary>, GraphError> {
    let parts = if cfg.num_multiwindows == 0 {
        spec.count.div_ceil(16).max(1)
    } else {
        cfg.num_multiwindows
    };
    let set = MultiWindowSet::build(log, spec, parts, true, PartitionStrategy::EqualWindows)?;
    let one = |w: usize| summarize_window(&set, w, cfg);
    let out = if cfg.parallel {
        (0..spec.count).into_par_iter().map(one).collect()
    } else {
        (0..spec.count).map(one).collect()
    };
    Ok(out)
}

fn summarize_window(set: &MultiWindowSet, w: usize, cfg: &StructureConfig) -> StructureSummary {
    let range = set.spec().window(w);
    let part = set.part_of(w);
    let tcsr = part.tcsr();
    let deg = degree_stats(tcsr, range);
    let (components, largest_component) = if cfg.components {
        let c = components_window(tcsr, range);
        (Some(c.count), Some(c.largest))
    } else {
        (None, None)
    };
    let degeneracy = cfg.kcore.then(|| kcore_window(tcsr, range).degeneracy);
    let triangles = cfg.triangles.then(|| triangles_window(tcsr, range));
    StructureSummary {
        window: w,
        active_vertices: deg.active_vertices,
        edges: deg.directed_edges / 2,
        max_degree: deg.max_degree,
        mean_degree: deg.mean_degree,
        components,
        largest_component,
        degeneracy,
        triangles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn log() -> EventLog {
        let mut events = Vec::new();
        for i in 0..300u32 {
            let u = (i * 13 + 1) % 30;
            let v = (i * 7 + 5) % 30;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        EventLog::from_unsorted(events, 30).unwrap()
    }

    #[test]
    fn summaries_cover_all_windows_in_order() {
        let log = log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let out = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
        assert_eq!(out.len(), spec.count);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.window, i);
            assert!(s.components.is_some());
            assert!(s.degeneracy.is_some());
            assert!(s.triangles.is_some());
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let log = log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let par = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
        let seq = temporal_structure(
            &log,
            spec,
            &StructureConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn multiwindow_count_does_not_change_results() {
        let log = log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let a = temporal_structure(
            &log,
            spec,
            &StructureConfig {
                num_multiwindows: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = temporal_structure(
            &log,
            spec,
            &StructureConfig {
                num_multiwindows: spec.count,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_analyses_are_none() {
        let log = log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let out = temporal_structure(
            &log,
            spec,
            &StructureConfig {
                components: false,
                kcore: false,
                triangles: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.iter().all(|s| {
            s.components.is_none() && s.degeneracy.is_none() && s.triangles.is_none()
        }));
        // Degree stats are always there.
        assert!(out.iter().any(|s| s.active_vertices > 0));
    }

    #[test]
    fn consistency_invariants_hold() {
        let log = log();
        let spec = WindowSpec::covering(&log, 60, 25).unwrap();
        let out = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
        for s in &out {
            if s.active_vertices > 0 {
                let comp = s.components.unwrap();
                assert!(comp >= 1);
                assert!(s.largest_component.unwrap() <= s.active_vertices);
                assert!(comp <= s.active_vertices);
                assert!(s.degeneracy.unwrap() as usize <= s.active_vertices);
                assert!((s.max_degree as f64) >= s.mean_degree);
            }
        }
    }
}
