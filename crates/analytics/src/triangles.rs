//! Per-window triangle counting (the analysis of Han & Sethu's streaming
//! edge-sampling estimator — paper §3.2; postmortem computes it exactly).
//!
//! Classic sorted-adjacency intersection counting: materialize each
//! window's active adjacency restricted to higher-numbered neighbors and
//! intersect neighbor lists, so each triangle is counted exactly once.

use tempopr_graph::{TemporalCsr, TimeRange};

/// Counts the triangles of the window `range`.
pub fn triangles_window(tcsr: &TemporalCsr, range: TimeRange) -> u64 {
    let n = tcsr.num_vertices();
    // Forward adjacency: neighbors with id greater than the vertex,
    // sorted (the temporal CSR yields neighbors in ascending order).
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        for u in tcsr.active_neighbors(v, range) {
            if u > v {
                fwd[v as usize].push(u);
            }
        }
    }
    let mut count = 0u64;
    for v in 0..n {
        let nv = &fwd[v];
        for (i, &u) in nv.iter().enumerate() {
            count += intersect_count(&nv[i + 1..], &fwd[u as usize]);
        }
    }
    count
}

/// Number of common elements of two ascending slices.
fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn single_triangle() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 1), ev(2, 0, 1)], true);
        assert_eq!(triangles_window(&t, TimeRange::new(0, 10)), 1);
    }

    #[test]
    fn triangle_broken_by_window() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 1), ev(2, 0, 50)], true);
        assert_eq!(triangles_window(&t, TimeRange::new(0, 10)), 0);
        assert_eq!(triangles_window(&t, TimeRange::new(0, 100)), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut events = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                events.push(ev(u, v, 1));
            }
        }
        let t = TemporalCsr::from_events(4, &events, true);
        assert_eq!(triangles_window(&t, TimeRange::new(0, 10)), 4);
    }

    #[test]
    fn duplicate_events_count_once() {
        let t = TemporalCsr::from_events(
            3,
            &[ev(0, 1, 1), ev(0, 1, 2), ev(1, 2, 1), ev(2, 0, 1)],
            true,
        );
        assert_eq!(triangles_window(&t, TimeRange::new(0, 10)), 1);
    }

    #[test]
    fn matches_bruteforce_on_random_graph() {
        let mut events = Vec::new();
        for i in 0..300u32 {
            let u = (i * 13 + 1) % 20;
            let v = (i * 7 + 5) % 20;
            if u != v {
                events.push(ev(u, v, (i % 40) as i64));
            }
        }
        let t = TemporalCsr::from_events(20, &events, true);
        let range = TimeRange::new(5, 25);
        // Brute force over all vertex triples.
        let mut adj = vec![[false; 20]; 20];
        for e in &events {
            if range.contains(e.t) && e.u != e.v {
                adj[e.u as usize][e.v as usize] = true;
                adj[e.v as usize][e.u as usize] = true;
            }
        }
        let mut expect = 0u64;
        for a in 0..20 {
            for b in (a + 1)..20 {
                for c in (b + 1)..20 {
                    if adj[a][b] && adj[b][c] && adj[a][c] {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(triangles_window(&t, range), expect);
    }

    #[test]
    fn self_loops_do_not_create_triangles() {
        let t = TemporalCsr::from_events(2, &[ev(0, 0, 1), ev(0, 1, 1), ev(1, 1, 1)], true);
        assert_eq!(triangles_window(&t, TimeRange::new(0, 10)), 0);
    }
}
