//! Downstream time-series analysis of per-window rankings — the paper's
//! motivating use case ("one can also be interested in understanding the
//! nature of changes in the graph over time", §1; "applications will have
//! a downstream analysis that will depend on these vectors", §2.2).
//!
//! Operates on the sparse rank vectors the engines emit: top-k extraction,
//! overlap/churn between consecutive windows, Spearman rank correlation,
//! and per-vertex rank trajectories.

use std::collections::HashMap;

/// A sparse ranking: `(vertex, score)` pairs (any score — PageRank, Katz,
/// betweenness, ...).
pub type Ranking<'a> = (&'a [u32], &'a [f64]);

/// The `k` highest-scored vertices, descending by score (ties broken by
/// vertex id for determinism).
///
/// ```
/// use tempopr_analytics::evolution::top_k;
/// let t = top_k(&[4, 7, 9], &[0.2, 0.5, 0.3], 2);
/// assert_eq!(t, vec![(7, 0.5), (9, 0.3)]);
/// ```
pub fn top_k(vertices: &[u32], values: &[f64], k: usize) -> Vec<(u32, f64)> {
    assert_eq!(vertices.len(), values.len());
    let mut pairs: Vec<(u32, f64)> = vertices
        .iter()
        .copied()
        .zip(values.iter().copied())
        .collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// Jaccard similarity of the top-`k` vertex sets of two rankings — the
/// standard "how much did the head of the ranking change" measure.
pub fn topk_jaccard(a: Ranking<'_>, b: Ranking<'_>, k: usize) -> f64 {
    let ta: Vec<u32> = top_k(a.0, a.1, k).into_iter().map(|p| p.0).collect();
    let tb: Vec<u32> = top_k(b.0, b.1, k).into_iter().map(|p| p.0).collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<u32> = ta.into_iter().collect();
    let sb: std::collections::HashSet<u32> = tb.into_iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Spearman rank correlation over the vertices present in *both* rankings
/// (`None` if fewer than 2 shared vertices). Average ranks for ties.
pub fn spearman(a: Ranking<'_>, b: Ranking<'_>) -> Option<f64> {
    let rank_a = fractional_ranks(a.0, a.1);
    let rank_b = fractional_ranks(b.0, b.1);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (v, ra) in &rank_a {
        if let Some(rb) = rank_b.get(v) {
            xs.push(*ra);
            ys.push(*rb);
        }
    }
    if xs.len() < 2 {
        return None;
    }
    pearson(&xs, &ys)
}

/// Fractional (average-for-ties) ranks of a scored vertex set, best = 1.
fn fractional_ranks(vertices: &[u32], values: &[f64]) -> HashMap<u32, f64> {
    let mut pairs: Vec<(u32, f64)> = vertices
        .iter()
        .copied()
        .zip(values.iter().copied())
        .collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = HashMap::with_capacity(pairs.len());
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].1 == pairs[i].1 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for p in &pairs[i..=j] {
            out.insert(p.0, avg);
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// One step of the churn time series between consecutive windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnStep {
    /// The later window's index.
    pub window: usize,
    /// Top-k Jaccard similarity with the previous window.
    pub topk_jaccard: f64,
    /// Spearman correlation with the previous window (`None` when the
    /// shared support is too small).
    pub spearman: Option<f64>,
    /// Vertices that entered the top-k.
    pub entered: Vec<u32>,
    /// Vertices that left the top-k.
    pub left: Vec<u32>,
}

/// Computes the churn series over a sequence of per-window sparse rankings
/// (as `(vertices, values)` pairs in window order).
pub fn churn_series(rankings: &[(Vec<u32>, Vec<f64>)], k: usize) -> Vec<ChurnStep> {
    let mut out = Vec::new();
    for w in 1..rankings.len() {
        let prev = (&rankings[w - 1].0[..], &rankings[w - 1].1[..]);
        let cur = (&rankings[w].0[..], &rankings[w].1[..]);
        let tp: Vec<u32> = top_k(prev.0, prev.1, k).into_iter().map(|p| p.0).collect();
        let tc: Vec<u32> = top_k(cur.0, cur.1, k).into_iter().map(|p| p.0).collect();
        let sp: std::collections::HashSet<u32> = tp.iter().copied().collect();
        let sc: std::collections::HashSet<u32> = tc.iter().copied().collect();
        let mut entered: Vec<u32> = sc.difference(&sp).copied().collect();
        let mut left: Vec<u32> = sp.difference(&sc).copied().collect();
        entered.sort_unstable();
        left.sort_unstable();
        out.push(ChurnStep {
            window: w,
            topk_jaccard: topk_jaccard(prev, cur, k),
            spearman: spearman(prev, cur),
            entered,
            left,
        });
    }
    out
}

/// The rank trajectory of one vertex across windows: its score per window
/// (0 where absent).
pub fn trajectory(rankings: &[(Vec<u32>, Vec<f64>)], vertex: u32) -> Vec<f64> {
    rankings
        .iter()
        .map(|(vs, xs)| match vs.binary_search(&vertex) {
            Ok(i) => xs[i],
            Err(_) => 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(pairs: &[(u32, f64)]) -> (Vec<u32>, Vec<f64>) {
        (
            pairs.iter().map(|p| p.0).collect(),
            pairs.iter().map(|p| p.1).collect(),
        )
    }

    #[test]
    fn top_k_orders_and_breaks_ties_by_id() {
        let (v, x) = r(&[(0, 0.2), (1, 0.5), (2, 0.2), (3, 0.1)]);
        let t = top_k(&v, &x, 3);
        assert_eq!(t, vec![(1, 0.5), (0, 0.2), (2, 0.2)]);
        assert_eq!(top_k(&v, &x, 10).len(), 4);
    }

    #[test]
    fn jaccard_extremes() {
        let a = r(&[(0, 0.6), (1, 0.4)]);
        let b = r(&[(0, 0.4), (1, 0.6)]);
        let c = r(&[(2, 0.5), (3, 0.5)]);
        assert_eq!(topk_jaccard((&a.0, &a.1), (&b.0, &b.1), 2), 1.0);
        assert_eq!(topk_jaccard((&a.0, &a.1), (&c.0, &c.1), 2), 0.0);
        let empty = r(&[]);
        assert_eq!(
            topk_jaccard((&empty.0, &empty.1), (&empty.0, &empty.1), 3),
            1.0
        );
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let a = r(&[(0, 3.0), (1, 2.0), (2, 1.0)]);
        let b = r(&[(0, 30.0), (1, 20.0), (2, 10.0)]);
        assert!((spearman((&a.0, &a.1), (&b.0, &b.1)).unwrap() - 1.0).abs() < 1e-12);
        let c = r(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert!((spearman((&a.0, &a.1), (&c.0, &c.1)).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_partial_overlap_and_small_support() {
        let a = r(&[(0, 3.0), (1, 2.0), (2, 1.0), (9, 5.0)]);
        let b = r(&[(0, 9.0), (1, 5.0), (2, 1.0), (8, 7.0)]);
        // Shared support {0,1,2}: concordant ordering, but the outside
        // vertices (9, 8) shift the within-set ranks, so the correlation is
        // high yet not exactly 1 (analytically ≈ 0.982).
        let rho = spearman((&a.0, &a.1), (&b.0, &b.1)).unwrap();
        assert!(rho > 0.9 && rho < 1.0, "rho = {rho}");
        let tiny = r(&[(0, 1.0)]);
        assert_eq!(spearman((&a.0, &a.1), (&tiny.0, &tiny.1)), None);
    }

    #[test]
    fn spearman_averages_ties() {
        // All-tied ranking has zero variance -> None.
        let a = r(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let b = r(&[(0, 3.0), (1, 2.0), (2, 1.0)]);
        assert_eq!(spearman((&a.0, &a.1), (&b.0, &b.1)), None);
    }

    #[test]
    fn churn_series_tracks_entries_and_exits() {
        let w0 = r(&[(0, 0.5), (1, 0.3), (2, 0.2)]);
        let w1 = r(&[(0, 0.5), (3, 0.3), (2, 0.2)]);
        let steps = churn_series(&[w0, w1], 2);
        assert_eq!(steps.len(), 1);
        let s = &steps[0];
        assert_eq!(s.window, 1);
        assert_eq!(s.entered, vec![3]);
        assert_eq!(s.left, vec![1]);
        assert!((s.topk_jaccard - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_reads_scores_and_absences() {
        let w0 = r(&[(0, 0.5), (2, 0.5)]);
        let w1 = r(&[(2, 1.0)]);
        let w2 = r(&[(0, 0.1), (1, 0.9)]);
        let t = trajectory(&[w0, w1, w2], 0);
        assert_eq!(t, vec![0.5, 0.0, 0.1]);
        let t = trajectory(&[], 0);
        assert!(t.is_empty());
    }
}
