//! Per-window closeness centrality (paper §3.1; the analysis Sarıyüce et
//! al.'s incremental algorithms maintain under streaming — postmortem
//! computes it window by window).
//!
//! Harmonic-style closeness over the window's active graph:
//! `C(v) = Σ_{u reachable from v} 1/d(v, u)`, which handles disconnected
//! windows gracefully (the classic `(n-1)/Σd` form is also provided for
//! vertices whose component is known). Exact computation is one BFS per
//! vertex (`O(V·E)` per window); `sample_sources` caps the number of BFS
//! sources for large windows, scaling the estimate accordingly.

use tempopr_graph::{TemporalCsr, TimeRange};

/// Closeness scores of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosenessScores {
    /// Harmonic closeness per vertex (0 for inactive vertices).
    pub harmonic: Vec<f64>,
    /// Number of BFS sources actually used.
    pub sources_used: usize,
}

/// Computes (exactly or by source sampling) the harmonic closeness of the
/// window `range`.
///
/// `sample_sources = 0` means exact (every active vertex is a source).
/// With sampling, scores are scaled by `actives/sources` so magnitudes stay
/// comparable; sources are chosen deterministically (strided), which is
/// reproducible and spreads across the id space.
pub fn closeness_window(
    tcsr: &TemporalCsr,
    range: TimeRange,
    sample_sources: usize,
) -> ClosenessScores {
    let n = tcsr.num_vertices();
    // Materialize the active adjacency once; BFS from many sources reuses
    // it.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut actives: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        for u in tcsr.active_neighbors(v, range) {
            if u != v {
                adj[v as usize].push(u);
            }
        }
        if !adj[v as usize].is_empty() {
            actives.push(v);
        }
    }
    let mut harmonic = vec![0.0f64; n];
    if actives.is_empty() {
        return ClosenessScores {
            harmonic,
            sources_used: 0,
        };
    }
    let sources: Vec<u32> = if sample_sources == 0 || sample_sources >= actives.len() {
        actives.clone()
    } else {
        let stride = actives.len() as f64 / sample_sources as f64;
        (0..sample_sources)
            .map(|i| actives[(i as f64 * stride) as usize])
            .collect()
    };
    let scale = actives.len() as f64 / sources.len() as f64;
    // BFS per source, accumulating 1/d *into the visited vertices* (the
    // graph is symmetric, so contributions are reciprocal and this equals
    // accumulating at the source; accumulating at targets lets sampling
    // estimate every vertex's score, not just the sources').
    let mut dist = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    for &s in &sources {
        for &v in &actives {
            dist[v as usize] = u32::MAX;
        }
        dist[s as usize] = 0;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let dv = dist[v as usize];
            for &u in &adj[v as usize] {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dv + 1;
                    harmonic[u as usize] += scale / (dv + 1) as f64;
                    queue.push(u);
                }
            }
        }
    }
    ClosenessScores {
        harmonic,
        sources_used: sources.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempopr_graph::Event;

    fn ev(u: u32, v: u32, t: i64) -> Event {
        Event::new(u, v, t)
    }

    #[test]
    fn path_graph_center_is_most_central() {
        // 0 - 1 - 2 - 3 - 4
        let events: Vec<Event> = (0..4).map(|i| ev(i, i + 1, 1)).collect();
        let t = TemporalCsr::from_events(5, &events, true);
        let c = closeness_window(&t, TimeRange::new(0, 10), 0);
        assert!(c.harmonic[2] > c.harmonic[1]);
        assert!(c.harmonic[1] > c.harmonic[0]);
        assert!((c.harmonic[0] - c.harmonic[4]).abs() < 1e-12, "symmetry");
        // Exact value for vertex 2: 2*(1 + 1/2) = 3.
        assert!((c.harmonic[2] - 3.0).abs() < 1e-12);
        assert_eq!(c.sources_used, 5);
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        let t = TemporalCsr::from_events(5, &[ev(0, 1, 1), ev(2, 3, 1)], true);
        let c = closeness_window(&t, TimeRange::new(0, 10), 0);
        assert!((c.harmonic[0] - 1.0).abs() < 1e-12);
        assert!((c.harmonic[2] - 1.0).abs() < 1e-12);
        assert_eq!(c.harmonic[4], 0.0, "inactive vertex");
    }

    #[test]
    fn window_filter_changes_distances() {
        // Chord (0,2) only exists late.
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 1), ev(1, 2, 1), ev(0, 2, 50)], true);
        let early = closeness_window(&t, TimeRange::new(0, 10), 0);
        let late = closeness_window(&t, TimeRange::new(0, 100), 0);
        assert!(late.harmonic[0] > early.harmonic[0]);
    }

    #[test]
    fn sampled_estimate_is_close_on_dense_graph() {
        let mut events = Vec::new();
        for i in 0..400u32 {
            let u = (i * 13 + 1) % 30;
            let v = (i * 7 + 5) % 30;
            if u != v {
                events.push(ev(u, v, 1));
            }
        }
        let t = TemporalCsr::from_events(30, &events, true);
        let range = TimeRange::new(0, 10);
        let exact = closeness_window(&t, range, 0);
        let sampled = closeness_window(&t, range, 15);
        assert_eq!(sampled.sources_used, 15);
        // Rank correlation is too strict for 15 of 30 sources; check the
        // totals agree within 25%.
        let se: f64 = exact.harmonic.iter().sum();
        let ss: f64 = sampled.harmonic.iter().sum();
        assert!((se - ss).abs() / se < 0.25, "{se} vs {ss}");
    }

    #[test]
    fn empty_window_is_all_zero() {
        let t = TemporalCsr::from_events(3, &[ev(0, 1, 5)], true);
        let c = closeness_window(&t, TimeRange::new(50, 60), 0);
        assert!(c.harmonic.iter().all(|&x| x == 0.0));
        assert_eq!(c.sources_used, 0);
    }
}
