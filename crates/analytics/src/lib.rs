//! # tempopr-analytics
//!
//! Postmortem temporal graph analyses beyond PageRank. The paper (§3.1)
//! notes the sliding-window temporal graph "could be analyzed ... using
//! other kernels like closeness and betweenness centrality, connecting
//! component, k-core"; this crate supplies the structural ones, driven by
//! the same multi-window temporal CSR as the PageRank engine:
//!
//! - [`components`]: connected components per window (union-find);
//! - [`kcore`]: k-core decomposition per window (Matula–Beck peeling);
//! - [`degree`]: exact degree distributions (what HyperHeadTail estimates
//!   under streaming constraints);
//! - [`triangles`]: exact triangle counts (what streaming edge-sampling
//!   estimates);
//! - [`closeness`] / [`betweenness`]: exact per-window centralities
//!   (Brandes; BFS with optional source sampling);
//! - [`engine`]: the across-window postmortem driver;
//! - [`evolution`]: downstream rank-change analysis (top-k churn,
//!   Spearman correlation, trajectories) — the paper's motivating
//!   "changes over time" use case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod betweenness;
pub mod closeness;
pub mod components;
pub mod degree;
pub mod engine;
pub mod evolution;
pub mod katz;
pub mod kcore;
pub mod triangles;

pub use betweenness::{betweenness_window, BetweennessScores};
pub use closeness::{closeness_window, ClosenessScores};
pub use components::{components_window, connected, ComponentLabels};
pub use degree::{degree_stats, DegreeStats};
pub use engine::{temporal_structure, StructureConfig, StructureSummary};
pub use evolution::{churn_series, spearman, top_k, topk_jaccard, trajectory, ChurnStep};
pub use katz::{katz_window, KatzConfig, KatzScores};
pub use kcore::{kcore_window, CoreNumbers};
pub use triangles::triangles_window;
