//! SpMM-inspired batched PageRank (paper §4.4).
//!
//! The SpMV kernel reads the whole multi-window temporal CSR once per
//! iteration per window. When several windows live in the *same*
//! multi-window graph, the matrix can be read once for all of them: keep
//! `vl` ("vector length", 8 or 16 in the paper) rank vectors interleaved
//! column-major (`x[v*vl + k]`) and update every lane while each neighbor
//! run is hot in cache. The formerly random accesses to one rank vector
//! become `vl`-wide regular accesses — the access-pattern transformation
//! SpMM is prized for.
//!
//! Window membership per run is folded into a per-run **lane bitmask**,
//! computed once per batch (the single extra read of the matrix) and then
//! reused by every iteration, so the per-iteration inner loop is pure
//! arithmetic plus a popcount-style mask walk.

use crate::error::{FaultKind, KernelError};
use crate::observe::BatchObs;
use crate::pagerank::{guard_check, GuardAction, PrHealth};
use crate::pagerank::{Init, PrConfig, PrStats};
use crate::scheduler::{Balance, Scheduler};
use crate::simd::SimdDispatch;
use tempopr_graph::{TemporalCsr, TimeRange, VertexId, WindowIndexView};

/// Maximum lanes per batch (masks are `u64`).
pub const MAX_LANES: usize = 64;

/// Reusable buffers for batched PageRank.
#[derive(Debug, Default, Clone)]
pub struct SpmmWorkspace {
    /// Interleaved rank matrix, `n * vl`, current iterate.
    pub x: Vec<f64>,
    /// Next iterate.
    pub y: Vec<f64>,
    /// Interleaved `1/outdeg` (0 where inactive or dangling).
    pub inv_deg: Vec<f64>,
    /// Per-vertex lane bitmask: bit `k` set iff the vertex is active in
    /// window `k`.
    pub active_mask: Vec<u64>,
    /// Per-vertex lane bitmask of *dangling* lanes (active, out-degree 0).
    pub dangling_mask: Vec<u64>,
    /// Vertices active in at least one lane, ascending — iterations loop
    /// over this compact list instead of the whole vertex space.
    pub active_list: Vec<u32>,
    /// Run-compressed pull adjacency: offsets per vertex (`n+1`).
    pub run_row: Vec<usize>,
    /// Neighbor per run.
    pub run_nbr: Vec<VertexId>,
    /// In-window lane bitmask per run.
    pub run_mask: Vec<u64>,
}

impl SpmmWorkspace {
    /// Copies lane `k` into `out` (length `n`).
    pub fn copy_lane_into(&self, k: usize, vl: usize, out: &mut [f64]) {
        assert!(k < vl);
        let n = self.x.len() / vl;
        assert_eq!(out.len(), n);
        for (v, o) in out.iter_mut().enumerate() {
            *o = self.x[v * vl + k];
        }
    }
}

/// Runs PageRank simultaneously on up to [`MAX_LANES`] windows of the same
/// temporal CSR.
///
/// `ranges[k]` is lane `k`'s window; `inits[k]` its initialization (see
/// [`Init`]). `pull`/`push` as in [`crate::pagerank::pagerank_window`];
/// pass the same reference for symmetric builds. Lanes converge
/// independently; iteration stops when every lane has converged (or at
/// `cfg.max_iters`). Results are interleaved in `ws.x`
/// (use [`SpmmWorkspace::copy_lane_into`]).
pub fn pagerank_batch(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    ranges: &[TimeRange],
    inits: &[Init<'_>],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut SpmmWorkspace,
) -> Result<Vec<PrStats>, KernelError> {
    pagerank_batch_obs(pull, push, ranges, inits, cfg, sched, ws, BatchObs::off())
}

/// [`pagerank_batch`] with an observation carrier (see [`crate::observe`]).
/// Observation is read-only: ranks are bit-identical with any sink
/// attached.
#[allow(clippy::too_many_arguments)]
pub fn pagerank_batch_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    ranges: &[TimeRange],
    inits: &[Init<'_>],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut SpmmWorkspace,
    obs: BatchObs<'_>,
) -> Result<Vec<PrStats>, KernelError> {
    let vl = ranges.len();
    if vl == 0 || vl > MAX_LANES {
        return Err(KernelError::BadLaneCount { got: vl });
    }
    if inits.len() != vl {
        return Err(KernelError::LaneMismatch {
            lanes: vl,
            args: inits.len(),
        });
    }
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    let directed = !std::ptr::eq(pull, push);

    // --- Per-batch precompute: run-compressed adjacency + lane masks ----
    let t_setup = obs.now();
    build_run_masks(pull, ranges, ws);
    // Out-degrees per lane (interleaved), from the push structure.
    ws.inv_deg.clear();
    ws.inv_deg.resize(n * vl, 0.0);
    ws.active_mask.clear();
    ws.active_mask.resize(n, 0);
    ws.dangling_mask.clear();
    ws.dangling_mask.resize(n, 0);
    let mut out_deg = vec![0u32; vl]; // per-vertex scratch
    for v in 0..n {
        out_deg.iter_mut().for_each(|d| *d = 0);
        let mut in_mask = 0u64;
        if directed {
            // Out-degrees from push runs.
            for run in push.runs(v as VertexId) {
                for (k, r) in ranges.iter().enumerate() {
                    if run.active_in(*r) {
                        out_deg[k] += 1;
                    }
                }
            }
            // In-activity from the precomputed pull masks.
            for i in ws.run_row[v]..ws.run_row[v + 1] {
                in_mask |= ws.run_mask[i];
            }
        } else {
            // Symmetric: pull masks give both degree and activity.
            for i in ws.run_row[v]..ws.run_row[v + 1] {
                let m = ws.run_mask[i];
                in_mask |= m;
                let mut mm = m;
                while mm != 0 {
                    let k = mm.trailing_zeros() as usize;
                    out_deg[k] += 1;
                    mm &= mm - 1;
                }
            }
        }
        let mut active = in_mask;
        let mut dangling = 0u64;
        for (k, &d) in out_deg.iter().enumerate() {
            if d > 0 {
                active |= 1 << k;
                ws.inv_deg[v * vl + k] = 1.0 / d as f64;
            } else if active & (1 << k) != 0 {
                dangling |= 1 << k;
            }
        }
        ws.active_mask[v] = active;
        ws.dangling_mask[v] = dangling;
    }

    // Active-vertex counts per lane, and the union active list.
    ws.active_list.clear();
    let mut n_act = vec![0usize; vl];
    for v in 0..n {
        let mut m = ws.active_mask[v];
        if m != 0 {
            ws.active_list.push(v as u32);
        }
        while m != 0 {
            n_act[m.trailing_zeros() as usize] += 1;
            m &= m - 1;
        }
    }
    obs.setup(&n_act, t_setup);

    batch_iterate(vl, inits, cfg, sched, ws, &n_act, obs)
}

/// [`pagerank_batch`] with per-lane degrees and activity served from
/// precomputed [`WindowIndexView`]s instead of degree walks over the push
/// structure: the per-batch setup keeps only the single pull-mask read of
/// the matrix (needed for the iteration adjacency), eliminating the
/// `Θ(entries · vl)` out-degree pass. Ranks match [`pagerank_batch`]
/// bit-for-bit.
pub fn pagerank_batch_indexed(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    views: &[WindowIndexView<'_>],
    inits: &[Init<'_>],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut SpmmWorkspace,
) -> Result<Vec<PrStats>, KernelError> {
    pagerank_batch_indexed_obs(pull, push, views, inits, cfg, sched, ws, BatchObs::off())
}

/// [`pagerank_batch_indexed`] with an observation carrier (see
/// [`crate::observe`]).
#[allow(clippy::too_many_arguments)]
pub fn pagerank_batch_indexed_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    views: &[WindowIndexView<'_>],
    inits: &[Init<'_>],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut SpmmWorkspace,
    obs: BatchObs<'_>,
) -> Result<Vec<PrStats>, KernelError> {
    let vl = views.len();
    if vl == 0 || vl > MAX_LANES {
        return Err(KernelError::BadLaneCount { got: vl });
    }
    if inits.len() != vl {
        return Err(KernelError::LaneMismatch {
            lanes: vl,
            args: inits.len(),
        });
    }
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }

    let t_setup = obs.now();
    let ranges: Vec<TimeRange> = views.iter().map(|v| v.range).collect();
    build_run_masks(pull, &ranges, ws);
    ws.inv_deg.clear();
    ws.inv_deg.resize(n * vl, 0.0);
    ws.active_mask.clear();
    ws.active_mask.resize(n, 0);
    ws.dangling_mask.clear();
    ws.dangling_mask.resize(n, 0);
    let mut n_act = vec![0usize; vl];
    for (k, view) in views.iter().enumerate() {
        let bit = 1u64 << k;
        n_act[k] = view.vertices.len();
        for (i, &v) in view.vertices.iter().enumerate() {
            let v = v as usize;
            ws.active_mask[v] |= bit;
            ws.inv_deg[v * vl + k] = view.inv_deg[i];
        }
        for &v in view.dangling {
            ws.dangling_mask[v as usize] |= bit;
        }
    }
    ws.active_list.clear();
    for (v, &m) in ws.active_mask.iter().enumerate() {
        if m != 0 {
            ws.active_list.push(v as u32);
        }
    }
    obs.setup(&n_act, t_setup);

    batch_iterate(vl, inits, cfg, sched, ws, &n_act, obs)
}

/// The shared per-batch iteration phase: lane initialization plus the
/// masked batched power iteration over the run-compressed adjacency and
/// activity masks already present in `ws`.
///
/// Three orthogonal optimizations live here; the first two are
/// bit-identical per lane to the plain masked walk (locked in by
/// `tests/prop_simd_parity.rs`):
///
/// - **Dense dispatch**: when a run covers every live lane — the dominant
///   case once windows overlap — the per-lane mask walk is replaced by a
///   [`SimdDispatch::accumulate`] over the full effective stride (AVX2 or
///   unrolled scalar per [`PrConfig::simd`]). Live lanes see the exact
///   multiply/add sequence of the walk; slots belonging to converged or
///   inactive lanes are computed but never read back.
/// - **Converged-lane compaction** ([`PrConfig::compaction`]): once at
///   most half of at least 8 effective lanes are still live, the
///   interleaved state is repacked to the live lanes, shrinking the
///   effective `vl`; converged columns are parked at their original
///   positions and merged back after the loop. Each lane's summation
///   sequence is unchanged, so ranks stay bit-identical.
/// - **Edge-balanced chunking** ([`Balance::Edge`] on the scheduler):
///   parallel chunk boundaries follow the run-count prefix sum instead of
///   row counts. Like a grain-size change, moving chunk boundaries moves
///   reduction grouping, so this is *not* bit-identical to
///   vertex-balanced runs (each configuration is itself deterministic).
///
/// The per-lane L1-diff reduction also carries each lane's rank mass, so
/// the numeric-health guards check every live lane per iteration at the
/// cost of one extra add per (row, live lane). Recovery
/// (renormalize/restart per [`crate::NumericPolicy`]) is per lane —
/// healthy lanes are unaffected by a faulting sibling. Injected faults
/// (`cfg.fault`) target original lane 0, wherever compaction has moved it.
fn batch_iterate(
    vl0: usize,
    inits: &[Init<'_>],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut SpmmWorkspace,
    n_act: &[usize],
    obs: BatchObs<'_>,
) -> Result<Vec<PrStats>, KernelError> {
    let n = ws.active_mask.len();

    // --- Initialization ---------------------------------------------------
    ws.x.clear();
    ws.x.resize(n * vl0, 0.0);
    ws.y.clear();
    ws.y.resize(n * vl0, 0.0);
    for k in 0..vl0 {
        initialize_lane(inits[k], k, vl0, &ws.active_mask, n_act[k], &mut ws.x)?;
    }
    if let Some(FaultKind::CorruptReciprocal) = cfg.fault {
        if let Some(&v) = ws
            .active_list
            .iter()
            .find(|&&v| ws.inv_deg[v as usize * vl0] > 0.0)
        {
            ws.inv_deg[v as usize * vl0] *= 1000.0;
        }
    }

    let dispatch = SimdDispatch::select(cfg.simd);
    let dense = dispatch.dense();
    obs.dispatch(dispatch.isa(), vl0);

    // Edge-balanced chunk plan: degree-weighted boundaries over the active
    // rows (weight = run count + 1 so runless rows still carry the scatter
    // cost). Row counts are independent of the lane width, so one plan
    // serves every iteration, before and after compaction — which also
    // keeps the reduction grouping (and thus the ranks) stable across
    // compaction events.
    let edge_chunks: Option<Vec<std::ops::Range<usize>>> = match sched {
        Some(s) if s.balance == Balance::Edge => {
            let mut prefix = Vec::with_capacity(ws.active_list.len() + 1);
            let mut acc = 0usize;
            prefix.push(0);
            for &v in &ws.active_list {
                let v = v as usize;
                acc += ws.run_row[v + 1] - ws.run_row[v] + 1;
                prefix.push(acc);
            }
            Some(s.chunks_weighted(&prefix))
        }
        _ => None,
    };
    // Run entries the propagation pass walks per round: every run of every
    // active row, however many lanes are live (reported to the observer).
    let edges_per_round: u64 = ws
        .active_list
        .iter()
        .map(|&v| (ws.run_row[v as usize + 1] - ws.run_row[v as usize]) as u64)
        .sum();

    // --- Batched power iteration ------------------------------------------
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let has_dangling = ws.dangling_mask.iter().any(|&m| m != 0);
    let mut stats: Vec<PrStats> = (0..vl0)
        .map(|k| PrStats {
            iterations: 0,
            converged: n_act[k] == 0,
            active_vertices: n_act[k],
            health: PrHealth::default(),
        })
        .collect();

    // Compact lane state: `vl` is the current effective width and
    // `lane_map[j]` the original lane occupying compact slot `j`. `done`,
    // `all_done`, and `n_act_c` live in compact space; `stats` stays in
    // original lane order. Converged columns are parked at their original
    // positions (stride `vl0`) when compaction drops them.
    let mut vl = vl0;
    let mut lane_map: Vec<usize> = (0..vl0).collect();
    let mut n_act_c: Vec<usize> = n_act.to_vec();
    let mut parked: Vec<f64> = Vec::new();

    let mut done: u64 = stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.converged)
        .fold(0u64, |m, (k, _)| m | (1 << k));
    let mut all_done = lane_mask_all(vl);

    let mut iter = 0usize;
    while done != all_done && iter < cfg.max_iters {
        iter += 1;
        match cfg.fault {
            Some(FaultKind::InjectNan { at_iter }) if at_iter == iter => {
                if let Some(&v) = ws.active_list.first() {
                    // Faults target *original* lane 0, which compaction may
                    // have moved to another slot — or parked entirely.
                    match lane_map.iter().position(|&orig| orig == 0) {
                        Some(j) => ws.x[v as usize * vl + j] = f64::NAN,
                        None => parked[v as usize * vl0] = f64::NAN,
                    }
                }
            }
            Some(FaultKind::PanicInKernel) if iter == 1 => {
                // Intentional: models a latent kernel bug for the driver's
                // panic-isolation path.
                panic!("fault injection: panic inside SpMM kernel");
            }
            _ => {}
        }
        let t_round = obs.now();
        // Lanes that already converged are masked out of the pull walk and
        // keep their current values; only live lanes pay for the iteration.
        let live = !done & all_done;
        // Dangling mass per lane (active-list scan).
        let mut base = [0.0f64; MAX_LANES];
        if has_dangling {
            for &v in &ws.active_list {
                let v = v as usize;
                // Mask with `live`: converged lanes hold their values, so
                // accumulating their dangling mass is wasted work (the
                // result is never read for a dead lane).
                let mut m = ws.dangling_mask[v] & live;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    base[k] += ws.x[v * vl + k];
                    m &= m - 1;
                }
            }
        }
        for k in 0..vl {
            if n_act_c[k] > 0 {
                base[k] = alpha / n_act_c[k] as f64 + damp * base[k] / n_act_c[k] as f64;
            }
        }

        let n_active = ws.active_list.len();
        let list = &ws.active_list;
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let active_mask = &ws.active_mask;
        let run_row = &ws.run_row;
        let run_nbr = &ws.run_nbr;
        let run_mask = &ws.run_mask;
        // Compact next-iterate matrix: row r of `ws.y` belongs to
        // active_list[r]; scattered back into `ws.x` after the pass.
        let compact = &mut ws.y[..n_active * vl];
        let body = |r0: usize, rows: &mut [f64]| -> ([f64; MAX_LANES], [f64; MAX_LANES]) {
            let mut diff = [0.0f64; MAX_LANES];
            let mut mass = [0.0f64; MAX_LANES];
            let nrows = rows.len() / vl;
            let mut acc = [0.0f64; MAX_LANES];
            for r in 0..nrows {
                let v = list[r0 + r] as usize;
                let am = active_mask[v];
                let row = &mut rows[r * vl..(r + 1) * vl];
                acc[..vl].iter_mut().for_each(|a| *a = 0.0);
                for i in run_row[v]..run_row[v + 1] {
                    let u = run_nbr[i] as usize;
                    let rm = run_mask[i];
                    if dense && rm & live == live {
                        // Full-mask run: accumulate the whole stride. Live
                        // lanes see the exact add sequence of the walk
                        // below; dead-lane slots are never read back.
                        dispatch.accumulate(
                            &mut acc[..vl],
                            &x[u * vl..(u + 1) * vl],
                            &inv_deg[u * vl..(u + 1) * vl],
                        );
                    } else {
                        let mut m = rm & live;
                        while m != 0 {
                            let k = m.trailing_zeros() as usize;
                            acc[k] += x[u * vl + k] * inv_deg[u * vl + k];
                            m &= m - 1;
                        }
                    }
                }
                for (k, y) in row.iter_mut().enumerate() {
                    let bit = 1u64 << k;
                    let val = if live & bit == 0 {
                        x[v * vl + k] // converged lane: hold its value
                    } else if am & bit != 0 {
                        base[k] + damp * acc[k]
                    } else {
                        0.0
                    };
                    diff[k] += (val - x[v * vl + k]).abs();
                    mass[k] += val;
                    *y = val;
                }
            }
            (diff, mass)
        };
        let reduce = |mut a: ([f64; MAX_LANES], [f64; MAX_LANES]),
                      b: ([f64; MAX_LANES], [f64; MAX_LANES])| {
            for k in 0..MAX_LANES {
                a.0[k] += b.0[k];
                a.1[k] += b.1[k];
            }
            a
        };
        let (diff, mass) = match (sched, &edge_chunks) {
            (Some(s), Some(chunks)) => s.map_reduce_rows_chunked_mut(
                compact,
                vl,
                chunks,
                ([0.0; MAX_LANES], [0.0; MAX_LANES]),
                body,
                reduce,
            ),
            (Some(s), None) => s.map_reduce_rows_mut(
                compact,
                vl,
                ([0.0; MAX_LANES], [0.0; MAX_LANES]),
                body,
                reduce,
            ),
            (None, _) => body(0, compact),
        };
        let t_mid = obs.now();
        for (r, &v) in ws.active_list.iter().enumerate() {
            let v = v as usize;
            ws.x[v * vl..(v + 1) * vl].copy_from_slice(&ws.y[r * vl..(r + 1) * vl]);
        }
        // Per-lane health check and recovery; a faulted lane skips this
        // iteration's convergence test (its diff reflects the pre-recovery
        // iterate).
        let mut faulted = 0u64;
        if cfg.guard.enabled {
            let mut m = live;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                let lane = lane_map[k];
                match guard_check(diff[k], mass[k], lane, iter, cfg, &mut stats[lane].health)? {
                    GuardAction::Proceed => {}
                    GuardAction::Renormalize { scale } => {
                        for &v in &ws.active_list {
                            ws.x[v as usize * vl + k] *= scale;
                        }
                        faulted |= 1 << k;
                        obs.lane_guard(lane, iter, false);
                    }
                    GuardAction::Restart => {
                        initialize_lane(
                            Init::Uniform,
                            k,
                            vl,
                            &ws.active_mask,
                            n_act_c[k],
                            &mut ws.x,
                        )?;
                        faulted |= 1 << k;
                        obs.lane_guard(lane, iter, true);
                    }
                }
            }
        }
        let force = cfg.fault == Some(FaultKind::ForceNonConvergence);
        for k in 0..vl {
            if done & (1 << k) != 0 {
                continue;
            }
            let lane = lane_map[k];
            stats[lane].iterations = iter;
            if faulted & (1 << k) != 0 {
                continue;
            }
            if diff[k] < cfg.tol && !force {
                stats[lane].converged = true;
                done |= 1 << k;
            }
        }
        if obs.is_on() {
            let mut m = live;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                obs.lane_iteration(lane_map[k], iter, diff[k], mass[k]);
            }
            obs.round(
                iter,
                live.count_ones(),
                vl0,
                edges_per_round,
                t_round,
                t_mid,
            );
        }

        // Converged-lane compaction: once at most half of at least 8
        // effective lanes are still live, repack so dense accumulates,
        // scatter, and guards touch only live columns.
        let lc = (!done & all_done).count_ones() as usize;
        if cfg.compaction && lc > 0 && vl >= 8 && lc <= vl / 2 {
            let vl_new = compact_lanes(ws, vl, vl0, done, &mut lane_map, &mut n_act_c, &mut parked);
            obs.compaction(vl, vl_new);
            vl = vl_new;
            done = 0;
            all_done = lane_mask_all(vl);
        }
    }
    // Merge the still-compact columns back over the parked ones and
    // restore the full `vl0`-stride layout (`ws.x` kept its `n * vl0`
    // allocation throughout, so the swap hands back a full-size buffer).
    if vl != vl0 {
        for v in 0..n {
            for (j, &orig) in lane_map.iter().enumerate() {
                parked[v * vl0 + orig] = ws.x[v * vl + j];
            }
        }
        std::mem::swap(&mut ws.x, &mut parked);
    }
    Ok(stats)
}

/// The all-lanes-done mask for an effective width.
fn lane_mask_all(vl: usize) -> u64 {
    if vl >= 64 {
        u64::MAX
    } else {
        (1u64 << vl) - 1
    }
}

/// Repacks the interleaved batch state from `vl` columns down to the lanes
/// still live in `done`, parking converged columns at their original
/// positions (stride `vl0`) in `parked`. Returns the new effective width.
///
/// In-place repacking is safe row-ascending: row `v`'s destination ends at
/// `(v + 1) * vl_new - 1 < (v + 1) * vl`, so writes never reach an unread
/// source row, and the row's own source is staged through a stack buffer
/// first.
fn compact_lanes(
    ws: &mut SpmmWorkspace,
    vl: usize,
    vl0: usize,
    done: u64,
    lane_map: &mut Vec<usize>,
    n_act_c: &mut Vec<usize>,
    parked: &mut Vec<f64>,
) -> usize {
    let n = ws.active_mask.len();
    let keep: Vec<usize> = (0..vl).filter(|j| done & (1u64 << j) == 0).collect();
    let vl_new = keep.len();
    if parked.is_empty() {
        parked.resize(n * vl0, 0.0);
    }
    let mut tmp = [0.0f64; MAX_LANES];
    for v in 0..n {
        tmp[..vl].copy_from_slice(&ws.x[v * vl..(v + 1) * vl]);
        let mut m = done;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            parked[v * vl0 + lane_map[j]] = tmp[j];
            m &= m - 1;
        }
        for (jn, &j) in keep.iter().enumerate() {
            ws.x[v * vl_new + jn] = tmp[j];
        }
        tmp[..vl].copy_from_slice(&ws.inv_deg[v * vl..(v + 1) * vl]);
        for (jn, &j) in keep.iter().enumerate() {
            ws.inv_deg[v * vl_new + jn] = tmp[j];
        }
    }
    for m in ws.active_mask.iter_mut() {
        *m = compress_bits(*m, &keep);
    }
    for m in ws.dangling_mask.iter_mut() {
        *m = compress_bits(*m, &keep);
    }
    for m in ws.run_mask.iter_mut() {
        *m = compress_bits(*m, &keep);
    }
    *lane_map = keep.iter().map(|&j| lane_map[j]).collect();
    *n_act_c = keep.iter().map(|&j| n_act_c[j]).collect();
    vl_new
}

/// Bit `jn` of the result is bit `keep[jn]` of `m`.
fn compress_bits(m: u64, keep: &[usize]) -> u64 {
    let mut out = 0u64;
    for (jn, &j) in keep.iter().enumerate() {
        out |= ((m >> j) & 1) << jn;
    }
    out
}

/// Builds the run-compressed pull adjacency with per-run lane masks.
fn build_run_masks(pull: &TemporalCsr, ranges: &[TimeRange], ws: &mut SpmmWorkspace) {
    let n = pull.num_vertices();
    ws.run_row.clear();
    ws.run_row.reserve(n + 1);
    ws.run_nbr.clear();
    ws.run_mask.clear();
    ws.run_row.push(0);
    for v in 0..n {
        for run in pull.runs(v as VertexId) {
            let mut m = 0u64;
            for (k, r) in ranges.iter().enumerate() {
                if run.active_in(*r) {
                    m |= 1 << k;
                }
            }
            if m != 0 {
                ws.run_nbr.push(run.neighbor);
                ws.run_mask.push(m);
            }
        }
        ws.run_row.push(ws.run_nbr.len());
    }
}

/// Per-lane version of [`crate::pagerank::initialize`] over the interleaved
/// layout.
fn initialize_lane(
    init: Init<'_>,
    k: usize,
    vl: usize,
    active_mask: &[u64],
    n_act: usize,
    x: &mut [f64],
) -> Result<(), KernelError> {
    let n = active_mask.len();
    let bit = 1u64 << k;
    if n_act == 0 {
        for v in 0..n {
            x[v * vl + k] = 0.0;
        }
        return Ok(());
    }
    let n_act_f = n_act as f64;
    match init {
        Init::Uniform => {
            for v in 0..n {
                x[v * vl + k] = if active_mask[v] & bit != 0 {
                    1.0 / n_act_f
                } else {
                    0.0
                };
            }
        }
        Init::Provided(p) => {
            if p.len() != n {
                return Err(KernelError::BadVectorLength {
                    what: "provided init",
                    expected: n,
                    got: p.len(),
                });
            }
            let mut sum = 0.0;
            for v in 0..n {
                if active_mask[v] & bit != 0 && p[v] > 0.0 {
                    sum += p[v];
                }
            }
            if sum <= 0.0 {
                return initialize_lane(Init::Uniform, k, vl, active_mask, n_act, x);
            }
            for v in 0..n {
                x[v * vl + k] = if active_mask[v] & bit != 0 && p[v] > 0.0 {
                    p[v] / sum
                } else {
                    0.0
                };
            }
        }
        Init::Partial(prev) => {
            if prev.len() != n {
                return Err(KernelError::BadVectorLength {
                    what: "previous ranks",
                    expected: n,
                    got: prev.len(),
                });
            }
            let mut shared = 0usize;
            let mut shared_sum = 0.0;
            for v in 0..n {
                if active_mask[v] & bit != 0 && prev[v] > 0.0 {
                    shared += 1;
                    shared_sum += prev[v];
                }
            }
            if shared == 0 || shared_sum <= 0.0 {
                return initialize_lane(Init::Uniform, k, vl, active_mask, n_act, x);
            }
            let factor = (shared as f64 / n_act_f) / shared_sum;
            for v in 0..n {
                x[v * vl + k] = if active_mask[v] & bit == 0 {
                    0.0
                } else if prev[v] > 0.0 {
                    prev[v] * factor
                } else {
                    1.0 / n_act_f
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_window_vec, PrConfig};
    use crate::scheduler::{Partitioner, Scheduler};
    use tempopr_graph::Event;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    fn sample_events() -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..120u32 {
            let u = (i * 13 + 2) % 25;
            let v = (i * 7 + 5) % 25;
            if u != v {
                events.push(Event::new(u, v, (i * 3) as i64));
            }
        }
        events
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    /// Lane `k` as an owned vector (tests only; production callers reuse a
    /// buffer through [`SpmmWorkspace::copy_lane_into`]).
    fn lane_of(ws: &SpmmWorkspace, k: usize, vl: usize) -> Vec<f64> {
        let mut out = vec![0.0; ws.x.len() / vl];
        ws.copy_lane_into(k, vl, &mut out);
        out
    }

    #[test]
    fn batch_matches_per_window_spmv() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges: Vec<TimeRange> = (0..8)
            .map(|k| TimeRange::new(k * 40, k * 40 + 120))
            .collect();
        let inits = vec![Init::Uniform; 8];
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        for (k, r) in ranges.iter().enumerate() {
            let (expect, es) =
                pagerank_window_vec(&t, &t, *r, Init::Uniform, &cfg(), None).unwrap();
            let got = lane_of(&ws, k, 8);
            assert_close(&got, &expect, 1e-9);
            assert_eq!(stats[k].active_vertices, es.active_vertices, "lane {k}");
        }
    }

    #[test]
    fn batch_parallel_matches_sequential() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges: Vec<TimeRange> = (0..16)
            .map(|k| TimeRange::new(k * 20, k * 20 + 90))
            .collect();
        let inits = vec![Init::Uniform; 16];
        let mut seq = SpmmWorkspace::default();
        pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut seq).unwrap();
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 4);
            let mut par = SpmmWorkspace::default();
            pagerank_batch(&t, &t, &ranges, &inits, &cfg(), Some(&s), &mut par).unwrap();
            for k in 0..16 {
                assert_close(&lane_of(&seq, k, 16), &lane_of(&par, k, 16), 1e-9);
            }
        }
    }

    #[test]
    fn batch_directed_matches_spmv() {
        let events = sample_events();
        let out = TemporalCsr::from_events(25, &events, false);
        let pull = out.transpose();
        let ranges = vec![TimeRange::new(0, 150), TimeRange::new(100, 300)];
        let inits = vec![Init::Uniform; 2];
        let mut ws = SpmmWorkspace::default();
        pagerank_batch(&pull, &out, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        for (k, r) in ranges.iter().enumerate() {
            let (expect, _) =
                pagerank_window_vec(&pull, &out, *r, Init::Uniform, &cfg(), None).unwrap();
            assert_close(&lane_of(&ws, k, 2), &expect, 1e-9);
        }
    }

    #[test]
    fn empty_lane_is_all_zero_and_converged() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges = vec![TimeRange::new(0, 100), TimeRange::new(5000, 6000)];
        let inits = vec![Init::Uniform; 2];
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        assert_eq!(stats[1].active_vertices, 0);
        assert!(stats[1].converged);
        assert!(lane_of(&ws, 1, 2).iter().all(|&x| x == 0.0));
        // Lane 0 unaffected by the dead lane.
        let (expect, _) =
            pagerank_window_vec(&t, &t, ranges[0], Init::Uniform, &cfg(), None).unwrap();
        assert_close(&lane_of(&ws, 0, 2), &expect, 1e-9);
    }

    #[test]
    fn partial_init_lane_matches_spmv_partial() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let r0 = TimeRange::new(0, 150);
        let r1 = TimeRange::new(50, 200);
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &cfg(), None).unwrap();
        let ranges = vec![r1];
        let inits = vec![Init::Partial(&prev)];
        let mut ws = SpmmWorkspace::default();
        pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        let (expect, _) =
            pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &cfg(), None).unwrap();
        assert_close(&lane_of(&ws, 0, 1), &expect, 1e-9);
    }

    #[test]
    fn per_lane_iteration_counts_are_tracked() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        // One trivial lane (tiny graph converges fast) and one full lane.
        let ranges = vec![TimeRange::new(0, 3), TimeRange::new(0, 360)];
        let inits = vec![Init::Uniform; 2];
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        assert!(stats[0].converged && stats[1].converged);
        assert!(stats[0].iterations <= stats[1].iterations);
    }

    #[test]
    fn lanes_sum_to_one_each() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges: Vec<TimeRange> = (0..4)
            .map(|k| TimeRange::new(k * 50, k * 50 + 150))
            .collect();
        let inits = vec![Init::Uniform; 4];
        let mut ws = SpmmWorkspace::default();
        pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        for k in 0..4 {
            let s: f64 = lane_of(&ws, k, 4).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "lane {k} sums to {s}");
        }
    }

    #[test]
    fn indexed_batch_is_bit_identical() {
        use tempopr_graph::WindowIndex;
        let events = sample_events();
        let ranges: Vec<TimeRange> = (0..8)
            .map(|k| TimeRange::new(k * 40, k * 40 + 120))
            .collect();
        let inits = vec![Init::Uniform; 8];
        // Symmetric.
        let t = TemporalCsr::from_events(25, &events, true);
        let idx = WindowIndex::build(&t, None, &ranges);
        let views: Vec<_> = (0..8).map(|j| idx.view(j)).collect();
        let mut plain = SpmmWorkspace::default();
        let ps = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut plain).unwrap();
        let mut ixd = SpmmWorkspace::default();
        let is = pagerank_batch_indexed(&t, &t, &views, &inits, &cfg(), None, &mut ixd).unwrap();
        assert_eq!(ps, is);
        assert_eq!(plain.x, ixd.x, "ranks must be bit-identical");
        // Directed, with a scheduler.
        let out = TemporalCsr::from_events(25, &events, false);
        let pull = out.transpose();
        let didx = WindowIndex::build(&out, Some(&pull), &ranges);
        let dviews: Vec<_> = (0..8).map(|j| didx.view(j)).collect();
        let s = Scheduler::new(Partitioner::Simple, 3);
        let mut dplain = SpmmWorkspace::default();
        pagerank_batch(&pull, &out, &ranges, &inits, &cfg(), Some(&s), &mut dplain).unwrap();
        let mut dixd = SpmmWorkspace::default();
        pagerank_batch_indexed(&pull, &out, &dviews, &inits, &cfg(), Some(&s), &mut dixd).unwrap();
        assert_eq!(dplain.x, dixd.x, "directed ranks must be bit-identical");
    }

    #[test]
    fn too_many_lanes_rejected() {
        let t = TemporalCsr::from_events(2, &[Event::new(0, 1, 0)], true);
        let ranges = vec![TimeRange::new(0, 1); 65];
        let inits = vec![Init::Uniform; 65];
        let mut ws = SpmmWorkspace::default();
        let err = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap_err();
        assert_eq!(err, KernelError::BadLaneCount { got: 65 });
        let inits1 = vec![Init::Uniform; 2];
        let ranges1 = vec![TimeRange::new(0, 1); 3];
        let err = pagerank_batch(&t, &t, &ranges1, &inits1, &cfg(), None, &mut ws).unwrap_err();
        assert_eq!(err, KernelError::LaneMismatch { lanes: 3, args: 2 });
    }

    #[test]
    fn lane_fault_recovery_is_isolated() {
        // A NaN injected into lane 0 restarts only that lane; lane 1 must
        // converge to the same ranks as a clean run. The graph must be
        // degree-skewed: on a regular symmetric graph uniform init is the
        // exact fixed point and lane 0 would converge before the injection
        // at iteration 3 ever fires.
        let mut events = Vec::new();
        for i in 1..20u32 {
            events.push(Event::new(0, i, (i * 15) as i64));
            events.push(Event::new(i, (i % 7) + 1, (i * 14) as i64));
        }
        let t = TemporalCsr::from_events(20, &events, true);
        let ranges = vec![TimeRange::new(0, 150), TimeRange::new(100, 300)];
        let inits = vec![Init::Uniform; 2];
        let c = PrConfig {
            fault: Some(crate::FaultKind::InjectNan { at_iter: 3 }),
            ..cfg()
        };
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &c, None, &mut ws).unwrap();
        assert_eq!(stats[0].health.restarts, 1);
        assert!(stats[1].health.is_clean());
        assert!(stats[0].converged && stats[1].converged);
        for (k, &range) in ranges.iter().enumerate() {
            let (expect, _) =
                pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
            for (v, (a, b)) in expect.iter().zip(lane_of(&ws, k, 2).iter()).enumerate() {
                assert!((a - b).abs() < 1e-9, "lane {k} vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batch_guards_do_not_change_healthy_ranks() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges: Vec<TimeRange> = (0..8)
            .map(|k| TimeRange::new(k * 40, k * 40 + 120))
            .collect();
        let inits = vec![Init::Uniform; 8];
        let off = PrConfig {
            guard: crate::GuardConfig::off(),
            ..cfg()
        };
        let mut won = SpmmWorkspace::default();
        let son = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut won).unwrap();
        let mut woff = SpmmWorkspace::default();
        let soff = pagerank_batch(&t, &t, &ranges, &inits, &off, None, &mut woff).unwrap();
        assert_eq!(won.x, woff.x, "guards must be read-only observers");
        assert_eq!(son, soff);
    }

    #[test]
    fn max_lanes_64_supported() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges: Vec<TimeRange> = (0..64).map(|k| TimeRange::new(k * 5, k * 5 + 60)).collect();
        let inits = vec![Init::Uniform; 64];
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut ws).unwrap();
        assert_eq!(stats.len(), 64);
        let (expect, _) =
            pagerank_window_vec(&t, &t, ranges[63], Init::Uniform, &cfg(), None).unwrap();
        assert_close(&lane_of(&ws, 63, 64), &expect, 1e-9);
    }

    /// Staggered windows over the same origin: short lanes converge early,
    /// so dense full-mask runs dominate at first and compaction fires as
    /// the batch drains.
    fn staggered_ranges(vl: usize) -> Vec<TimeRange> {
        (0..vl as i64)
            .map(|k| TimeRange::new(0, 40 + k * 20))
            .collect()
    }

    #[test]
    fn simd_policies_and_compaction_are_bit_identical() {
        use crate::simd::SimdPolicy;
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges = staggered_ranges(16);
        let inits = vec![Init::Uniform; 16];
        // Reference: the pre-vectorization kernel — mask walk, no
        // compaction.
        let base = PrConfig {
            simd: SimdPolicy::BitWalk,
            compaction: false,
            ..cfg()
        };
        let mut rws = SpmmWorkspace::default();
        let rstats = pagerank_batch(&t, &t, &ranges, &inits, &base, None, &mut rws).unwrap();
        for simd in [SimdPolicy::BitWalk, SimdPolicy::Scalar, SimdPolicy::Auto] {
            for compaction in [false, true] {
                let c = PrConfig {
                    simd,
                    compaction,
                    ..cfg()
                };
                let mut w = SpmmWorkspace::default();
                let s = pagerank_batch(&t, &t, &ranges, &inits, &c, None, &mut w).unwrap();
                assert_eq!(s, rstats, "{simd:?} compaction={compaction}");
                assert_eq!(
                    w.x, rws.x,
                    "{simd:?} compaction={compaction}: ranks must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn compaction_is_bit_identical_under_scheduler() {
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges = staggered_ranges(16);
        let inits = vec![Init::Uniform; 16];
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 3);
            let off = PrConfig {
                compaction: false,
                ..cfg()
            };
            let mut woff = SpmmWorkspace::default();
            let soff = pagerank_batch(&t, &t, &ranges, &inits, &off, Some(&s), &mut woff).unwrap();
            let mut won = SpmmWorkspace::default();
            let son = pagerank_batch(&t, &t, &ranges, &inits, &cfg(), Some(&s), &mut won).unwrap();
            assert_eq!(son, soff, "{part:?}");
            assert_eq!(won.x, woff.x, "{part:?}: compaction must not change ranks");
        }
    }

    #[test]
    fn edge_balanced_scheduler_matches_sequential() {
        use crate::scheduler::Balance;
        // Degree-skewed graph: vertex 0 is a hub touching everyone.
        let mut events = Vec::new();
        for i in 1..30u32 {
            events.push(Event::new(0, i, (i * 3) as i64));
            events.push(Event::new(i, (i % 9) + 1, (i * 5) as i64));
        }
        let t = TemporalCsr::from_events(30, &events, true);
        let ranges: Vec<TimeRange> = (0..8).map(|k| TimeRange::new(k * 10, 150)).collect();
        let inits = vec![Init::Uniform; 8];
        let mut seq = SpmmWorkspace::default();
        pagerank_batch(&t, &t, &ranges, &inits, &cfg(), None, &mut seq).unwrap();
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 4).with_balance(Balance::Edge);
            let mut par = SpmmWorkspace::default();
            pagerank_batch(&t, &t, &ranges, &inits, &cfg(), Some(&s), &mut par).unwrap();
            for k in 0..8 {
                assert_close(&lane_of(&seq, k, 8), &lane_of(&par, k, 8), 1e-9);
            }
        }
    }

    #[test]
    fn fault_injection_targets_lane_zero_after_compaction() {
        // 12 trivially-converging lanes park at iteration 1 (16 -> 4
        // effective lanes); the NaN injected at iteration 3 must land on
        // original lane 0 — now at compact slot 0 of 4 — and restart only
        // that lane.
        let mut events = Vec::new();
        for i in 1..20u32 {
            events.push(Event::new(0, i, (i * 15) as i64));
            events.push(Event::new(i, (i % 7) + 1, (i * 14) as i64));
        }
        let t = TemporalCsr::from_events(20, &events, true);
        let mut ranges = vec![TimeRange::new(0, 150)];
        ranges.extend(std::iter::repeat_n(TimeRange::new(0, 15), 12));
        ranges.extend(std::iter::repeat_n(TimeRange::new(100, 300), 3));
        let inits = vec![Init::Uniform; 16];
        let c = PrConfig {
            fault: Some(crate::FaultKind::InjectNan { at_iter: 3 }),
            ..cfg()
        };
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &c, None, &mut ws).unwrap();
        assert_eq!(stats[0].health.restarts, 1);
        for (k, s) in stats.iter().enumerate().skip(1) {
            assert!(s.health.is_clean(), "lane {k} must be untouched");
        }
        assert!(stats.iter().all(|s| s.converged));
        let (expect, _) =
            pagerank_window_vec(&t, &t, ranges[0], Init::Uniform, &cfg(), None).unwrap();
        assert_close(&lane_of(&ws, 0, 16), &expect, 1e-9);
    }

    #[test]
    fn dispatch_and_compaction_are_observed() {
        use crate::observe::KernelObserver;
        use std::sync::Mutex;
        #[derive(Default)]
        struct Rec {
            dispatches: Mutex<Vec<(&'static str, u32)>>,
            compactions: Mutex<Vec<(u32, u32)>>,
        }
        impl KernelObserver for Rec {
            fn on_batch_dispatch(&self, isa: &'static str, lanes: u32) {
                self.dispatches.lock().unwrap().push((isa, lanes));
            }
            fn on_batch_compaction(&self, from: u32, to: u32) {
                self.compactions.lock().unwrap().push((from, to));
            }
        }
        let events = sample_events();
        let t = TemporalCsr::from_events(25, &events, true);
        let ranges = staggered_ranges(16);
        let inits = vec![Init::Uniform; 16];
        let rec = Rec::default();
        let mut ws = SpmmWorkspace::default();
        pagerank_batch_obs(
            &t,
            &t,
            &ranges,
            &inits,
            &cfg(),
            None,
            &mut ws,
            BatchObs::new(&rec, &[]),
        )
        .unwrap();
        let dispatches = rec.dispatches.lock().unwrap().clone();
        assert_eq!(dispatches.len(), 1);
        assert_eq!(dispatches[0].1, 16);
        assert!(["avx2", "scalar", "bitwalk"].contains(&dispatches[0].0));
        let compactions = rec.compactions.lock().unwrap().clone();
        assert!(
            !compactions.is_empty(),
            "staggered convergence must trigger at least one compaction"
        );
        for &(from, to) in &compactions {
            assert!(to < from, "compaction must shrink: {from} -> {to}");
            assert!(to as usize <= from as usize / 2);
        }
    }

    #[test]
    fn compress_bits_compacts_kept_positions() {
        assert_eq!(compress_bits(0b1001_0101, &[0, 2, 4, 5, 7]), 0b10111);
        assert_eq!(compress_bits(u64::MAX, &[63]), 1);
        assert_eq!(compress_bits(0, &[1, 2, 3]), 0);
    }
}
