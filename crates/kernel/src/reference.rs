//! Reference PageRank on an explicit edge list.
//!
//! This is the executable specification every optimized kernel in the
//! workspace is tested against: a direct, allocation-happy implementation
//! of the paper's Eq. 1 with the shared semantics documented in
//! [`crate::pagerank`] (active vertex set, dangling redistribution,
//! simple-graph dedup). It is deliberately slow and obvious.

use crate::pagerank::PrConfig;

/// Runs PageRank by power iteration over a directed edge list.
///
/// Semantics (shared by all kernels in this workspace):
/// - edges are deduplicated (simple graph);
/// - the *active* set `A` is every vertex with at least one incident edge
///   (in or out); `n = |A|`;
/// - inactive vertices get rank 0; active ones start at `1/n`;
/// - each iteration: `y[v] = α/n + (1-α)·(Σ_{u→v} x[u]/outdeg(u) + D/n)`
///   where `D` is the rank mass of active vertices with out-degree 0;
/// - stop when the L1 difference drops below `cfg.tol` or after
///   `cfg.max_iters` iterations.
///
/// Returns the rank vector (length `num_vertices`).
pub fn reference_pagerank(num_vertices: usize, edges: &[(u32, u32)], cfg: &PrConfig) -> Vec<f64> {
    let mut edges: Vec<(u32, u32)> = edges.to_vec();
    edges.sort_unstable();
    edges.dedup();
    let mut outdeg = vec![0usize; num_vertices];
    let mut active = vec![false; num_vertices];
    for &(u, v) in &edges {
        outdeg[u as usize] += 1;
        active[u as usize] = true;
        active[v as usize] = true;
    }
    let n_active = active.iter().filter(|&&a| a).count();
    if n_active == 0 {
        return vec![0.0; num_vertices];
    }
    let n = n_active as f64;
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut x = vec![0.0f64; num_vertices];
    for v in 0..num_vertices {
        if active[v] {
            x[v] = 1.0 / n;
        }
    }
    let mut y = vec![0.0f64; num_vertices];
    for _ in 0..cfg.max_iters {
        let dangling: f64 = (0..num_vertices)
            .filter(|&v| active[v] && outdeg[v] == 0)
            .map(|v| x[v])
            .sum();
        let base = alpha / n + damp * dangling / n;
        for v in 0..num_vertices {
            y[v] = if active[v] { base } else { 0.0 };
        }
        for &(u, v) in &edges {
            y[v as usize] += damp * x[u as usize] / outdeg[u as usize] as f64;
        }
        let diff: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut y);
        if diff < cfg.tol {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)];
        let x = reference_pagerank(4, &edges, &cfg());
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn symmetric_pair_has_equal_ranks() {
        let edges = vec![(0, 1), (1, 0)];
        let x = reference_pagerank(2, &edges, &cfg());
        assert!((x[0] - 0.5).abs() < 1e-9);
        assert!((x[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inactive_vertices_get_zero() {
        let edges = vec![(0, 1), (1, 0)];
        let x = reference_pagerank(5, &edges, &cfg());
        assert_eq!(x[2], 0.0);
        assert_eq!(x[3], 0.0);
        assert_eq!(x[4], 0.0);
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_mass_redistributed() {
        // 0 -> 1, 1 has no out-edges: dangling. Sum must still be 1.
        let edges = vec![(0, 1)];
        let x = reference_pagerank(2, &edges, &cfg());
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // 1 receives everything 0 sends, so rank(1) > rank(0).
        assert!(x[1] > x[0]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let a = reference_pagerank(3, &[(0, 1), (0, 1), (1, 2), (2, 0)], &cfg());
        let b = reference_pagerank(3, &[(0, 1), (1, 2), (2, 0)], &cfg());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn star_center_ranks_highest() {
        // Undirected star: center 0 with leaves 1..=4.
        let mut edges = Vec::new();
        for leaf in 1..5u32 {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        let x = reference_pagerank(5, &edges, &cfg());
        for leaf in 1..5 {
            assert!(x[0] > x[leaf]);
            assert!((x[1] - x[leaf]).abs() < 1e-9);
        }
    }

    #[test]
    fn known_two_node_directed_chain_values() {
        // 0 -> 1 with dangling redistribution has a closed form:
        // x0 = a/n + d*D/n, x1 = x0 + d*x0 where D = x1 (dangling).
        // Verify fixed point numerically: x satisfies the equations.
        let c = cfg();
        let x = reference_pagerank(2, &[(0, 1)], &c);
        let n = 2.0;
        let a = c.alpha;
        let d = 1.0 - a;
        let dang = x[1];
        let x0 = a / n + d * dang / n;
        let x1 = a / n + d * (dang / n + x[0]);
        assert!((x[0] - x0).abs() < 1e-9);
        assert!((x[1] - x1).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_all_zero() {
        let x = reference_pagerank(3, &[], &cfg());
        assert_eq!(x, vec![0.0; 3]);
    }
}
