//! Personalized PageRank on a window (an extension beyond the paper):
//! teleportation lands on a preference distribution instead of uniformly,
//! turning the per-window ranking into "importance relative to these seed
//! vertices" — the natural tool for the paper's §3.2 use cases (tracking
//! specific actors through an organizational crisis).

use crate::error::KernelError;
use crate::pagerank::{guard_check, GuardAction, PrConfig, PrHealth, PrStats, PrWorkspace};
use crate::scheduler::Scheduler;
use tempopr_graph::{TemporalCsr, TimeRange, VertexId};

/// Computes personalized PageRank for one window.
///
/// `preference` is a non-negative weighting over the vertex space (any
/// scale); it is masked to the window's active set and normalized. If no
/// active vertex carries preference mass, the call falls back to the
/// uniform teleport (= standard PageRank). Dangling mass teleports with
/// the same preference. Semantics otherwise match
/// [`crate::pagerank::pagerank_window`]; the result lands in `ws.x`.
pub fn pagerank_window_personalized(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    preference: &[f64],
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    if preference.len() != n {
        return Err(KernelError::BadVectorLength {
            what: "preference",
            expected: n,
            got: preference.len(),
        });
    }
    if !preference.iter().all(|&p| p >= 0.0) {
        return Err(KernelError::BadVectorLength {
            what: "preference (negative weight)",
            expected: n,
            got: preference.len(),
        });
    }
    ws.ensure(n);
    let directed = !std::ptr::eq(pull, push);

    // Degree / activity pass (as in the standard kernel).
    let mut has_dangling = false;
    for v in 0..n {
        let out = push.active_degree(v as VertexId, range) as u32;
        let act = out > 0 || (directed && pull.active_degree(v as VertexId, range) > 0);
        ws.deg_out[v] = out;
        ws.active[v] = act;
        if act {
            ws.active_list.push(v as u32);
            if out == 0 {
                has_dangling = true;
            } else {
                ws.inv_deg[v] = 1.0 / out as f64;
            }
        }
    }
    let n_act = ws.active_list.len();
    if n_act == 0 {
        return Ok(PrStats::empty());
    }
    let n_act_f = n_act as f64;

    // Normalized teleport vector over the active set, stored in deg_in's
    // slot... no — keep it separate and simple: a local buffer.
    let mut tele = vec![0.0f64; n];
    let mass: f64 = ws.active_list.iter().map(|&v| preference[v as usize]).sum();
    if mass > 0.0 {
        for &v in &ws.active_list {
            tele[v as usize] = preference[v as usize] / mass;
        }
    } else {
        for &v in &ws.active_list {
            tele[v as usize] = 1.0 / n_act_f;
        }
    }

    // Start from the teleport distribution (the PPR analogue of uniform
    // init; it is already a distribution over the active set).
    ws.x.copy_from_slice(&tele);

    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut iterations = 0;
    let mut converged = false;
    let mut health = PrHealth::default();
    while iterations < cfg.max_iters {
        iterations += 1;
        let list = &ws.active_list;
        let dangling: f64 = if has_dangling {
            list.iter()
                .filter(|&&v| ws.deg_out[v as usize] == 0)
                .map(|&v| ws.x[v as usize])
                .sum()
        } else {
            0.0
        };
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let tele_ref = &tele;
        let compact = &mut ws.y[..n_act];
        let body = |off: usize, slice: &mut [f64]| {
            let mut d = 0.0;
            let mut m = 0.0;
            for (i, yv) in slice.iter_mut().enumerate() {
                let v = list[off + i];
                let mut s = 0.0;
                for run in pull.runs(v) {
                    if run.active_in(range) {
                        let u = run.neighbor as usize;
                        s += x[u] * inv_deg[u];
                    }
                }
                let val = (alpha + damp * dangling) * tele_ref[v as usize] + damp * s;
                d += (val - x[v as usize]).abs();
                m += val;
                *yv = val;
            }
            (d, m)
        };
        let (diff, mass) = match sched {
            Some(s) => s.map_reduce_slice_mut(compact, (0.0f64, 0.0f64), body, |a, b| {
                (a.0 + b.0, a.1 + b.1)
            }),
            None => body(0, compact),
        };
        match guard_check(diff, mass, 0, iterations, cfg, &mut health)? {
            GuardAction::Proceed => {}
            GuardAction::Renormalize { scale } => {
                for (i, &v) in ws.active_list.iter().enumerate() {
                    ws.x[v as usize] = ws.y[i] * scale;
                }
                continue;
            }
            GuardAction::Restart => {
                // Restart from the teleport distribution (the PPR analogue
                // of the uniform restart).
                ws.x.copy_from_slice(&tele);
                continue;
            }
        }
        for (i, &v) in ws.active_list.iter().enumerate() {
            ws.x[v as usize] = ws.y[i];
        }
        if diff < cfg.tol {
            converged = true;
            break;
        }
    }
    Ok(PrStats {
        iterations,
        converged,
        active_vertices: n_act,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_window_vec, Init};
    use tempopr_graph::Event;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    fn sample_events() -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..150u32 {
            let u = (i * 13 + 2) % 30;
            let v = (i * 7 + 5) % 30;
            if u != v {
                events.push(Event::new(u, v, (i * 2) as i64));
            }
        }
        events
    }

    /// Dense personalized reference by long power iteration.
    fn dense_ppr(n: usize, edges: &[(u32, u32)], pref: &[f64], alpha: f64) -> Vec<f64> {
        let mut edges: Vec<(u32, u32)> = edges.to_vec();
        edges.sort_unstable();
        edges.dedup();
        let mut outdeg = vec![0usize; n];
        let mut active = vec![false; n];
        for &(u, v) in &edges {
            outdeg[u as usize] += 1;
            active[u as usize] = true;
            active[v as usize] = true;
        }
        let mass: f64 = (0..n).filter(|&v| active[v]).map(|v| pref[v]).sum();
        let n_act = active.iter().filter(|&&a| a).count();
        let tele: Vec<f64> = (0..n)
            .map(|v| {
                if !active[v] {
                    0.0
                } else if mass > 0.0 {
                    pref[v] / mass
                } else {
                    1.0 / n_act as f64
                }
            })
            .collect();
        let mut x = tele.clone();
        let damp = 1.0 - alpha;
        for _ in 0..2000 {
            let dangling: f64 = (0..n)
                .filter(|&v| active[v] && outdeg[v] == 0)
                .map(|v| x[v])
                .sum();
            let mut y: Vec<f64> = (0..n)
                .map(|v| (alpha + damp * dangling) * tele[v])
                .collect();
            for &(u, v) in &edges {
                y[v as usize] += damp * x[u as usize] / outdeg[u as usize] as f64;
            }
            x = y;
        }
        x
    }

    fn sym(events: &[Event], range: TimeRange) -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for ev in events {
            if range.contains(ev.t) {
                e.push((ev.u, ev.v));
                if ev.u != ev.v {
                    e.push((ev.v, ev.u));
                }
            }
        }
        e
    }

    #[test]
    fn uniform_preference_equals_standard_pagerank() {
        let events = sample_events();
        let t = TemporalCsr::from_events(30, &events, true);
        let range = TimeRange::new(0, 200);
        let (std_pr, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
        let pref = vec![1.0; 30];
        let mut ws = PrWorkspace::default();
        let stats =
            pagerank_window_personalized(&t, &t, range, &pref, &cfg(), None, &mut ws).unwrap();
        assert!(stats.converged);
        for (v, (a, b)) in std_pr.iter().zip(ws.x.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn matches_dense_reference_with_seed_set() {
        let events = sample_events();
        let t = TemporalCsr::from_events(30, &events, true);
        let range = TimeRange::new(50, 250);
        let mut pref = vec![0.0; 30];
        pref[3] = 2.0;
        pref[7] = 1.0;
        let mut ws = PrWorkspace::default();
        pagerank_window_personalized(&t, &t, range, &pref, &cfg(), None, &mut ws).unwrap();
        let expect = dense_ppr(30, &sym(&events, range), &pref, 0.15);
        for (v, (a, b)) in ws.x.iter().zip(expect.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "vertex {v}: {a} vs {b}");
        }
        // Mass concentrates near the seeds.
        let sum: f64 = ws.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(ws.x[3] > 1.0 / 30.0, "seed outranks uniform share");
    }

    #[test]
    fn seeds_outside_active_set_fall_back_to_uniform() {
        let events = vec![Event::new(0, 1, 5), Event::new(1, 2, 6)];
        let t = TemporalCsr::from_events(5, &events, true);
        let range = TimeRange::new(0, 10);
        let mut pref = vec![0.0; 5];
        pref[4] = 1.0; // vertex 4 is inactive in this window
        let mut ws = PrWorkspace::default();
        pagerank_window_personalized(&t, &t, range, &pref, &cfg(), None, &mut ws).unwrap();
        let (std_pr, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
        for (a, b) in ws.x.iter().zip(std_pr.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let events = sample_events();
        let t = TemporalCsr::from_events(30, &events, true);
        let range = TimeRange::new(0, 300);
        let mut pref = vec![0.0; 30];
        pref[0] = 1.0;
        let mut seq = PrWorkspace::default();
        pagerank_window_personalized(&t, &t, range, &pref, &cfg(), None, &mut seq).unwrap();
        let sched = Scheduler::new(crate::scheduler::Partitioner::Simple, 4);
        let mut par = PrWorkspace::default();
        pagerank_window_personalized(&t, &t, range, &pref, &cfg(), Some(&sched), &mut par).unwrap();
        for (a, b) in seq.x.iter().zip(par.x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_preference_rejected() {
        let t = TemporalCsr::from_events(2, &[Event::new(0, 1, 1)], true);
        let mut ws = PrWorkspace::default();
        let r = pagerank_window_personalized(
            &t,
            &t,
            TimeRange::new(0, 10),
            &[1.0, -1.0],
            &cfg(),
            None,
            &mut ws,
        );
        assert!(matches!(r, Err(KernelError::BadVectorLength { .. })));
    }

    #[test]
    fn empty_window_is_zero() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let mut ws = PrWorkspace::default();
        let stats = pagerank_window_personalized(
            &t,
            &t,
            TimeRange::new(50, 60),
            &[1.0, 1.0, 1.0],
            &cfg(),
            None,
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.active_vertices, 0);
    }
}
