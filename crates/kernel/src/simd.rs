//! Runtime-dispatched inner loops for the batched (SpMM) kernel.
//!
//! The batched hot loop accumulates `acc[k] += x[u·vl+k] * inv_deg[u·vl+k]`
//! over the lanes named by a per-run bitmask. When a run covers *every*
//! live lane (`run_mask & live == live` — the dominant case once windows
//! overlap), walking the mask bit by bit wastes the regular `vl`-wide
//! stride the SpMM layout was built for. This module provides that dense
//! full-width accumulate in three interchangeable implementations:
//!
//! - **avx2**: 4-wide `std::arch` double ops behind a runtime
//!   `is_x86_feature_detected!("avx2")` check;
//! - **scalar**: a portable 4-way unrolled loop (auto-vectorizes on most
//!   targets);
//! - **bitwalk**: no dense path at all — [`SimdDispatch::dense`] reports
//!   `false` and the kernel keeps the pre-existing mask walk for every
//!   run. This is the reference the parity tests compare against.
//!
//! # Bit-identity
//!
//! Every implementation performs, per lane, the same multiplies and adds
//! in the same order as the scalar mask walk. The AVX2 path deliberately
//! uses `_mm256_mul_pd` + `_mm256_add_pd` rather than a fused
//! multiply-add: FMA rounds once where `acc += x * inv` rounds twice, and
//! Rust never contracts separate `f64` ops on its own, so fusing would
//! change low-order bits. Lanes are independent vector slots (no
//! horizontal operations), so per-lane rounding matches the scalar loop
//! exactly and ranks are bit-identical across all three implementations.
//!
//! # Selection
//!
//! [`SimdDispatch::select`] resolves a [`SimdPolicy`]: an explicit
//! `Scalar`/`BitWalk` always wins; `Auto` defers to the `TEMPOPR_SIMD`
//! environment variable (`scalar`, `bitwalk`, or `auto`; read once per
//! process) and otherwise picks the best detected ISA. The `Avx2` variant
//! is only constructible after detection succeeds, which is what makes the
//! one `unsafe` call site below sound — and why this file is the only
//! place in the crate allowed to contain `unsafe` at all (CI greps for
//! it).

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// How the batched kernel's inner loop should be implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Detect at runtime: the `TEMPOPR_SIMD` environment variable if set,
    /// otherwise the widest ISA the CPU supports (AVX2 on x86-64, the
    /// portable unrolled loop elsewhere).
    #[default]
    Auto,
    /// Force the portable unrolled scalar path (still uses the dense
    /// full-mask specialization).
    Scalar,
    /// Disable the dense specialization entirely and walk every run's lane
    /// bitmask — the pre-vectorization kernel, kept as the parity and
    /// ablation baseline.
    BitWalk,
}

/// The resolved inner-loop implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    BitWalk,
    Scalar,
    Avx2,
}

/// A resolved, ready-to-call dense accumulate. `Copy` so kernels can
/// capture it in parallel closures for free; the AVX2 variant can only be
/// obtained through [`SimdDispatch::select`] after feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdDispatch {
    kind: Kind,
}

impl SimdDispatch {
    /// Resolves `policy` against the environment override and the CPU.
    pub fn select(policy: SimdPolicy) -> SimdDispatch {
        let effective = match policy {
            SimdPolicy::Auto => env_policy(),
            explicit => explicit,
        };
        let kind = match effective {
            SimdPolicy::Scalar => Kind::Scalar,
            SimdPolicy::BitWalk => Kind::BitWalk,
            SimdPolicy::Auto => detect(),
        };
        SimdDispatch { kind }
    }

    /// The selected implementation, for telemetry: `"avx2"`, `"scalar"`,
    /// or `"bitwalk"`.
    pub fn isa(&self) -> &'static str {
        match self.kind {
            Kind::BitWalk => "bitwalk",
            Kind::Scalar => "scalar",
            Kind::Avx2 => "avx2",
        }
    }

    /// Whether the kernel should take the dense full-mask path (false only
    /// for [`SimdPolicy::BitWalk`]).
    pub fn dense(&self) -> bool {
        self.kind != Kind::BitWalk
    }

    /// `acc[k] += x[k] * inv[k]` for every `k` — the dense accumulate over
    /// one neighbor's full lane stride. All three slices must have the
    /// same length (the effective `vl`); per-lane rounding is identical
    /// across implementations (see the module docs).
    #[inline]
    pub fn accumulate(&self, acc: &mut [f64], x: &[f64], inv: &[f64]) {
        debug_assert!(acc.len() == x.len() && acc.len() == inv.len());
        match self.kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2` is only ever constructed by `detect()`
            // after `is_x86_feature_detected!("avx2")` returned true on
            // this CPU.
            Kind::Avx2 => unsafe { accumulate_avx2(acc, x, inv) },
            _ => accumulate_scalar(acc, x, inv),
        }
    }
}

/// The widest implementation this CPU supports.
fn detect() -> Kind {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Kind::Avx2;
    }
    Kind::Scalar
}

/// The `TEMPOPR_SIMD` override, read once per process. Unset, empty,
/// `auto`, or unrecognized values all mean "detect".
fn env_policy() -> SimdPolicy {
    static ENV: OnceLock<SimdPolicy> = OnceLock::new();
    *ENV.get_or_init(|| parse_env(std::env::var("TEMPOPR_SIMD").ok().as_deref()))
}

/// Parses a `TEMPOPR_SIMD` value (split out from the process environment
/// for testability).
fn parse_env(value: Option<&str>) -> SimdPolicy {
    match value.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("scalar") => SimdPolicy::Scalar,
        Some("bitwalk") => SimdPolicy::BitWalk,
        _ => SimdPolicy::Auto,
    }
}

/// Portable dense accumulate, unrolled 4-wide to mirror the AVX2 stride.
fn accumulate_scalar(acc: &mut [f64], x: &[f64], inv: &[f64]) {
    let n = acc.len().min(x.len()).min(inv.len());
    let (acc, x, inv) = (&mut acc[..n], &x[..n], &inv[..n]);
    let mut k = 0;
    while k + 4 <= n {
        acc[k] += x[k] * inv[k];
        acc[k + 1] += x[k + 1] * inv[k + 1];
        acc[k + 2] += x[k + 2] * inv[k + 2];
        acc[k + 3] += x[k + 3] * inv[k + 3];
        k += 4;
    }
    while k < n {
        acc[k] += x[k] * inv[k];
        k += 1;
    }
}

/// AVX2 dense accumulate: 4 doubles per step, unaligned loads (the
/// interleaved rank matrix has no alignment guarantee), scalar tail.
///
/// # Safety
/// The caller must have verified AVX2 support on the running CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(acc: &mut [f64], x: &[f64], inv: &[f64]) {
    use std::arch::x86_64::{_mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_storeu_pd};
    let n = acc.len().min(x.len()).min(inv.len());
    let mut k = 0;
    while k + 4 <= n {
        // SAFETY: `k + 4 <= n` bounds every 4-wide unaligned load/store
        // within the slices.
        unsafe {
            let xv = _mm256_loadu_pd(x.as_ptr().add(k));
            let iv = _mm256_loadu_pd(inv.as_ptr().add(k));
            let av = _mm256_loadu_pd(acc.as_ptr().add(k));
            // Separate multiply and add — NOT fmadd — so each lane rounds
            // exactly like the scalar `acc[k] += x[k] * inv[k]`.
            let sum = _mm256_add_pd(av, _mm256_mul_pd(xv, iv));
            _mm256_storeu_pd(acc.as_mut_ptr().add(k), sum);
        }
        k += 4;
    }
    while k < n {
        acc[k] += x[k] * inv[k];
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic, ugly (non-round) doubles so rounding differences
    /// would actually show.
    fn noisy(len: usize, salt: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15 ^ salt);
                // Map to (0, 1) with a full mantissa's worth of entropy.
                (h >> 11) as f64 / (1u64 << 53) as f64 + 1e-9
            })
            .collect()
    }

    fn reference(acc: &mut [f64], x: &[f64], inv: &[f64]) {
        for k in 0..acc.len() {
            acc[k] += x[k] * inv[k];
        }
    }

    #[test]
    fn scalar_matches_reference_bitwise() {
        for len in [0usize, 1, 3, 4, 5, 8, 13, 16, 31, 64] {
            let x = noisy(len, 1);
            let inv = noisy(len, 2);
            let mut a = noisy(len, 3);
            let mut b = a.clone();
            accumulate_scalar(&mut a, &x, &inv);
            reference(&mut b, &x, &inv);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        for len in [1usize, 4, 7, 8, 15, 16, 32, 33, 64] {
            let x = noisy(len, 11);
            let inv = noisy(len, 12);
            let mut a = noisy(len, 13);
            let mut b = a.clone();
            // SAFETY: AVX2 support checked above.
            unsafe { accumulate_avx2(&mut a, &x, &inv) };
            accumulate_scalar(&mut b, &x, &inv);
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "len {len}");
        }
    }

    #[test]
    fn explicit_policies_bypass_detection() {
        assert_eq!(SimdDispatch::select(SimdPolicy::Scalar).isa(), "scalar");
        assert_eq!(SimdDispatch::select(SimdPolicy::BitWalk).isa(), "bitwalk");
        assert!(SimdDispatch::select(SimdPolicy::Scalar).dense());
        assert!(!SimdDispatch::select(SimdPolicy::BitWalk).dense());
    }

    #[test]
    fn auto_selects_a_dense_capable_kind_or_env_override() {
        let d = SimdDispatch::select(SimdPolicy::Auto);
        // With TEMPOPR_SIMD unset this is avx2/scalar; under the CI
        // fallback job (TEMPOPR_SIMD=scalar) it must be scalar; bitwalk
        // only if the env explicitly asked for it.
        match std::env::var("TEMPOPR_SIMD").ok().as_deref() {
            Some("scalar") => assert_eq!(d.isa(), "scalar"),
            Some("bitwalk") => assert_eq!(d.isa(), "bitwalk"),
            _ => assert!(d.dense(), "auto must enable the dense path"),
        }
    }

    #[test]
    fn env_parsing() {
        assert_eq!(parse_env(None), SimdPolicy::Auto);
        assert_eq!(parse_env(Some("")), SimdPolicy::Auto);
        assert_eq!(parse_env(Some("auto")), SimdPolicy::Auto);
        assert_eq!(parse_env(Some("AUTO")), SimdPolicy::Auto);
        assert_eq!(parse_env(Some("scalar")), SimdPolicy::Scalar);
        assert_eq!(parse_env(Some(" Scalar ")), SimdPolicy::Scalar);
        assert_eq!(parse_env(Some("bitwalk")), SimdPolicy::BitWalk);
        assert_eq!(parse_env(Some("avx512-or-bust")), SimdPolicy::Auto);
    }

    #[test]
    fn dispatch_accumulate_runs_for_every_kind() {
        for policy in [SimdPolicy::Auto, SimdPolicy::Scalar, SimdPolicy::BitWalk] {
            let d = SimdDispatch::select(policy);
            let x = noisy(16, 21);
            let inv = noisy(16, 22);
            let mut a = noisy(16, 23);
            let mut b = a.clone();
            d.accumulate(&mut a, &x, &inv);
            reference(&mut b, &x, &inv);
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "{policy:?}");
        }
    }
}
