//! Direct solution of the PageRank linear system (paper Eq. 2):
//!
//! ```text
//! (I - (1-α)·Aᵀ·D⁻¹) x = α·v
//! ```
//!
//! (in this crate's convention `α` is the teleport weight, so the damping
//! factor multiplying the transition matrix is `1-α`; the paper writes the
//! same system with its `α` denoting the damping factor). Dangling columns
//! are replaced by the uniform teleport column, exactly as the iterative
//! kernels redistribute dangling mass.
//!
//! The solver is dense Gaussian elimination with partial pivoting —
//! `O(n³)`, intended for validation and for exact answers on small
//! windows, not production. Tests use it to pin every iterative kernel to
//! the true fixed point at machine precision.

use crate::error::KernelError;
use crate::pagerank::PrConfig;
use tempopr_graph::{TemporalCsr, TimeRange, VertexId};

/// Solves the PageRank system of one window exactly.
///
/// Builds the dense `n_act × n_act` system over the window's active set
/// and eliminates. Returns the rank vector over the full vertex space
/// (0 for inactive vertices). Fails with
/// [`KernelError::ActiveSetTooLarge`] if the active set exceeds
/// `max_active` (guard against accidentally cubing a huge window) and
/// with [`KernelError::SingularSystem`] if elimination hits a vanishing
/// pivot (impossible for a well-formed PageRank system, but a corrupted
/// graph must not panic the solver).
pub fn solve_pagerank_exact(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    cfg: &PrConfig,
    max_active: usize,
) -> Result<Vec<f64>, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    let directed = !std::ptr::eq(pull, push);
    // Active set and out-degrees.
    let mut active_list: Vec<u32> = Vec::new();
    let mut slot = vec![usize::MAX; n];
    let mut outdeg = vec![0u32; n];
    for v in 0..n {
        let out = push.active_degree(v as VertexId, range) as u32;
        let act = out > 0 || (directed && pull.active_degree(v as VertexId, range) > 0);
        outdeg[v] = out;
        if act {
            slot[v] = active_list.len();
            active_list.push(v as u32);
        }
    }
    let m = active_list.len();
    if m == 0 {
        return Ok(vec![0.0; n]);
    }
    if m > max_active {
        return Err(KernelError::ActiveSetTooLarge {
            active: m,
            max_active,
        });
    }
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    // System matrix M = I - damp * P, where P[i][j] = 1/outdeg(j) if j -> i
    // (column-stochastic over the active set), dangling columns uniform.
    let mut a = vec![vec![0.0f64; m + 1]; m];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 1.0;
        row[m] = alpha / m as f64; // right-hand side α·v
    }
    for (i, &v) in active_list.iter().enumerate() {
        // In-edges of v: pull adjacency.
        for run in pull.runs(v) {
            if run.active_in(range) {
                let u = run.neighbor as usize;
                debug_assert_ne!(slot[u], usize::MAX);
                a[i][slot[u]] -= damp / outdeg[u] as f64;
            }
        }
    }
    // Dangling columns: j with outdeg 0 contributes uniformly to every row.
    for (j, &v) in active_list.iter().enumerate() {
        if outdeg[v as usize] == 0 {
            for row in a.iter_mut() {
                row[j] -= damp / m as f64;
            }
        }
    }
    // Gaussian elimination with partial pivoting on the augmented matrix.
    for col in 0..m {
        let mut pivot = col;
        let mut best = a[col][col].abs();
        for (r, row) in a.iter().enumerate().skip(col + 1) {
            let mag = row[col].abs();
            if mag > best {
                best = mag;
                pivot = r;
            }
        }
        a.swap(col, pivot);
        let p = a[col][col];
        if !p.is_finite() || p.abs() <= 1e-12 {
            return Err(KernelError::SingularSystem);
        }
        // Copy the pivot row's tail once per column (borrow-splitting).
        let pivot_row: Vec<f64> = a[col][col..].to_vec();
        for (r, row) in a.iter_mut().enumerate() {
            if r == col {
                continue;
            }
            let f = row[col] / p;
            if f == 0.0 {
                continue;
            }
            for (k, &pv) in pivot_row.iter().enumerate() {
                row[col + k] -= f * pv;
            }
        }
    }
    let mut x = vec![0.0f64; n];
    for (i, &v) in active_list.iter().enumerate() {
        x[v as usize] = a[i][m] / a[i][i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_window_vec, Init};
    use tempopr_graph::Event;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-14,
            max_iters: 3000,
            ..PrConfig::default()
        }
    }

    #[test]
    fn exact_solution_matches_power_iteration_symmetric() {
        let mut events = Vec::new();
        for i in 0..80u32 {
            let u = (i * 13 + 2) % 18;
            let v = (i * 7 + 5) % 18;
            if u != v {
                events.push(Event::new(u, v, i as i64));
            }
        }
        let t = TemporalCsr::from_events(18, &events, true);
        for range in [TimeRange::new(0, 60), TimeRange::new(30, 120)] {
            let exact = solve_pagerank_exact(&t, &t, range, &cfg(), 100).unwrap();
            let (iter, _) =
                pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
            for v in 0..18 {
                assert!(
                    (exact[v] - iter[v]).abs() < 1e-10,
                    "vertex {v}: {} vs {}",
                    exact[v],
                    iter[v]
                );
            }
            let sum: f64 = exact.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn exact_solution_matches_power_iteration_directed_with_dangling() {
        // 2 is a pure sink (dangling).
        let events = vec![
            Event::new(0, 1, 1),
            Event::new(1, 2, 2),
            Event::new(0, 2, 3),
            Event::new(3, 0, 4),
        ];
        let out = TemporalCsr::from_events(4, &events, false);
        let pull = out.transpose();
        let range = TimeRange::new(0, 10);
        let exact = solve_pagerank_exact(&pull, &out, range, &cfg(), 100).unwrap();
        let (iter, _) =
            pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), None).unwrap();
        for v in 0..4 {
            assert!(
                (exact[v] - iter[v]).abs() < 1e-10,
                "vertex {v}: {} vs {}",
                exact[v],
                iter[v]
            );
        }
    }

    #[test]
    fn two_vertex_closed_form() {
        // Symmetric pair: exact solution is (1/2, 1/2).
        let t = TemporalCsr::from_events(2, &[Event::new(0, 1, 1)], true);
        let x = solve_pagerank_exact(&t, &t, TimeRange::new(0, 10), &cfg(), 10).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let x = solve_pagerank_exact(&t, &t, TimeRange::new(50, 60), &cfg(), 10).unwrap();
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn size_guard_trips() {
        let events: Vec<Event> = (0..20).map(|i| Event::new(i, (i + 1) % 20, 1)).collect();
        let t = TemporalCsr::from_events(20, &events, true);
        let err = solve_pagerank_exact(&t, &t, TimeRange::new(0, 10), &cfg(), 5).unwrap_err();
        assert_eq!(
            err,
            KernelError::ActiveSetTooLarge {
                active: 20,
                max_active: 5
            }
        );
    }
}
