//! Push-style PageRank with propagation blocking (Beamer, Asanović &
//! Patterson, IPDPS'17 — cited in the paper's §2.2 as a compatible
//! communication-reducing technique).
//!
//! The pull kernel's bottleneck is random reads of `x[u]` across the whole
//! vertex range. Propagation blocking goes push-style in two phases per
//! iteration:
//!
//! 1. **Binning**: each active vertex appends its contribution
//!    `(destination, Δ)` to the bin owning the destination's vertex range.
//!    Writes are sequential per bin.
//! 2. **Accumulation**: each bin is drained into its slice of the next
//!    iterate; all accesses stay within one cache-resident range.
//!
//! The bin count is chosen so a bin's destination range fits in L2-ish
//! cache. On graphs whose active window fits in cache anyway the pull
//! kernel wins; blocking pays on windows much larger than the cache —
//! measured by the `ablations` bench.

use crate::error::{FaultKind, KernelError};
use crate::observe::Obs;
use crate::pagerank::{
    corrupt_first_reciprocal, guard_check, initialize, setup_from_index, GuardAction, Init,
    PrConfig, PrHealth, PrStats, PrWorkspace,
};
use tempopr_graph::{TemporalCsr, TimeRange, VertexId, WindowIndexView};

/// Destination vertices per bin (2^16 f64 accumulators ≈ 512 KiB per bin
/// range — roughly an L2 slice).
const BIN_SHIFT: u32 = 16;

/// Reusable binning buffers.
#[derive(Debug, Default)]
pub struct BlockingWorkspace {
    /// Base per-vertex workspace (degrees, active set, iterates).
    pub pr: PrWorkspace,
    /// One `(destination, contribution)` buffer per bin.
    bins: Vec<Vec<(VertexId, f64)>>,
}

/// Computes one window's PageRank with the propagation-blocking push
/// kernel. Sequential (the binning phase is inherently serialized per bin;
/// the paper's windows provide outer parallelism instead). Semantics are
/// identical to [`crate::pagerank::pagerank_window`]; results land in
/// `ws.pr.x`.
pub fn pagerank_window_blocking(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    ws: &mut BlockingWorkspace,
) -> Result<PrStats, KernelError> {
    pagerank_window_blocking_obs(pull, push, range, init, cfg, ws, Obs::off())
}

/// [`pagerank_window_blocking`] with an observation carrier (see
/// [`crate::observe`]).
pub fn pagerank_window_blocking_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    ws: &mut BlockingWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    let directed = !std::ptr::eq(pull, push);
    let prw = &mut ws.pr;
    prw.ensure(n);

    // Degree / activity pass (push degrees drive contributions).
    let t_setup = obs.now();
    let mut has_dangling = false;
    for v in 0..n {
        let out = push.active_degree(v as VertexId, range) as u32;
        let act = out > 0 || (directed && pull.active_degree(v as VertexId, range) > 0);
        prw.deg_out[v] = out;
        prw.active[v] = act;
        if act {
            prw.active_list.push(v as u32);
            if out == 0 {
                has_dangling = true;
            } else {
                prw.inv_deg[v] = 1.0 / out as f64;
            }
        }
    }
    obs.setup(prw.active_list.len(), t_setup);

    blocking_iterate(push, range, has_dangling, init, cfg, ws, obs)
}

/// [`pagerank_window_blocking`] with the degree/activity phase served from
/// a precomputed [`WindowIndexView`]: setup drops from `Θ(entries)` to
/// `O(|V_w active|)`; the binning iteration is unchanged.
pub fn pagerank_window_blocking_indexed(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    view: &WindowIndexView<'_>,
    init: Init<'_>,
    cfg: &PrConfig,
    ws: &mut BlockingWorkspace,
) -> Result<PrStats, KernelError> {
    pagerank_window_blocking_indexed_obs(pull, push, view, init, cfg, ws, Obs::off())
}

/// [`pagerank_window_blocking_indexed`] with an observation carrier (see
/// [`crate::observe`]).
pub fn pagerank_window_blocking_indexed_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    view: &WindowIndexView<'_>,
    init: Init<'_>,
    cfg: &PrConfig,
    ws: &mut BlockingWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    let prw = &mut ws.pr;
    prw.ensure(n);
    prw.deg_in.clear();
    let t_setup = obs.now();
    let has_dangling = setup_from_index(view, prw);
    obs.setup(prw.active_list.len(), t_setup);
    blocking_iterate(push, view.range, has_dangling, init, cfg, ws, obs)
}

/// The shared iteration phase of the blocking kernel: initialization plus
/// bin/accumulate power iteration over the active list already in `ws.pr`.
/// The numeric-health guards fold the rank-mass sum into the existing
/// diff pass (see [`crate::GuardConfig`]).
#[allow(clippy::too_many_arguments)]
fn blocking_iterate(
    push: &TemporalCsr,
    range: TimeRange,
    has_dangling: bool,
    init: Init<'_>,
    cfg: &PrConfig,
    ws: &mut BlockingWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = push.num_vertices();
    let prw = &mut ws.pr;
    let n_act = prw.active_list.len();
    if n_act == 0 {
        return Ok(PrStats::empty());
    }
    let n_act_f = n_act as f64;
    initialize(init, &prw.active, n_act_f, &mut prw.x)?;
    if let Some(FaultKind::CorruptReciprocal) = cfg.fault {
        corrupt_first_reciprocal(&prw.active_list, &mut prw.inv_deg);
    }

    let num_bins = (n >> BIN_SHIFT) + 1;
    ws.bins.resize_with(num_bins, Vec::new);
    for b in &mut ws.bins {
        b.clear();
    }

    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut iterations = 0;
    let mut converged = false;
    let mut health = PrHealth::default();
    while iterations < cfg.max_iters {
        iterations += 1;
        match cfg.fault {
            Some(FaultKind::InjectNan { at_iter }) if at_iter == iterations => {
                let v = prw.active_list[0] as usize;
                prw.x[v] = f64::NAN;
            }
            Some(FaultKind::PanicInKernel) if iterations == 1 => {
                // Intentional: models a latent kernel bug for the driver's
                // panic-isolation path.
                panic!("fault injection: panic inside blocking kernel");
            }
            _ => {}
        }
        let t_iter = obs.now();
        let dangling: f64 = if has_dangling {
            prw.active_list
                .iter()
                .filter(|&&v| prw.deg_out[v as usize] == 0)
                .map(|&v| prw.x[v as usize])
                .sum()
        } else {
            0.0
        };
        let base = alpha / n_act_f + damp * dangling / n_act_f;
        // Phase 1: bin contributions, push-style over the out-structure.
        for &v in &prw.active_list {
            let contrib = damp * prw.x[v as usize] * prw.inv_deg[v as usize];
            if contrib == 0.0 {
                continue;
            }
            for run in push.runs(v) {
                if run.active_in(range) {
                    let d = run.neighbor;
                    ws.bins[(d >> BIN_SHIFT) as usize].push((d, contrib));
                }
            }
        }
        // Phase 2: accumulate bins into the next iterate (compact in y by
        // active-list position would require a scatter index; the dense
        // next vector is simpler here and y is already n-sized).
        for (i, &v) in prw.active_list.iter().enumerate() {
            prw.y[i] = base;
            let _ = v;
        }
        // Position of each vertex in the active list for O(1) accumulation.
        // deg_in is otherwise unused in symmetric mode; reuse it as the
        // index map to avoid another allocation.
        if prw.deg_in.len() != n {
            prw.deg_in.clear();
            prw.deg_in.resize(n, 0);
        }
        for (i, &v) in prw.active_list.iter().enumerate() {
            prw.deg_in[v as usize] = i as u32;
        }
        for bin in &mut ws.bins {
            for &(d, c) in bin.iter() {
                let slot = prw.deg_in[d as usize] as usize;
                prw.y[slot] += c;
            }
            bin.clear();
        }
        // Diff + mass + write-back.
        let mut diff = 0.0;
        let mut mass = 0.0;
        for (i, &v) in prw.active_list.iter().enumerate() {
            diff += (prw.y[i] - prw.x[v as usize]).abs();
            mass += prw.y[i];
        }
        let t_mid = obs.now();
        match guard_check(diff, mass, 0, iterations, cfg, &mut health)? {
            GuardAction::Proceed => {
                for (i, &v) in prw.active_list.iter().enumerate() {
                    prw.x[v as usize] = prw.y[i];
                }
                if diff < cfg.tol && cfg.fault != Some(FaultKind::ForceNonConvergence) {
                    converged = true;
                }
            }
            GuardAction::Renormalize { scale } => {
                for (i, &v) in prw.active_list.iter().enumerate() {
                    prw.x[v as usize] = prw.y[i] * scale;
                }
                obs.guard(iterations, false);
            }
            GuardAction::Restart => {
                for &v in &prw.active_list {
                    prw.x[v as usize] = 1.0 / n_act_f;
                }
                obs.guard(iterations, true);
            }
        }
        obs.iteration(iterations, diff, mass, t_iter, t_mid);
        if converged {
            break;
        }
    }
    Ok(PrStats {
        iterations,
        converged,
        active_vertices: n_act,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank_window_vec;
    use tempopr_graph::Event;

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    fn sample_events() -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..200u32 {
            let u = (i * 13 + 2) % 40;
            let v = (i * 7 + 5) % 40;
            if u != v {
                events.push(Event::new(u, v, (i * 3) as i64));
            }
        }
        events
    }

    #[test]
    fn blocking_matches_pull_kernel_symmetric() {
        let events = sample_events();
        let t = TemporalCsr::from_events(40, &events, true);
        for range in [
            TimeRange::new(0, 200),
            TimeRange::new(100, 400),
            TimeRange::new(0, 700),
        ] {
            let (pullx, ps) =
                pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
            let mut ws = BlockingWorkspace::default();
            let bs =
                pagerank_window_blocking(&t, &t, range, Init::Uniform, &cfg(), &mut ws).unwrap();
            assert_eq!(ps.active_vertices, bs.active_vertices);
            for (v, (a, b)) in pullx.iter().zip(ws.pr.x.iter()).enumerate() {
                assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn blocking_matches_pull_kernel_directed() {
        let events = sample_events();
        let out = TemporalCsr::from_events(40, &events, false);
        let pull = out.transpose();
        let range = TimeRange::new(0, 400);
        let (pullx, _) =
            pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), None).unwrap();
        let mut ws = BlockingWorkspace::default();
        pagerank_window_blocking(&pull, &out, range, Init::Uniform, &cfg(), &mut ws).unwrap();
        for (v, (a, b)) in pullx.iter().zip(ws.pr.x.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn blocking_supports_partial_init() {
        let events = sample_events();
        let t = TemporalCsr::from_events(40, &events, true);
        let r0 = TimeRange::new(0, 300);
        let r1 = TimeRange::new(100, 400);
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &cfg(), None).unwrap();
        let (expect, _) =
            pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &cfg(), None).unwrap();
        let mut ws = BlockingWorkspace::default();
        pagerank_window_blocking(&t, &t, r1, Init::Partial(&prev), &cfg(), &mut ws).unwrap();
        for (v, (a, b)) in expect.iter().zip(ws.pr.x.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn indexed_blocking_is_bit_identical() {
        use tempopr_graph::WindowIndex;
        let events = sample_events();
        let ranges: Vec<TimeRange> = (0..5)
            .map(|k| TimeRange::new(k * 100, k * 100 + 250))
            .collect();
        // Symmetric.
        let t = TemporalCsr::from_events(40, &events, true);
        let idx = WindowIndex::build(&t, None, &ranges);
        for (j, &range) in ranges.iter().enumerate() {
            let mut plain = BlockingWorkspace::default();
            let ps =
                pagerank_window_blocking(&t, &t, range, Init::Uniform, &cfg(), &mut plain).unwrap();
            let mut ixd = BlockingWorkspace::default();
            let is = pagerank_window_blocking_indexed(
                &t,
                &t,
                &idx.view(j),
                Init::Uniform,
                &cfg(),
                &mut ixd,
            )
            .unwrap();
            assert_eq!(ps, is, "window {j}");
            assert_eq!(
                plain.pr.x, ixd.pr.x,
                "window {j} ranks must be bit-identical"
            );
        }
        // Directed.
        let out = TemporalCsr::from_events(40, &events, false);
        let pull = out.transpose();
        let didx = WindowIndex::build(&out, Some(&pull), &ranges);
        for (j, &range) in ranges.iter().enumerate() {
            let mut plain = BlockingWorkspace::default();
            pagerank_window_blocking(&pull, &out, range, Init::Uniform, &cfg(), &mut plain)
                .unwrap();
            let mut ixd = BlockingWorkspace::default();
            pagerank_window_blocking_indexed(
                &pull,
                &out,
                &didx.view(j),
                Init::Uniform,
                &cfg(),
                &mut ixd,
            )
            .unwrap();
            assert_eq!(plain.pr.x, ixd.pr.x, "directed window {j}");
        }
    }

    #[test]
    fn blocking_empty_window() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let mut ws = BlockingWorkspace::default();
        let stats = pagerank_window_blocking(
            &t,
            &t,
            TimeRange::new(100, 200),
            Init::Uniform,
            &cfg(),
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.active_vertices, 0);
        assert!(stats.converged);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let events = sample_events();
        let t = TemporalCsr::from_events(40, &events, true);
        let mut ws = BlockingWorkspace::default();
        pagerank_window_blocking(
            &t,
            &t,
            TimeRange::new(0, 700),
            Init::Uniform,
            &cfg(),
            &mut ws,
        )
        .unwrap();
        pagerank_window_blocking(
            &t,
            &t,
            TimeRange::new(0, 100),
            Init::Uniform,
            &cfg(),
            &mut ws,
        )
        .unwrap();
        let (expect, _) =
            pagerank_window_vec(&t, &t, TimeRange::new(0, 100), Init::Uniform, &cfg(), None)
                .unwrap();
        for (v, (a, b)) in expect.iter().zip(ws.pr.x.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}");
        }
    }
}
