//! Window PageRank by pull-style SpMV over the temporal CSR (paper §2.2,
//! §4.1).
//!
//! One iteration traverses every stored entry of the (multi-window)
//! temporal CSR once, testing each neighbor run against the window's time
//! range — `Θ(entries)` per SpMV, exactly the cost model of the paper. The
//! kernel supports three initializations: uniform, a caller-provided
//! vector, and the paper's *partial initialization* (Eq. 4) from the
//! previous window's ranks.
//!
//! ## Shared semantics
//! All PageRank implementations in this workspace agree on:
//! - simple-graph semantics (duplicate events in a window count once);
//! - the active set `V_i` = vertices with at least one in-window edge;
//!   `n = |V_i|`; inactive vertices hold rank 0;
//! - teleport `α` (default 0.15) paid to active vertices only, dangling
//!   rank mass redistributed uniformly over `V_i`;
//! - convergence when the L1 difference of successive iterates < `tol`.
//!
//! ## Numeric health
//! Power iteration preserves rank mass exactly in exact arithmetic
//! (teleport + damped edge mass + dangling redistribution always sum to
//! one), so `Σx ≈ 1` is an invariant every iteration can be checked
//! against almost for free: the mass sum folds into the same reduction
//! that already computes the L1 diff. With [`GuardConfig::enabled`] (the
//! default) each iteration verifies the iterate is finite and the mass has
//! not drifted beyond [`GuardConfig::mass_epsilon`]; violations recover
//! per [`NumericPolicy`] and are tallied in [`PrStats::health`], never
//! silently dropped. The guards only *observe* the iterate — ranks on
//! healthy inputs are bit-identical with guards on or off.

use crate::error::{FaultKind, KernelError, NumericFault};
use crate::observe::Obs;
use crate::scheduler::Scheduler;
use crate::simd::SimdPolicy;
use tempopr_graph::{Csr, TemporalCsr, TimeRange, VertexId, WindowIndexView};

/// What to do when a numeric-health guard trips (NaN/Inf in the iterate or
/// rank-mass drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericPolicy {
    /// Surface the fault immediately as [`KernelError::Numeric`].
    Fail,
    /// Mass drift: rescale the iterate back to unit mass and continue (up
    /// to [`MAX_RENORMALIZATIONS`] times). Non-finite values: restart from
    /// a uniform iterate (up to [`MAX_RESTARTS`] times). Escalate to
    /// [`KernelError::Numeric`] when the budget is spent.
    #[default]
    RenormalizeRetry,
    /// Any fault: restart from a uniform iterate over the active set (up
    /// to [`MAX_RESTARTS`] times), then escalate.
    FallbackFullInit,
}

/// Renormalizations a single kernel invocation may perform before
/// escalating — persistent drift (e.g. a corrupted degree reciprocal)
/// renormalizes every iteration and must not spin to `max_iters`.
pub const MAX_RENORMALIZATIONS: u32 = 3;

/// Uniform restarts a single kernel invocation may perform before
/// escalating.
pub const MAX_RESTARTS: u32 = 1;

/// Per-iteration numeric-health checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Check each iteration for NaN/Inf and rank-mass drift. On healthy
    /// inputs the checks are read-only: ranks are bit-identical either
    /// way.
    pub enabled: bool,
    /// Allowed drift of the rank mass from 1. The default 1e-6 sits far
    /// above f64 summation noise (≈ `n · 1e-16`) and far below any real
    /// corruption (a doubled reciprocal drifts mass by `Θ(x_v)` per
    /// iteration).
    pub mass_epsilon: f64,
    /// Recovery policy when a guard trips.
    pub policy: NumericPolicy,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: true,
            mass_epsilon: 1e-6,
            policy: NumericPolicy::RenormalizeRetry,
        }
    }
}

impl GuardConfig {
    /// Guards disabled (for overhead measurement; production runs keep the
    /// default on).
    pub fn off() -> Self {
        GuardConfig {
            enabled: false,
            ..GuardConfig::default()
        }
    }
}

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrConfig {
    /// Teleportation probability `α` in Eq. 1 (damping factor is `1 - α`).
    pub alpha: f64,
    /// L1 convergence tolerance. The default 1e-6 converges in well under
    /// the 100-iteration cap at the default damping (L1 error decays as
    /// `(1-α)^k ≈ 0.85^k`); much tighter tolerances would hit the cap and
    /// mask warm-start savings.
    pub tol: f64,
    /// Iteration cap (implementations "execute a fixed number of iterations
    /// at most", §2.2).
    pub max_iters: usize,
    /// Numeric-health guard settings.
    pub guard: GuardConfig,
    /// Deterministic fault to inject into this invocation (testing only;
    /// `None`, the default, costs one predictable branch per iteration).
    pub fault: Option<FaultKind>,
    /// Inner-loop implementation for the batched (SpMM) kernel: runtime
    /// ISA dispatch by default, forceable to the portable scalar path or
    /// the pre-vectorization mask walk (see [`crate::simd`]). Ranks are
    /// bit-identical under every policy; SpMV kernels ignore this.
    pub simd: SimdPolicy,
    /// Repack converged lanes out of the batched iteration so late rounds
    /// stop paying for dead lanes (see [`crate::spmm`]). Bit-identical on
    /// or off; SpMV kernels ignore this.
    pub compaction: bool,
}

impl Default for PrConfig {
    fn default() -> Self {
        PrConfig {
            alpha: 0.15,
            tol: 1e-6,
            max_iters: 100,
            guard: GuardConfig::default(),
            fault: None,
            simd: SimdPolicy::Auto,
            compaction: true,
        }
    }
}

/// Numeric-health events observed during one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrHealth {
    /// Iterations whose drifted mass was rescaled back to 1.
    pub renormalizations: u32,
    /// Restarts from a uniform iterate after a non-finite value.
    pub restarts: u32,
}

impl PrHealth {
    /// No guard ever tripped.
    pub fn is_clean(&self) -> bool {
        self.renormalizations == 0 && self.restarts == 0
    }

    /// Folds another invocation's health events into this one.
    pub fn merge(&mut self, other: &PrHealth) {
        self.renormalizations += other.renormalizations;
        self.restarts += other.restarts;
    }
}

/// Outcome of one window's PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached within `max_iters`.
    pub converged: bool,
    /// `|V_i|`: vertices active in the window.
    pub active_vertices: usize,
    /// Numeric-health events (all zero on a healthy run).
    pub health: PrHealth,
}

impl PrStats {
    /// Stats for an empty window: zero iterations, trivially converged.
    pub fn empty() -> Self {
        PrStats {
            iterations: 0,
            converged: true,
            active_vertices: 0,
            health: PrHealth::default(),
        }
    }
}

/// How the rank vector is initialized before iterating.
#[derive(Debug, Clone, Copy)]
pub enum Init<'a> {
    /// `1/|V_i|` on every active vertex (§4.2 "the most common
    /// initialization").
    Uniform,
    /// A caller-supplied distribution; masked to the active set and
    /// renormalized (falls back to uniform if the masked sum vanishes).
    Provided(&'a [f64]),
    /// Partial initialization from the previous window's ranks (Eq. 4):
    /// vertices present in both windows keep their scaled previous rank,
    /// newcomers get the uniform share. Membership in `V_{i-1}` is inferred
    /// from a strictly positive previous rank.
    Partial(&'a [f64]),
}

/// Reusable buffers so per-window PageRank makes no heap allocations in
/// steady state (perf-book: workhorse collections).
#[derive(Debug, Default, Clone)]
pub struct PrWorkspace {
    /// Out-degree of each vertex in the current window.
    pub deg_out: Vec<u32>,
    /// In-degree (directed graphs only; empty for symmetric).
    pub deg_in: Vec<u32>,
    /// `1/deg_out` or 0.
    pub inv_deg: Vec<f64>,
    /// Active-set membership for the current window.
    pub active: Vec<bool>,
    /// The active vertices, ascending — power iterations loop over this
    /// compact list so a window's cost is `Θ(|V_i| + edges scanned)`, not
    /// `Θ(V)` per iteration.
    pub active_list: Vec<u32>,
    /// Current iterate; holds the result after a call.
    pub x: Vec<f64>,
    /// Scratch for the next iterate, indexed by active-list position.
    pub y: Vec<f64>,
}

impl PrWorkspace {
    /// Resizes every buffer for `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        self.deg_out.clear();
        self.deg_out.resize(n, 0);
        self.inv_deg.clear();
        self.inv_deg.resize(n, 0.0);
        self.active.clear();
        self.active.resize(n, false);
        self.active_list.clear();
        self.x.clear();
        self.x.resize(n, 0.0);
        self.y.clear();
        self.y.resize(n, 0.0);
    }

    /// The rank vector computed by the last call.
    pub fn ranks(&self) -> &[f64] {
        &self.x
    }
}

/// The pull sum for one destination vertex: Σ over active in-runs of
/// `x[u] · inv_deg[u]`.
#[inline]
fn pull_sum(pull: &TemporalCsr, range: TimeRange, x: &[f64], inv_deg: &[f64], v: VertexId) -> f64 {
    let mut s = 0.0;
    for run in pull.runs(v) {
        if run.active_in(range) {
            let u = run.neighbor as usize;
            s += x[u] * inv_deg[u];
        }
    }
    s
}

/// Computes PageRank for one window of a temporal CSR.
///
/// `pull` holds in-edges, `push` out-edges; pass the same reference twice
/// for a symmetric (undirected) build. If `sched` is `Some`, the degree
/// pass and every SpMV run in parallel under that scheduler (the paper's
/// application-level parallelism); otherwise everything is sequential (the
/// inner kernel of window-level parallelism).
///
/// The result lands in `ws.x` (see [`PrWorkspace::ranks`]).
pub fn pagerank_window(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    pagerank_window_obs(pull, push, range, init, cfg, sched, ws, Obs::off())
}

/// [`pagerank_window`] with an observation carrier (see
/// [`crate::observe`]). Observation is read-only: ranks are bit-identical
/// with any sink attached.
#[allow(clippy::too_many_arguments)]
pub fn pagerank_window_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    ws.ensure(n);
    let directed = !std::ptr::eq(pull, push);

    // --- Degree / activity pass -----------------------------------------
    let t_setup = obs.now();
    match sched {
        Some(s) => {
            let deg_out = &mut ws.deg_out;
            s.map_reduce_slice_mut(
                deg_out,
                (),
                |off, slice| {
                    for (i, d) in slice.iter_mut().enumerate() {
                        *d = push.active_degree((off + i) as VertexId, range) as u32;
                    }
                },
                |_, _| (),
            );
        }
        None => {
            for v in 0..n {
                ws.deg_out[v] = push.active_degree(v as VertexId, range) as u32;
            }
        }
    }
    if directed {
        ws.deg_in.clear();
        ws.deg_in.resize(n, 0);
        match sched {
            Some(s) => {
                let deg_in = &mut ws.deg_in;
                s.map_reduce_slice_mut(
                    deg_in,
                    (),
                    |off, slice| {
                        for (i, d) in slice.iter_mut().enumerate() {
                            *d = pull.active_degree((off + i) as VertexId, range) as u32;
                        }
                    },
                    |_, _| (),
                );
            }
            None => {
                for v in 0..n {
                    ws.deg_in[v] = pull.active_degree(v as VertexId, range) as u32;
                }
            }
        }
    } else {
        ws.deg_in.clear();
    }
    let mut has_dangling = false;
    for v in 0..n {
        let act = ws.deg_out[v] > 0 || (directed && ws.deg_in[v] > 0);
        ws.active[v] = act;
        if act {
            ws.active_list.push(v as u32);
            if ws.deg_out[v] == 0 {
                has_dangling = true;
            } else {
                ws.inv_deg[v] = 1.0 / ws.deg_out[v] as f64;
            }
        }
    }
    obs.setup(ws.active_list.len(), t_setup);

    power_iterate_window(pull, range, has_dangling, init, cfg, sched, ws, obs)
}

/// [`pagerank_window`] with the degree/activity phase served from a
/// precomputed [`WindowIndexView`] instead of a scan of the CSR: setup
/// drops from `Θ(entries)` to `O(|V_w active|)`. The iteration itself is
/// identical, so ranks match the unindexed kernel bit-for-bit.
pub fn pagerank_window_indexed(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    view: &WindowIndexView<'_>,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    pagerank_window_indexed_obs(pull, push, view, init, cfg, sched, ws, Obs::off())
}

/// [`pagerank_window_indexed`] with an observation carrier (see
/// [`crate::observe`]).
#[allow(clippy::too_many_arguments)]
pub fn pagerank_window_indexed_obs(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    view: &WindowIndexView<'_>,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    ws.ensure(n);
    ws.deg_in.clear();
    let t_setup = obs.now();
    let has_dangling = setup_from_index(view, ws);
    obs.setup(ws.active_list.len(), t_setup);
    power_iterate_window(pull, view.range, has_dangling, init, cfg, sched, ws, obs)
}

/// Fills the workspace's degree/activity buffers from an index view in
/// `O(|V_w active|)`. Returns whether the window has dangling vertices.
/// The caller must have run [`PrWorkspace::ensure`] already.
pub(crate) fn setup_from_index(view: &WindowIndexView<'_>, ws: &mut PrWorkspace) -> bool {
    for (i, &v) in view.vertices.iter().enumerate() {
        let v = v as usize;
        ws.active[v] = true;
        ws.deg_out[v] = view.deg_out[i];
        ws.inv_deg[v] = view.inv_deg[i];
    }
    ws.active_list.extend_from_slice(view.vertices);
    !view.dangling.is_empty()
}

/// What the faulted iteration should do next, as decided by
/// [`guard_check`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum GuardAction {
    /// No fault: scatter the iterate and test convergence as usual.
    Proceed,
    /// Mass drifted: scatter the iterate scaled by `scale`, skip the
    /// convergence test this iteration.
    Renormalize {
        /// `1/mass` of the drifted iterate.
        scale: f64,
    },
    /// Non-finite values: throw the iterate away and restart from a
    /// uniform distribution over the active set.
    Restart,
}

/// The shared guard decision: inspects one iteration's `(diff, mass)`
/// reduction and either clears it, prescribes a recovery per the
/// configured [`NumericPolicy`], or escalates to [`KernelError::Numeric`].
/// `lane` is only for diagnostics (batched kernels).
pub(crate) fn guard_check(
    diff: f64,
    mass: f64,
    lane: usize,
    iteration: usize,
    cfg: &PrConfig,
    health: &mut PrHealth,
) -> Result<GuardAction, KernelError> {
    if !cfg.guard.enabled {
        return Ok(GuardAction::Proceed);
    }
    let fault = if !mass.is_finite() || !diff.is_finite() {
        NumericFault::NonFinite { lane }
    } else if (mass - 1.0).abs() > cfg.guard.mass_epsilon {
        NumericFault::MassDrift {
            lane,
            mass,
            epsilon: cfg.guard.mass_epsilon,
        }
    } else {
        return Ok(GuardAction::Proceed);
    };
    let escalate = Err(KernelError::Numeric { iteration, fault });
    match cfg.guard.policy {
        NumericPolicy::Fail => escalate,
        NumericPolicy::RenormalizeRetry => match fault {
            NumericFault::MassDrift { mass, .. }
                if health.renormalizations < MAX_RENORMALIZATIONS =>
            {
                health.renormalizations += 1;
                Ok(GuardAction::Renormalize { scale: 1.0 / mass })
            }
            NumericFault::NonFinite { .. } if health.restarts < MAX_RESTARTS => {
                health.restarts += 1;
                Ok(GuardAction::Restart)
            }
            _ => escalate,
        },
        NumericPolicy::FallbackFullInit => {
            if health.restarts < MAX_RESTARTS {
                health.restarts += 1;
                Ok(GuardAction::Restart)
            } else {
                escalate
            }
        }
    }
}

/// The shared iteration phase of [`pagerank_window`] and
/// [`pagerank_window_indexed`]: initialization plus damped power iteration
/// over the active list already present in `ws`.
#[allow(clippy::too_many_arguments)]
fn power_iterate_window(
    pull: &TemporalCsr,
    range: TimeRange,
    has_dangling: bool,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    iterate_guarded(
        |x, inv_deg, v| pull_sum(pull, range, x, inv_deg, v),
        has_dangling,
        init,
        cfg,
        sched,
        ws,
        obs,
    )
}

/// The guarded damped power iteration shared by the temporal and static
/// pull kernels: `pull_contrib(x, inv_deg, v)` supplies the pull sum for
/// one destination. Monomorphized per caller, so the hot loop is identical
/// to a hand-inlined version.
#[allow(clippy::too_many_arguments)]
fn iterate_guarded<PS>(
    pull_contrib: PS,
    has_dangling: bool,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError>
where
    PS: Fn(&[f64], &[f64], VertexId) -> f64 + Sync,
{
    let n_act = ws.active_list.len();
    if n_act == 0 {
        return Ok(PrStats::empty());
    }
    let n_act_f = n_act as f64;

    // --- Initialization ---------------------------------------------------
    initialize(init, &ws.active, n_act_f, &mut ws.x)?;
    if let Some(FaultKind::CorruptReciprocal) = cfg.fault {
        corrupt_first_reciprocal(&ws.active_list, &mut ws.inv_deg);
    }

    // --- Power iteration ---------------------------------------------------
    // Iterations loop over the compact active list; inactive vertices keep
    // their initial 0 forever. The new iterate lands in `y` by list
    // position and is scattered back into `x` after each pass. Alongside
    // the L1 diff the reduction carries the iterate's total mass, which the
    // guard checks against the Σx = 1 invariant — an extra add per vertex,
    // never an extra pass.
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut iterations = 0;
    let mut converged = false;
    let mut health = PrHealth::default();
    while iterations < cfg.max_iters {
        iterations += 1;
        match cfg.fault {
            Some(FaultKind::InjectNan { at_iter }) if at_iter == iterations => {
                let v = ws.active_list[0] as usize;
                ws.x[v] = f64::NAN;
            }
            Some(FaultKind::PanicInKernel) if iterations == 1 => {
                // Intentional: models a latent kernel bug for the driver's
                // panic-isolation path.
                panic!("fault injection: panic inside SpMV kernel");
            }
            _ => {}
        }
        let t_iter = obs.now();
        let list = &ws.active_list;
        let dangling: f64 = if has_dangling {
            list.iter()
                .filter(|&&v| ws.deg_out[v as usize] == 0)
                .map(|&v| ws.x[v as usize])
                .sum()
        } else {
            0.0
        };
        let base = alpha / n_act_f + damp * dangling / n_act_f;
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let compact = &mut ws.y[..n_act];
        let body = |off: usize, slice: &mut [f64]| {
            let mut d = 0.0;
            let mut m = 0.0;
            for (i, yv) in slice.iter_mut().enumerate() {
                let v = list[off + i];
                let val = base + damp * pull_contrib(x, inv_deg, v);
                d += (val - x[v as usize]).abs();
                m += val;
                *yv = val;
            }
            (d, m)
        };
        let (diff, mass) = match sched {
            Some(s) => s.map_reduce_slice_mut(compact, (0.0f64, 0.0f64), body, |a, b| {
                (a.0 + b.0, a.1 + b.1)
            }),
            None => body(0, compact),
        };
        let t_mid = obs.now();
        match guard_check(diff, mass, 0, iterations, cfg, &mut health)? {
            GuardAction::Proceed => {
                for (i, &v) in ws.active_list.iter().enumerate() {
                    ws.x[v as usize] = ws.y[i];
                }
                if diff < cfg.tol && cfg.fault != Some(FaultKind::ForceNonConvergence) {
                    converged = true;
                }
            }
            GuardAction::Renormalize { scale } => {
                for (i, &v) in ws.active_list.iter().enumerate() {
                    ws.x[v as usize] = ws.y[i] * scale;
                }
                obs.guard(iterations, false);
            }
            GuardAction::Restart => {
                for &v in &ws.active_list {
                    ws.x[v as usize] = 1.0 / n_act_f;
                }
                obs.guard(iterations, true);
            }
        }
        obs.iteration(iterations, diff, mass, t_iter, t_mid);
        if converged {
            break;
        }
    }
    Ok(PrStats {
        iterations,
        converged,
        active_vertices: n_act,
        health,
    })
}

/// Applies the [`FaultKind::CorruptReciprocal`] fault: multiplies the
/// first active non-dangling vertex's `1/outdeg` by 1000.
pub fn corrupt_first_reciprocal(active_list: &[u32], inv_deg: &mut [f64]) {
    if let Some(&v) = active_list.iter().find(|&&v| inv_deg[v as usize] > 0.0) {
        inv_deg[v as usize] *= 1000.0;
    }
}

/// Computes PageRank on a static CSR graph — the kernel of the *offline*
/// execution model, which rebuilds a fresh [`Csr`] per window (§3.3.1).
///
/// `pull` holds in-edges and `push` out-edges; pass the same reference for
/// symmetric graphs. Semantics identical to [`pagerank_window`].
pub fn pagerank_csr(
    pull: &Csr,
    push: &Csr,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> Result<PrStats, KernelError> {
    pagerank_csr_obs(pull, push, init, cfg, sched, ws, Obs::off())
}

/// [`pagerank_csr`] with an observation carrier (see [`crate::observe`]).
pub fn pagerank_csr_obs(
    pull: &Csr,
    push: &Csr,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
    obs: Obs<'_>,
) -> Result<PrStats, KernelError> {
    let n = pull.num_vertices();
    if push.num_vertices() != n {
        return Err(KernelError::MismatchedUniverses {
            pull: n,
            push: push.num_vertices(),
        });
    }
    ws.ensure(n);
    let directed = !std::ptr::eq(pull, push);
    let t_setup = obs.now();
    // Degree pass through the scheduler, like the temporal kernel's; in
    // the directed case `deg_in` carries pull degrees for the activity
    // test. The order-dependent active-list build stays sequential.
    if directed {
        ws.deg_in.clear();
        ws.deg_in.resize(n, 0);
    } else {
        ws.deg_in.clear();
    }
    match sched {
        Some(s) => {
            let deg_out = &mut ws.deg_out;
            s.map_reduce_slice_mut(
                deg_out,
                (),
                |off, slice| {
                    for (i, d) in slice.iter_mut().enumerate() {
                        *d = push.degree((off + i) as VertexId) as u32;
                    }
                },
                |_, _| (),
            );
            if directed {
                let deg_in = &mut ws.deg_in;
                s.map_reduce_slice_mut(
                    deg_in,
                    (),
                    |off, slice| {
                        for (i, d) in slice.iter_mut().enumerate() {
                            *d = pull.degree((off + i) as VertexId) as u32;
                        }
                    },
                    |_, _| (),
                );
            }
        }
        None => {
            for v in 0..n {
                ws.deg_out[v] = push.degree(v as VertexId) as u32;
            }
            if directed {
                for v in 0..n {
                    ws.deg_in[v] = pull.degree(v as VertexId) as u32;
                }
            }
        }
    }
    let mut has_dangling = false;
    for v in 0..n {
        let out = ws.deg_out[v];
        let act = out > 0 || (directed && ws.deg_in[v] > 0);
        ws.active[v] = act;
        if act {
            ws.active_list.push(v as u32);
            if out == 0 {
                has_dangling = true;
            } else {
                ws.inv_deg[v] = 1.0 / out as f64;
            }
        }
    }
    obs.setup(ws.active_list.len(), t_setup);
    iterate_guarded(
        |x, inv_deg, v| {
            let mut s = 0.0;
            for &u in pull.neighbors(v) {
                s += x[u as usize] * inv_deg[u as usize];
            }
            s
        },
        has_dangling,
        init,
        cfg,
        sched,
        ws,
        obs,
    )
}

/// Convenience wrapper allocating a fresh workspace and returning the rank
/// vector.
///
/// ```
/// use tempopr_graph::{Event, TemporalCsr, TimeRange};
/// use tempopr_kernel::{pagerank_window_vec, Init, PrConfig};
/// let t = TemporalCsr::from_events(
///     3,
///     &[Event::new(0, 1, 1), Event::new(1, 2, 2)],
///     true,
/// );
/// let (ranks, stats) = pagerank_window_vec(
///     &t, &t, TimeRange::new(0, 10), Init::Uniform, &PrConfig::default(), None,
/// ).unwrap();
/// assert!(stats.converged);
/// assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// assert!(ranks[1] > ranks[0], "the middle vertex is most central");
/// ```
pub fn pagerank_window_vec(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
) -> Result<(Vec<f64>, PrStats), KernelError> {
    let mut ws = PrWorkspace::default();
    let stats = pagerank_window(pull, push, range, init, cfg, sched, &mut ws)?;
    Ok((ws.x, stats))
}

/// Fills `x` according to `init` over the active set: the shared
/// initialization semantics (uniform / provided / partial Eq. 4) used by
/// every kernel in the workspace, including the streaming baseline.
pub fn initialize(
    init: Init<'_>,
    active: &[bool],
    n_act: f64,
    x: &mut [f64],
) -> Result<(), KernelError> {
    let n = active.len();
    match init {
        Init::Uniform => {
            for v in 0..n {
                x[v] = if active[v] { 1.0 / n_act } else { 0.0 };
            }
        }
        Init::Provided(p) => {
            if p.len() != n {
                return Err(KernelError::BadVectorLength {
                    what: "provided init",
                    expected: n,
                    got: p.len(),
                });
            }
            let mut sum = 0.0;
            for v in 0..n {
                if active[v] && p[v] > 0.0 {
                    sum += p[v];
                }
            }
            if sum <= 0.0 {
                return initialize(Init::Uniform, active, n_act, x);
            }
            for v in 0..n {
                x[v] = if active[v] && p[v] > 0.0 {
                    p[v] / sum
                } else {
                    0.0
                };
            }
        }
        Init::Partial(prev) => {
            if prev.len() != n {
                return Err(KernelError::BadVectorLength {
                    what: "previous ranks",
                    expected: n,
                    got: prev.len(),
                });
            }
            // Eq. 4: shared vertices keep their scaled rank so the shared
            // mass is |Vi ∩ Vi-1| / |Vi|; newcomers take the uniform share.
            let mut shared = 0usize;
            let mut shared_sum = 0.0f64;
            for v in 0..n {
                if active[v] && prev[v] > 0.0 {
                    shared += 1;
                    shared_sum += prev[v];
                }
            }
            if shared == 0 || shared_sum <= 0.0 {
                return initialize(Init::Uniform, active, n_act, x);
            }
            let factor = (shared as f64 / n_act) / shared_sum;
            for v in 0..n {
                x[v] = if !active[v] {
                    0.0
                } else if prev[v] > 0.0 {
                    prev[v] * factor
                } else {
                    1.0 / n_act
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_pagerank;
    use crate::scheduler::{Partitioner, Scheduler};
    use tempopr_graph::{Event, TemporalCsr};

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
            ..PrConfig::default()
        }
    }

    /// Brute-force directed edge list of a window (symmetric build).
    fn window_edges(events: &[Event], range: TimeRange, symmetric: bool) -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for ev in events {
            if range.contains(ev.t) {
                e.push((ev.u, ev.v));
                if symmetric && ev.u != ev.v {
                    e.push((ev.v, ev.u));
                }
            }
        }
        e.sort_unstable();
        e.dedup();
        e
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(0, 1, 0),
            Event::new(1, 2, 5),
            Event::new(2, 3, 10),
            Event::new(3, 0, 15),
            Event::new(1, 3, 20),
            Event::new(0, 1, 25),
            Event::new(4, 5, 30),
            Event::new(2, 4, 35),
        ]
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_on_symmetric_window() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        for range in [
            TimeRange::new(0, 15),
            TimeRange::new(10, 30),
            TimeRange::new(0, 40),
            TimeRange::new(26, 40),
        ] {
            let (x, stats) =
                pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
            let edges = window_edges(&events, range, true);
            let r = reference_pagerank(6, &edges, &cfg());
            assert_close(&x, &r, 1e-9);
            assert!(stats.converged);
            assert!(stats.health.is_clean());
        }
    }

    #[test]
    fn matches_reference_on_directed_window() {
        let events = sample_events();
        let out = TemporalCsr::from_events(6, &events, false);
        let pull = out.transpose();
        let range = TimeRange::new(0, 25);
        let (x, _) = pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), None).unwrap();
        let edges = window_edges(&events, range, false);
        let r = reference_pagerank(6, &edges, &cfg());
        assert_close(&x, &r, 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 40);
        let (seq, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            for g in [1, 2, 64] {
                let s = Scheduler::new(part, g);
                let (par, _) =
                    pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), Some(&s)).unwrap();
                assert_close(&seq, &par, 1e-9);
            }
        }
    }

    #[test]
    fn empty_window_returns_zero() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let (x, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(10, 20), Init::Uniform, &cfg(), None)
                .unwrap();
        assert_eq!(x, vec![0.0; 3]);
        assert_eq!(stats.active_vertices, 0);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn mismatched_universes_is_an_error() {
        let a = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let b = TemporalCsr::from_events(4, &[Event::new(0, 1, 5)], true);
        let err = pagerank_window_vec(&a, &b, TimeRange::new(0, 10), Init::Uniform, &cfg(), None)
            .unwrap_err();
        assert_eq!(err, KernelError::MismatchedUniverses { pull: 3, push: 4 });
    }

    #[test]
    fn ranks_form_distribution_over_active_set() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 20); // vertices 4,5 inactive
        let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
        assert_eq!(stats.active_vertices, 4);
        assert_eq!(x[4], 0.0);
        assert_eq!(x[5], 0.0);
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_init_reaches_same_fixed_point() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let r0 = TimeRange::new(0, 20);
        let r1 = TimeRange::new(10, 35);
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &cfg(), None).unwrap();
        let (full, _) = pagerank_window_vec(&t, &t, r1, Init::Uniform, &cfg(), None).unwrap();
        let (part, _) =
            pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &cfg(), None).unwrap();
        assert_close(&full, &part, 1e-8);
    }

    #[test]
    fn partial_init_converges_no_slower_on_overlapping_windows() {
        // Build a chain-heavy graph with many events so windows overlap a lot.
        let mut events = Vec::new();
        for i in 0..200u32 {
            events.push(Event::new(i % 40, (i * 7 + 1) % 40, i as i64));
        }
        let t = TemporalCsr::from_events(40, &events, true);
        let r0 = TimeRange::new(0, 150);
        let r1 = TimeRange::new(10, 160);
        let c = PrConfig {
            alpha: 0.15,
            tol: 1e-10,
            max_iters: 200,
            ..PrConfig::default()
        };
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &c, None).unwrap();
        let (_, full) = pagerank_window_vec(&t, &t, r1, Init::Uniform, &c, None).unwrap();
        let (_, part) = pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &c, None).unwrap();
        assert!(
            part.iterations <= full.iterations,
            "partial {} vs full {}",
            part.iterations,
            full.iterations
        );
    }

    #[test]
    fn partial_init_mass_split_matches_eq4() {
        // V_i = {0,1,2}, V_{i-1} = {0,1}: shared mass should be 2/3.
        let active = vec![true, true, true, false];
        let prev = vec![0.7, 0.3, 0.0, 0.0];
        let mut x = vec![0.0; 4];
        initialize(Init::Partial(&prev), &active, 3.0, &mut x).unwrap();
        assert!((x[0] + x[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((x[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(x[3], 0.0);
        // Relative order within shared vertices preserved.
        assert!(x[0] > x[1]);
    }

    #[test]
    fn partial_init_with_disjoint_sets_falls_back_to_uniform() {
        let active = vec![false, false, true, true];
        let prev = vec![0.5, 0.5, 0.0, 0.0];
        let mut x = vec![0.0; 4];
        initialize(Init::Partial(&prev), &active, 2.0, &mut x).unwrap();
        assert_eq!(x, vec![0.0, 0.0, 0.5, 0.5]);
    }

    #[test]
    fn provided_init_is_masked_and_normalized() {
        let active = vec![true, true, false];
        let p = vec![3.0, 1.0, 5.0];
        let mut x = vec![0.0; 3];
        initialize(Init::Provided(&p), &active, 2.0, &mut x).unwrap();
        assert!((x[0] - 0.75).abs() < 1e-12);
        assert!((x[1] - 0.25).abs() < 1e-12);
        assert_eq!(x[2], 0.0);
    }

    #[test]
    fn wrong_length_init_is_an_error() {
        let active = vec![true, true];
        let p = vec![1.0];
        let mut x = vec![0.0; 2];
        assert!(matches!(
            initialize(Init::Provided(&p), &active, 2.0, &mut x),
            Err(KernelError::BadVectorLength { .. })
        ));
        assert!(matches!(
            initialize(Init::Partial(&p), &active, 2.0, &mut x),
            Err(KernelError::BadVectorLength { .. })
        ));
    }

    #[test]
    fn max_iters_caps_work() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            alpha: 0.15,
            tol: 0.0, // unreachable tolerance
            max_iters: 7,
            ..PrConfig::default()
        };
        let (_, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None).unwrap();
        assert_eq!(stats.iterations, 7);
        assert!(!stats.converged);
    }

    #[test]
    fn duplicate_events_within_window_do_not_skew_ranks() {
        // Same edge observed 3 times in the window vs once: identical ranks.
        let once = TemporalCsr::from_events(3, &[Event::new(0, 1, 1), Event::new(1, 2, 2)], true);
        let thrice = TemporalCsr::from_events(
            3,
            &[
                Event::new(0, 1, 1),
                Event::new(0, 1, 2),
                Event::new(0, 1, 3),
                Event::new(1, 2, 2),
            ],
            true,
        );
        let r = TimeRange::new(0, 5);
        let (a, _) = pagerank_window_vec(&once, &once, r, Init::Uniform, &cfg(), None).unwrap();
        let (b, _) = pagerank_window_vec(&thrice, &thrice, r, Init::Uniform, &cfg(), None).unwrap();
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Running a big window then a small one must not leak state.
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let mut ws = PrWorkspace::default();
        pagerank_window(
            &t,
            &t,
            TimeRange::new(0, 40),
            Init::Uniform,
            &cfg(),
            None,
            &mut ws,
        )
        .unwrap();
        let stats = pagerank_window(
            &t,
            &t,
            TimeRange::new(30, 35),
            Init::Uniform,
            &cfg(),
            None,
            &mut ws,
        )
        .unwrap();
        let (fresh, fresh_stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(30, 35), Init::Uniform, &cfg(), None)
                .unwrap();
        assert_eq!(stats.active_vertices, fresh_stats.active_vertices);
        assert_close(ws.ranks(), &fresh, 1e-12);
    }
    #[test]
    fn indexed_window_kernel_is_bit_identical() {
        use tempopr_graph::WindowIndex;
        let events = sample_events();
        let ranges: Vec<TimeRange> = (0..5).map(|k| TimeRange::new(k * 8, k * 8 + 14)).collect();
        // Symmetric.
        let t = TemporalCsr::from_events(6, &events, true);
        let idx = WindowIndex::build(&t, None, &ranges);
        for (j, &range) in ranges.iter().enumerate() {
            let (plain, ps) =
                pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
            let mut ws = PrWorkspace::default();
            let is =
                pagerank_window_indexed(&t, &t, &idx.view(j), Init::Uniform, &cfg(), None, &mut ws)
                    .unwrap();
            assert_eq!(ps, is, "window {j}");
            assert_eq!(plain, ws.x, "window {j} ranks must be bit-identical");
        }
        // Directed, with a scheduler.
        let out = TemporalCsr::from_events(6, &events, false);
        let pull = out.transpose();
        let didx = WindowIndex::build(&out, Some(&pull), &ranges);
        let s = Scheduler::new(Partitioner::Simple, 2);
        for (j, &range) in ranges.iter().enumerate() {
            let (plain, _) =
                pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), Some(&s)).unwrap();
            let mut ws = PrWorkspace::default();
            pagerank_window_indexed(
                &pull,
                &out,
                &didx.view(j),
                Init::Uniform,
                &cfg(),
                Some(&s),
                &mut ws,
            )
            .unwrap();
            assert_eq!(plain, ws.x, "directed window {j}");
        }
    }

    #[test]
    fn csr_kernel_matches_reference() {
        use tempopr_graph::Csr;
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 1), (0, 3)];
        let g = Csr::from_edges(5, edges.clone(), true);
        let mut ws = PrWorkspace::default();
        let stats =
            crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let mut sym = Vec::new();
        for &(u, v) in &edges {
            sym.push((u, v));
            sym.push((v, u));
        }
        let r = reference_pagerank(5, &sym, &cfg());
        assert_close(ws.ranks(), &r, 1e-9);
        assert!(stats.converged);
    }

    #[test]
    fn csr_kernel_directed_with_dangling() {
        use tempopr_graph::Csr;
        let edges = vec![(0u32, 1u32), (1, 2), (0, 2)]; // 2 dangles
        let out = Csr::from_edges(3, edges.clone(), false);
        let pull = out.transpose();
        let mut ws = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&pull, &out, Init::Uniform, &cfg(), None, &mut ws).unwrap();
        let r = reference_pagerank(3, &edges, &cfg());
        assert_close(ws.ranks(), &r, 1e-9);
    }

    #[test]
    fn csr_kernel_parallel_matches_sequential() {
        use tempopr_graph::Csr;
        let edges: Vec<(u32, u32)> = (0..60)
            .map(|i| ((i * 13 + 1) % 20, (i * 7 + 3) % 20))
            .collect();
        let g = Csr::from_edges(20, edges, true);
        let mut seq = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), None, &mut seq).unwrap();
        let s = Scheduler::new(Partitioner::Simple, 3);
        let mut par = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), Some(&s), &mut par).unwrap();
        assert_close(seq.ranks(), par.ranks(), 1e-9);
    }

    // --- Numeric-health guards and fault injection -----------------------

    #[test]
    fn guards_do_not_change_healthy_ranks() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 40);
        let on = cfg();
        let off = PrConfig {
            guard: GuardConfig::off(),
            ..cfg()
        };
        let (xon, son) = pagerank_window_vec(&t, &t, range, Init::Uniform, &on, None).unwrap();
        let (xoff, soff) = pagerank_window_vec(&t, &t, range, Init::Uniform, &off, None).unwrap();
        assert_eq!(xon, xoff, "guards must be read-only observers");
        assert_eq!(son, soff);
    }

    #[test]
    fn injected_nan_recovers_via_restart() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 40);
        let c = PrConfig {
            fault: Some(FaultKind::InjectNan { at_iter: 3 }),
            ..cfg()
        };
        let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &c, None).unwrap();
        assert_eq!(stats.health.restarts, 1);
        assert!(stats.converged);
        let (clean, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
        assert_close(&x, &clean, 1e-9);
    }

    #[test]
    fn injected_nan_fails_under_fail_policy() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            guard: GuardConfig {
                policy: NumericPolicy::Fail,
                ..GuardConfig::default()
            },
            fault: Some(FaultKind::InjectNan { at_iter: 2 }),
            ..cfg()
        };
        let err = pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None)
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::Numeric {
                iteration: 2,
                fault: NumericFault::NonFinite { .. }
            }
        ));
    }

    #[test]
    fn corrupted_reciprocal_is_detected() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            fault: Some(FaultKind::CorruptReciprocal),
            ..cfg()
        };
        // Persistent drift exhausts the renormalization budget and
        // escalates instead of spinning silently.
        let err = pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None)
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::Numeric {
                fault: NumericFault::MassDrift { .. },
                ..
            }
        ));
    }

    #[test]
    fn guards_off_lets_nan_through_silently() {
        // The contrast case justifying the guards: without them the kernel
        // runs to the cap and hands back a poisoned vector.
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            guard: GuardConfig::off(),
            fault: Some(FaultKind::InjectNan { at_iter: 2 }),
            max_iters: 10,
            ..cfg()
        };
        let (x, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None).unwrap();
        assert!(!stats.converged);
        assert!(x.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn forced_non_convergence_runs_to_cap() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            fault: Some(FaultKind::ForceNonConvergence),
            max_iters: 12,
            ..cfg()
        };
        let (_, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None).unwrap();
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 12);
    }

    #[test]
    fn injected_panic_unwinds() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            fault: Some(FaultKind::PanicInKernel),
            ..cfg()
        };
        let r = std::panic::catch_unwind(|| {
            pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None)
        });
        assert!(r.is_err());
    }
}
