//! Window PageRank by pull-style SpMV over the temporal CSR (paper §2.2,
//! §4.1).
//!
//! One iteration traverses every stored entry of the (multi-window)
//! temporal CSR once, testing each neighbor run against the window's time
//! range — `Θ(entries)` per SpMV, exactly the cost model of the paper. The
//! kernel supports three initializations: uniform, a caller-provided
//! vector, and the paper's *partial initialization* (Eq. 4) from the
//! previous window's ranks.
//!
//! ## Shared semantics
//! All PageRank implementations in this workspace agree on:
//! - simple-graph semantics (duplicate events in a window count once);
//! - the active set `V_i` = vertices with at least one in-window edge;
//!   `n = |V_i|`; inactive vertices hold rank 0;
//! - teleport `α` (default 0.15) paid to active vertices only, dangling
//!   rank mass redistributed uniformly over `V_i`;
//! - convergence when the L1 difference of successive iterates < `tol`.

use crate::scheduler::Scheduler;
use tempopr_graph::{Csr, TemporalCsr, TimeRange, VertexId, WindowIndexView};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrConfig {
    /// Teleportation probability `α` in Eq. 1 (damping factor is `1 - α`).
    pub alpha: f64,
    /// L1 convergence tolerance. The default 1e-6 converges in well under
    /// the 100-iteration cap at the default damping (L1 error decays as
    /// `(1-α)^k ≈ 0.85^k`); much tighter tolerances would hit the cap and
    /// mask warm-start savings.
    pub tol: f64,
    /// Iteration cap (implementations "execute a fixed number of iterations
    /// at most", §2.2).
    pub max_iters: usize,
}

impl Default for PrConfig {
    fn default() -> Self {
        PrConfig {
            alpha: 0.15,
            tol: 1e-6,
            max_iters: 100,
        }
    }
}

/// Outcome of one window's PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached within `max_iters`.
    pub converged: bool,
    /// `|V_i|`: vertices active in the window.
    pub active_vertices: usize,
}

/// How the rank vector is initialized before iterating.
#[derive(Debug, Clone, Copy)]
pub enum Init<'a> {
    /// `1/|V_i|` on every active vertex (§4.2 "the most common
    /// initialization").
    Uniform,
    /// A caller-supplied distribution; masked to the active set and
    /// renormalized (falls back to uniform if the masked sum vanishes).
    Provided(&'a [f64]),
    /// Partial initialization from the previous window's ranks (Eq. 4):
    /// vertices present in both windows keep their scaled previous rank,
    /// newcomers get the uniform share. Membership in `V_{i-1}` is inferred
    /// from a strictly positive previous rank.
    Partial(&'a [f64]),
}

/// Reusable buffers so per-window PageRank makes no heap allocations in
/// steady state (perf-book: workhorse collections).
#[derive(Debug, Default, Clone)]
pub struct PrWorkspace {
    /// Out-degree of each vertex in the current window.
    pub deg_out: Vec<u32>,
    /// In-degree (directed graphs only; empty for symmetric).
    pub deg_in: Vec<u32>,
    /// `1/deg_out` or 0.
    pub inv_deg: Vec<f64>,
    /// Active-set membership for the current window.
    pub active: Vec<bool>,
    /// The active vertices, ascending — power iterations loop over this
    /// compact list so a window's cost is `Θ(|V_i| + edges scanned)`, not
    /// `Θ(V)` per iteration.
    pub active_list: Vec<u32>,
    /// Current iterate; holds the result after a call.
    pub x: Vec<f64>,
    /// Scratch for the next iterate, indexed by active-list position.
    pub y: Vec<f64>,
}

impl PrWorkspace {
    /// Resizes every buffer for `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        self.deg_out.clear();
        self.deg_out.resize(n, 0);
        self.inv_deg.clear();
        self.inv_deg.resize(n, 0.0);
        self.active.clear();
        self.active.resize(n, false);
        self.active_list.clear();
        self.x.clear();
        self.x.resize(n, 0.0);
        self.y.clear();
        self.y.resize(n, 0.0);
    }

    /// The rank vector computed by the last call.
    pub fn ranks(&self) -> &[f64] {
        &self.x
    }
}

/// The pull sum for one destination vertex: Σ over active in-runs of
/// `x[u] · inv_deg[u]`.
#[inline]
fn pull_sum(pull: &TemporalCsr, range: TimeRange, x: &[f64], inv_deg: &[f64], v: VertexId) -> f64 {
    let mut s = 0.0;
    for run in pull.runs(v) {
        if run.active_in(range) {
            let u = run.neighbor as usize;
            s += x[u] * inv_deg[u];
        }
    }
    s
}

/// Computes PageRank for one window of a temporal CSR.
///
/// `pull` holds in-edges, `push` out-edges; pass the same reference twice
/// for a symmetric (undirected) build. If `sched` is `Some`, the degree
/// pass and every SpMV run in parallel under that scheduler (the paper's
/// application-level parallelism); otherwise everything is sequential (the
/// inner kernel of window-level parallelism).
///
/// The result lands in `ws.x` (see [`PrWorkspace::ranks`]).
pub fn pagerank_window(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> PrStats {
    let n = pull.num_vertices();
    assert_eq!(push.num_vertices(), n, "pull/push vertex universes differ");
    ws.ensure(n);
    let directed = !std::ptr::eq(pull, push);

    // --- Degree / activity pass -----------------------------------------
    match sched {
        Some(s) => {
            let deg_out = &mut ws.deg_out;
            s.map_reduce_slice_mut(
                deg_out,
                (),
                |off, slice| {
                    for (i, d) in slice.iter_mut().enumerate() {
                        *d = push.active_degree((off + i) as VertexId, range) as u32;
                    }
                },
                |_, _| (),
            );
        }
        None => {
            for v in 0..n {
                ws.deg_out[v] = push.active_degree(v as VertexId, range) as u32;
            }
        }
    }
    if directed {
        ws.deg_in.clear();
        ws.deg_in.resize(n, 0);
        match sched {
            Some(s) => {
                let deg_in = &mut ws.deg_in;
                s.map_reduce_slice_mut(
                    deg_in,
                    (),
                    |off, slice| {
                        for (i, d) in slice.iter_mut().enumerate() {
                            *d = pull.active_degree((off + i) as VertexId, range) as u32;
                        }
                    },
                    |_, _| (),
                );
            }
            None => {
                for v in 0..n {
                    ws.deg_in[v] = pull.active_degree(v as VertexId, range) as u32;
                }
            }
        }
    } else {
        ws.deg_in.clear();
    }
    let mut has_dangling = false;
    for v in 0..n {
        let act = ws.deg_out[v] > 0 || (directed && ws.deg_in[v] > 0);
        ws.active[v] = act;
        if act {
            ws.active_list.push(v as u32);
            if ws.deg_out[v] == 0 {
                has_dangling = true;
            } else {
                ws.inv_deg[v] = 1.0 / ws.deg_out[v] as f64;
            }
        }
    }

    power_iterate_window(pull, range, has_dangling, init, cfg, sched, ws)
}

/// [`pagerank_window`] with the degree/activity phase served from a
/// precomputed [`WindowIndexView`] instead of a scan of the CSR: setup
/// drops from `Θ(entries)` to `O(|V_w active|)`. The iteration itself is
/// identical, so ranks match the unindexed kernel bit-for-bit.
pub fn pagerank_window_indexed(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    view: &WindowIndexView<'_>,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> PrStats {
    let n = pull.num_vertices();
    assert_eq!(push.num_vertices(), n, "pull/push vertex universes differ");
    ws.ensure(n);
    ws.deg_in.clear();
    let has_dangling = setup_from_index(view, ws);
    power_iterate_window(pull, view.range, has_dangling, init, cfg, sched, ws)
}

/// Fills the workspace's degree/activity buffers from an index view in
/// `O(|V_w active|)`. Returns whether the window has dangling vertices.
/// The caller must have run [`PrWorkspace::ensure`] already.
pub(crate) fn setup_from_index(view: &WindowIndexView<'_>, ws: &mut PrWorkspace) -> bool {
    for (i, &v) in view.vertices.iter().enumerate() {
        let v = v as usize;
        ws.active[v] = true;
        ws.deg_out[v] = view.deg_out[i];
        ws.inv_deg[v] = view.inv_deg[i];
    }
    ws.active_list.extend_from_slice(view.vertices);
    !view.dangling.is_empty()
}

/// The shared iteration phase of [`pagerank_window`] and
/// [`pagerank_window_indexed`]: initialization plus damped power iteration
/// over the active list already present in `ws`.
fn power_iterate_window(
    pull: &TemporalCsr,
    range: TimeRange,
    has_dangling: bool,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> PrStats {
    let n_act = ws.active_list.len();
    if n_act == 0 {
        return PrStats {
            iterations: 0,
            converged: true,
            active_vertices: 0,
        };
    }
    let n_act_f = n_act as f64;

    // --- Initialization ---------------------------------------------------
    initialize(init, &ws.active, n_act_f, &mut ws.x);

    // --- Power iteration ---------------------------------------------------
    // Iterations loop over the compact active list; inactive vertices keep
    // their initial 0 forever. The new iterate lands in `y` by list
    // position and is scattered back into `x` after each pass.
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let list = &ws.active_list;
        let dangling: f64 = if has_dangling {
            list.iter()
                .filter(|&&v| ws.deg_out[v as usize] == 0)
                .map(|&v| ws.x[v as usize])
                .sum()
        } else {
            0.0
        };
        let base = alpha / n_act_f + damp * dangling / n_act_f;
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let compact = &mut ws.y[..n_act];
        let body = |off: usize, slice: &mut [f64]| {
            let mut d = 0.0;
            for (i, yv) in slice.iter_mut().enumerate() {
                let v = list[off + i];
                let val = base + damp * pull_sum(pull, range, x, inv_deg, v);
                d += (val - x[v as usize]).abs();
                *yv = val;
            }
            d
        };
        let diff = match sched {
            Some(s) => s.map_reduce_slice_mut(compact, 0.0f64, body, |a, b| a + b),
            None => body(0, compact),
        };
        for (i, &v) in ws.active_list.iter().enumerate() {
            ws.x[v as usize] = ws.y[i];
        }
        if diff < cfg.tol {
            converged = true;
            break;
        }
    }
    PrStats {
        iterations,
        converged,
        active_vertices: n_act,
    }
}

/// Computes PageRank on a static CSR graph — the kernel of the *offline*
/// execution model, which rebuilds a fresh [`Csr`] per window (§3.3.1).
///
/// `pull` holds in-edges and `push` out-edges; pass the same reference for
/// symmetric graphs. Semantics identical to [`pagerank_window`].
pub fn pagerank_csr(
    pull: &Csr,
    push: &Csr,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
    ws: &mut PrWorkspace,
) -> PrStats {
    let n = pull.num_vertices();
    assert_eq!(push.num_vertices(), n, "pull/push vertex universes differ");
    ws.ensure(n);
    let directed = !std::ptr::eq(pull, push);
    // Degree pass through the scheduler, like the temporal kernel's; in
    // the directed case `deg_in` carries pull degrees for the activity
    // test. The order-dependent active-list build stays sequential.
    if directed {
        ws.deg_in.clear();
        ws.deg_in.resize(n, 0);
    } else {
        ws.deg_in.clear();
    }
    match sched {
        Some(s) => {
            let deg_out = &mut ws.deg_out;
            s.map_reduce_slice_mut(
                deg_out,
                (),
                |off, slice| {
                    for (i, d) in slice.iter_mut().enumerate() {
                        *d = push.degree((off + i) as VertexId) as u32;
                    }
                },
                |_, _| (),
            );
            if directed {
                let deg_in = &mut ws.deg_in;
                s.map_reduce_slice_mut(
                    deg_in,
                    (),
                    |off, slice| {
                        for (i, d) in slice.iter_mut().enumerate() {
                            *d = pull.degree((off + i) as VertexId) as u32;
                        }
                    },
                    |_, _| (),
                );
            }
        }
        None => {
            for v in 0..n {
                ws.deg_out[v] = push.degree(v as VertexId) as u32;
            }
            if directed {
                for v in 0..n {
                    ws.deg_in[v] = pull.degree(v as VertexId) as u32;
                }
            }
        }
    }
    let mut has_dangling = false;
    for v in 0..n {
        let out = ws.deg_out[v];
        let act = out > 0 || (directed && ws.deg_in[v] > 0);
        ws.active[v] = act;
        if act {
            ws.active_list.push(v as u32);
            if out == 0 {
                has_dangling = true;
            } else {
                ws.inv_deg[v] = 1.0 / out as f64;
            }
        }
    }
    let n_act = ws.active_list.len();
    if n_act == 0 {
        return PrStats {
            iterations: 0,
            converged: true,
            active_vertices: 0,
        };
    }
    let n_act_f = n_act as f64;
    initialize(init, &ws.active, n_act_f, &mut ws.x);
    let alpha = cfg.alpha;
    let damp = 1.0 - alpha;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let list = &ws.active_list;
        let dangling: f64 = if has_dangling {
            list.iter()
                .filter(|&&v| ws.deg_out[v as usize] == 0)
                .map(|&v| ws.x[v as usize])
                .sum()
        } else {
            0.0
        };
        let base = alpha / n_act_f + damp * dangling / n_act_f;
        let x = &ws.x;
        let inv_deg = &ws.inv_deg;
        let compact = &mut ws.y[..n_act];
        let body = |off: usize, slice: &mut [f64]| {
            let mut d = 0.0;
            for (i, yv) in slice.iter_mut().enumerate() {
                let v = list[off + i];
                let mut s = 0.0;
                for &u in pull.neighbors(v) {
                    s += x[u as usize] * inv_deg[u as usize];
                }
                let val = base + damp * s;
                d += (val - x[v as usize]).abs();
                *yv = val;
            }
            d
        };
        let diff = match sched {
            Some(s) => s.map_reduce_slice_mut(compact, 0.0f64, body, |a, b| a + b),
            None => body(0, compact),
        };
        for (i, &v) in ws.active_list.iter().enumerate() {
            ws.x[v as usize] = ws.y[i];
        }
        if diff < cfg.tol {
            converged = true;
            break;
        }
    }
    PrStats {
        iterations,
        converged,
        active_vertices: n_act,
    }
}

/// Convenience wrapper allocating a fresh workspace and returning the rank
/// vector.
///
/// ```
/// use tempopr_graph::{Event, TemporalCsr, TimeRange};
/// use tempopr_kernel::{pagerank_window_vec, Init, PrConfig};
/// let t = TemporalCsr::from_events(
///     3,
///     &[Event::new(0, 1, 1), Event::new(1, 2, 2)],
///     true,
/// );
/// let (ranks, stats) = pagerank_window_vec(
///     &t, &t, TimeRange::new(0, 10), Init::Uniform, &PrConfig::default(), None,
/// );
/// assert!(stats.converged);
/// assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// assert!(ranks[1] > ranks[0], "the middle vertex is most central");
/// ```
pub fn pagerank_window_vec(
    pull: &TemporalCsr,
    push: &TemporalCsr,
    range: TimeRange,
    init: Init<'_>,
    cfg: &PrConfig,
    sched: Option<&Scheduler>,
) -> (Vec<f64>, PrStats) {
    let mut ws = PrWorkspace::default();
    let stats = pagerank_window(pull, push, range, init, cfg, sched, &mut ws);
    (ws.x, stats)
}

/// Fills `x` according to `init` over the active set: the shared
/// initialization semantics (uniform / provided / partial Eq. 4) used by
/// every kernel in the workspace, including the streaming baseline.
pub fn initialize(init: Init<'_>, active: &[bool], n_act: f64, x: &mut [f64]) {
    let n = active.len();
    match init {
        Init::Uniform => {
            for v in 0..n {
                x[v] = if active[v] { 1.0 / n_act } else { 0.0 };
            }
        }
        Init::Provided(p) => {
            assert_eq!(p.len(), n, "provided init has wrong length");
            let mut sum = 0.0;
            for v in 0..n {
                if active[v] && p[v] > 0.0 {
                    sum += p[v];
                }
            }
            if sum <= 0.0 {
                initialize(Init::Uniform, active, n_act, x);
                return;
            }
            for v in 0..n {
                x[v] = if active[v] && p[v] > 0.0 {
                    p[v] / sum
                } else {
                    0.0
                };
            }
        }
        Init::Partial(prev) => {
            assert_eq!(prev.len(), n, "previous ranks have wrong length");
            // Eq. 4: shared vertices keep their scaled rank so the shared
            // mass is |Vi ∩ Vi-1| / |Vi|; newcomers take the uniform share.
            let mut shared = 0usize;
            let mut shared_sum = 0.0f64;
            for v in 0..n {
                if active[v] && prev[v] > 0.0 {
                    shared += 1;
                    shared_sum += prev[v];
                }
            }
            if shared == 0 || shared_sum <= 0.0 {
                initialize(Init::Uniform, active, n_act, x);
                return;
            }
            let factor = (shared as f64 / n_act) / shared_sum;
            for v in 0..n {
                x[v] = if !active[v] {
                    0.0
                } else if prev[v] > 0.0 {
                    prev[v] * factor
                } else {
                    1.0 / n_act
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_pagerank;
    use crate::scheduler::{Partitioner, Scheduler};
    use tempopr_graph::{Event, TemporalCsr};

    fn cfg() -> PrConfig {
        PrConfig {
            alpha: 0.15,
            tol: 1e-12,
            max_iters: 500,
        }
    }

    /// Brute-force directed edge list of a window (symmetric build).
    fn window_edges(events: &[Event], range: TimeRange, symmetric: bool) -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for ev in events {
            if range.contains(ev.t) {
                e.push((ev.u, ev.v));
                if symmetric && ev.u != ev.v {
                    e.push((ev.v, ev.u));
                }
            }
        }
        e.sort_unstable();
        e.dedup();
        e
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(0, 1, 0),
            Event::new(1, 2, 5),
            Event::new(2, 3, 10),
            Event::new(3, 0, 15),
            Event::new(1, 3, 20),
            Event::new(0, 1, 25),
            Event::new(4, 5, 30),
            Event::new(2, 4, 35),
        ]
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_on_symmetric_window() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        for range in [
            TimeRange::new(0, 15),
            TimeRange::new(10, 30),
            TimeRange::new(0, 40),
            TimeRange::new(26, 40),
        ] {
            let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None);
            let edges = window_edges(&events, range, true);
            let r = reference_pagerank(6, &edges, &cfg());
            assert_close(&x, &r, 1e-9);
            assert!(stats.converged);
        }
    }

    #[test]
    fn matches_reference_on_directed_window() {
        let events = sample_events();
        let out = TemporalCsr::from_events(6, &events, false);
        let pull = out.transpose();
        let range = TimeRange::new(0, 25);
        let (x, _) = pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), None);
        let edges = window_edges(&events, range, false);
        let r = reference_pagerank(6, &edges, &cfg());
        assert_close(&x, &r, 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 40);
        let (seq, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None);
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            for g in [1, 2, 64] {
                let s = Scheduler::new(part, g);
                let (par, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), Some(&s));
                assert_close(&seq, &par, 1e-9);
            }
        }
    }

    #[test]
    fn empty_window_returns_zero() {
        let t = TemporalCsr::from_events(3, &[Event::new(0, 1, 5)], true);
        let (x, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(10, 20), Init::Uniform, &cfg(), None);
        assert_eq!(x, vec![0.0; 3]);
        assert_eq!(stats.active_vertices, 0);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn ranks_form_distribution_over_active_set() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let range = TimeRange::new(0, 20); // vertices 4,5 inactive
        let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None);
        assert_eq!(stats.active_vertices, 4);
        assert_eq!(x[4], 0.0);
        assert_eq!(x[5], 0.0);
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_init_reaches_same_fixed_point() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let r0 = TimeRange::new(0, 20);
        let r1 = TimeRange::new(10, 35);
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &cfg(), None);
        let (full, _) = pagerank_window_vec(&t, &t, r1, Init::Uniform, &cfg(), None);
        let (part, _) = pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &cfg(), None);
        assert_close(&full, &part, 1e-8);
    }

    #[test]
    fn partial_init_converges_no_slower_on_overlapping_windows() {
        // Build a chain-heavy graph with many events so windows overlap a lot.
        let mut events = Vec::new();
        for i in 0..200u32 {
            events.push(Event::new(i % 40, (i * 7 + 1) % 40, i as i64));
        }
        let t = TemporalCsr::from_events(40, &events, true);
        let r0 = TimeRange::new(0, 150);
        let r1 = TimeRange::new(10, 160);
        let c = PrConfig {
            alpha: 0.15,
            tol: 1e-10,
            max_iters: 200,
        };
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &c, None);
        let (_, full) = pagerank_window_vec(&t, &t, r1, Init::Uniform, &c, None);
        let (_, part) = pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &c, None);
        assert!(
            part.iterations <= full.iterations,
            "partial {} vs full {}",
            part.iterations,
            full.iterations
        );
    }

    #[test]
    fn partial_init_mass_split_matches_eq4() {
        // V_i = {0,1,2}, V_{i-1} = {0,1}: shared mass should be 2/3.
        let active = vec![true, true, true, false];
        let prev = vec![0.7, 0.3, 0.0, 0.0];
        let mut x = vec![0.0; 4];
        initialize(Init::Partial(&prev), &active, 3.0, &mut x);
        assert!((x[0] + x[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((x[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(x[3], 0.0);
        // Relative order within shared vertices preserved.
        assert!(x[0] > x[1]);
    }

    #[test]
    fn partial_init_with_disjoint_sets_falls_back_to_uniform() {
        let active = vec![false, false, true, true];
        let prev = vec![0.5, 0.5, 0.0, 0.0];
        let mut x = vec![0.0; 4];
        initialize(Init::Partial(&prev), &active, 2.0, &mut x);
        assert_eq!(x, vec![0.0, 0.0, 0.5, 0.5]);
    }

    #[test]
    fn provided_init_is_masked_and_normalized() {
        let active = vec![true, true, false];
        let p = vec![3.0, 1.0, 5.0];
        let mut x = vec![0.0; 3];
        initialize(Init::Provided(&p), &active, 2.0, &mut x);
        assert!((x[0] - 0.75).abs() < 1e-12);
        assert!((x[1] - 0.25).abs() < 1e-12);
        assert_eq!(x[2], 0.0);
    }

    #[test]
    fn max_iters_caps_work() {
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let c = PrConfig {
            alpha: 0.15,
            tol: 0.0, // unreachable tolerance
            max_iters: 7,
        };
        let (_, stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(0, 40), Init::Uniform, &c, None);
        assert_eq!(stats.iterations, 7);
        assert!(!stats.converged);
    }

    #[test]
    fn duplicate_events_within_window_do_not_skew_ranks() {
        // Same edge observed 3 times in the window vs once: identical ranks.
        let once = TemporalCsr::from_events(3, &[Event::new(0, 1, 1), Event::new(1, 2, 2)], true);
        let thrice = TemporalCsr::from_events(
            3,
            &[
                Event::new(0, 1, 1),
                Event::new(0, 1, 2),
                Event::new(0, 1, 3),
                Event::new(1, 2, 2),
            ],
            true,
        );
        let r = TimeRange::new(0, 5);
        let (a, _) = pagerank_window_vec(&once, &once, r, Init::Uniform, &cfg(), None);
        let (b, _) = pagerank_window_vec(&thrice, &thrice, r, Init::Uniform, &cfg(), None);
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Running a big window then a small one must not leak state.
        let events = sample_events();
        let t = TemporalCsr::from_events(6, &events, true);
        let mut ws = PrWorkspace::default();
        pagerank_window(
            &t,
            &t,
            TimeRange::new(0, 40),
            Init::Uniform,
            &cfg(),
            None,
            &mut ws,
        );
        let stats = pagerank_window(
            &t,
            &t,
            TimeRange::new(30, 35),
            Init::Uniform,
            &cfg(),
            None,
            &mut ws,
        );
        let (fresh, fresh_stats) =
            pagerank_window_vec(&t, &t, TimeRange::new(30, 35), Init::Uniform, &cfg(), None);
        assert_eq!(stats.active_vertices, fresh_stats.active_vertices);
        assert_close(ws.ranks(), &fresh, 1e-12);
    }
    #[test]
    fn indexed_window_kernel_is_bit_identical() {
        use tempopr_graph::WindowIndex;
        let events = sample_events();
        let ranges: Vec<TimeRange> = (0..5).map(|k| TimeRange::new(k * 8, k * 8 + 14)).collect();
        // Symmetric.
        let t = TemporalCsr::from_events(6, &events, true);
        let idx = WindowIndex::build(&t, None, &ranges);
        for (j, &range) in ranges.iter().enumerate() {
            let (plain, ps) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None);
            let mut ws = PrWorkspace::default();
            let is =
                pagerank_window_indexed(&t, &t, &idx.view(j), Init::Uniform, &cfg(), None, &mut ws);
            assert_eq!(ps, is, "window {j}");
            assert_eq!(plain, ws.x, "window {j} ranks must be bit-identical");
        }
        // Directed, with a scheduler.
        let out = TemporalCsr::from_events(6, &events, false);
        let pull = out.transpose();
        let didx = WindowIndex::build(&out, Some(&pull), &ranges);
        let s = Scheduler::new(Partitioner::Simple, 2);
        for (j, &range) in ranges.iter().enumerate() {
            let (plain, _) =
                pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), Some(&s));
            let mut ws = PrWorkspace::default();
            pagerank_window_indexed(
                &pull,
                &out,
                &didx.view(j),
                Init::Uniform,
                &cfg(),
                Some(&s),
                &mut ws,
            );
            assert_eq!(plain, ws.x, "directed window {j}");
        }
    }

    #[test]
    fn csr_kernel_matches_reference() {
        use tempopr_graph::Csr;
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 1), (0, 3)];
        let g = Csr::from_edges(5, edges.clone(), true);
        let mut ws = PrWorkspace::default();
        let stats = crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), None, &mut ws);
        let mut sym = Vec::new();
        for &(u, v) in &edges {
            sym.push((u, v));
            sym.push((v, u));
        }
        let r = reference_pagerank(5, &sym, &cfg());
        assert_close(ws.ranks(), &r, 1e-9);
        assert!(stats.converged);
    }

    #[test]
    fn csr_kernel_directed_with_dangling() {
        use tempopr_graph::Csr;
        let edges = vec![(0u32, 1u32), (1, 2), (0, 2)]; // 2 dangles
        let out = Csr::from_edges(3, edges.clone(), false);
        let pull = out.transpose();
        let mut ws = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&pull, &out, Init::Uniform, &cfg(), None, &mut ws);
        let r = reference_pagerank(3, &edges, &cfg());
        assert_close(ws.ranks(), &r, 1e-9);
    }

    #[test]
    fn csr_kernel_parallel_matches_sequential() {
        use tempopr_graph::Csr;
        let edges: Vec<(u32, u32)> = (0..60)
            .map(|i| ((i * 13 + 1) % 20, (i * 7 + 3) % 20))
            .collect();
        let g = Csr::from_edges(20, edges, true);
        let mut seq = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), None, &mut seq);
        let s = Scheduler::new(Partitioner::Simple, 3);
        let mut par = PrWorkspace::default();
        crate::pagerank::pagerank_csr(&g, &g, Init::Uniform, &cfg(), Some(&s), &mut par);
        assert_close(seq.ranks(), par.ranks(), 1e-9);
    }
}
