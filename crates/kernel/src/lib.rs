//! # tempopr-kernel
//!
//! PageRank computation kernels for postmortem temporal graph analysis
//! (Hossain & Saule, ICPP '22, §2.2 and §4.3-4.4):
//!
//! - [`pagerank`]: pull-style SpMV power iteration over one window of a
//!   temporal CSR, with uniform / provided / partial (Eq. 4)
//!   initialization;
//! - [`spmm`]: the SpMM-inspired batched kernel computing many windows of
//!   one multi-window graph simultaneously on interleaved rank vectors;
//! - [`scheduler`]: the TBB partitioner analogues (auto / simple / static
//!   + grain size) on top of rayon's work-stealing pool;
//! - [`linear_system`]: exact dense solution of the paper's Eq. 2 (the
//!   validation oracle for every iterative kernel);
//! - [`personalized`]: windowed personalized PageRank (seed-relative
//!   importance);
//! - [`propagation`]: a push-style kernel with propagation blocking
//!   (Beamer et al., cited in §2.2 as compatible);
//! - [`mod@reference`]: the slow, obvious implementation every kernel is
//!   tested against.
//!
//! All kernels return `Result<_, `[`KernelError`]`>` and run under
//! per-iteration numeric-health guards (see [`GuardConfig`] /
//! [`NumericPolicy`]); deterministic faults can be injected via
//! [`PrConfig::fault`] for recovery testing.

// `deny`, not `forbid`: the one sanctioned exception is the runtime-
// dispatched SIMD module, which opts back in with a scoped allow (and CI
// greps that the keyword never appears anywhere else in the crate).
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod linear_system;
pub mod observe;
pub mod pagerank;
pub mod personalized;
pub mod propagation;
pub mod reference;
pub mod scheduler;
pub mod simd;
pub mod spmm;

pub use error::{FaultKind, KernelError, NumericFault};
pub use linear_system::solve_pagerank_exact;
pub use observe::{BatchObs, KernelObserver, Obs};
pub use pagerank::{
    pagerank_csr, pagerank_csr_obs, pagerank_window, pagerank_window_indexed,
    pagerank_window_indexed_obs, pagerank_window_obs, pagerank_window_vec, GuardConfig, Init,
    NumericPolicy, PrConfig, PrHealth, PrStats, PrWorkspace, MAX_RENORMALIZATIONS, MAX_RESTARTS,
};
pub use personalized::pagerank_window_personalized;
pub use propagation::{
    pagerank_window_blocking, pagerank_window_blocking_indexed,
    pagerank_window_blocking_indexed_obs, pagerank_window_blocking_obs, BlockingWorkspace,
};
pub use reference::reference_pagerank;
pub use scheduler::{overlap, thread_pool, Balance, Partitioner, Scheduler};
pub use simd::{SimdDispatch, SimdPolicy};
pub use spmm::{
    pagerank_batch, pagerank_batch_indexed, pagerank_batch_indexed_obs, pagerank_batch_obs,
    SpmmWorkspace, MAX_LANES,
};
