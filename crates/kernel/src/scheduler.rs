//! Partitioner-aware parallel scheduling (paper §4.3, §6.3.2).
//!
//! The paper drives both window-level and vertex-level loops through Intel
//! TBB, comparing `auto_partitioner`, `simple_partitioner`, and
//! `static_partitioner` at many grain sizes. Rayon is the Rust counterpart
//! of TBB's work-stealing scheduler; this module maps the three TBB
//! partitioners onto rayon:
//!
//! - [`Partitioner::Auto`]: split the index range into grain-sized chunks
//!   and let rayon's adaptive splitter decide how far to actually divide —
//!   like TBB's `auto_partitioner`, chunks are only broken up when threads
//!   run out of work.
//! - [`Partitioner::Simple`]: force splitting all the way down to single
//!   grain-sized chunks, like TBB's `simple_partitioner`.
//! - [`Partitioner::Static`]: pre-split the range into exactly one even
//!   piece per thread with no stealing benefit, like TBB's
//!   `static_partitioner` (the grain size is ignored, as TBB does when the
//!   even split already exceeds it).
//!
//! All loops in the crate funnel through [`Scheduler::for_each_range`] /
//! [`Scheduler::map_reduce_range`], so every kernel inherits the three
//! partitioners and the grain-size knob.

use rayon::prelude::*;
use std::ops::Range;

/// TBB partitioner analogue selecting how an index range is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioner {
    /// Work-stealing with adaptive splitting (TBB `auto_partitioner`).
    #[default]
    Auto,
    /// Eager splitting down to grain-sized chunks (TBB `simple_partitioner`).
    Simple,
    /// Even per-thread pre-split, no stealing (TBB `static_partitioner`).
    Static,
}

/// How chunk boundaries weigh the work they enclose.
///
/// Vertex-balanced chunks give every task the same number of *rows*; on
/// skewed (power-law) graphs a task that draws the hub vertices owns far
/// more edge work than its siblings and the whole pass waits on it.
/// Edge-balanced chunks place the same number of boundaries at ~equal
/// cumulative *edge* positions instead (prefix sum over the adjacency
/// offsets), which is the imbalance fix the paper's §4.3 partitioner study
/// is sensitive to. Only loops that supply a weight prefix (the SpMM
/// kernel) honor this; unweighted loops always split by index count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Balance {
    /// Equal index (vertex) counts per chunk.
    #[default]
    Vertex,
    /// Equal cumulative weight (edge work) per chunk.
    Edge,
}

/// A partitioner plus grain size ("WS granularity size" in Figs. 7-10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    /// Which partitioner to emulate.
    pub partitioner: Partitioner,
    /// Grain size: the minimum number of consecutive indices a task
    /// processes (clamped to at least 1).
    pub granularity: usize,
    /// How weighted loops place their chunk boundaries.
    pub balance: Balance,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            partitioner: Partitioner::Auto,
            granularity: 1,
            balance: Balance::Vertex,
        }
    }
}

impl Scheduler {
    /// Creates a scheduler; granularity is clamped to at least 1.
    pub fn new(partitioner: Partitioner, granularity: usize) -> Self {
        Scheduler {
            partitioner,
            granularity: granularity.max(1),
            balance: Balance::Vertex,
        }
    }

    /// This scheduler with a different [`Balance`].
    pub fn with_balance(mut self, balance: Balance) -> Self {
        self.balance = balance;
        self
    }

    /// The chunk boundaries this scheduler would use for `n` items: one
    /// `Range` per leaf task.
    pub fn chunks(&self, n: usize) -> Vec<Range<usize>> {
        let g = self.granularity.max(1);
        let chunk = match self.partitioner {
            Partitioner::Auto | Partitioner::Simple => g,
            Partitioner::Static => {
                let t = rayon::current_num_threads().max(1);
                n.div_ceil(t).max(1)
            }
        };
        let mut out = Vec::with_capacity(n.div_ceil(chunk));
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            out.push(lo..hi);
            lo = hi;
        }
        out
    }

    /// Degree-weighted chunk boundaries: the same *number* of chunks as
    /// [`Scheduler::chunks`] would produce for `prefix.len() - 1` items,
    /// but with boundaries placed at ~equal cumulative weight, so each
    /// task owns about the same amount of enclosed work instead of the
    /// same item count.
    ///
    /// `prefix` is a non-decreasing prefix sum with `prefix[i]` the total
    /// weight of items `0..i` (so `prefix` has one more entry than there
    /// are items). Every chunk is non-empty and the chunks exactly cover
    /// `0..n`; with a constant per-item weight this degenerates to the
    /// unweighted chunking's balance (boundaries may shift by at most a
    /// rounding row). All-zero weights fall back to unweighted chunks.
    pub fn chunks_weighted(&self, prefix: &[usize]) -> Vec<Range<usize>> {
        let n = prefix.len().saturating_sub(1);
        if n == 0 {
            return Vec::new();
        }
        let total = prefix[n] - prefix[0];
        let k = self.chunks(n).len();
        if k <= 1 || total == 0 {
            return self.chunks(n);
        }
        let mut out = Vec::with_capacity(k);
        let mut lo = 0usize;
        for i in 1..k {
            // Ideal boundary: cumulative weight i/k of the total. u128
            // keeps `total * i` exact for any realistic edge count.
            let target = prefix[0] + ((total as u128 * i as u128) / k as u128) as usize;
            let cut = prefix.partition_point(|&p| p < target);
            // Clamp so every chunk (including the ones still to come)
            // keeps at least one item.
            let cut = cut.clamp(lo + 1, n - (k - i));
            out.push(lo..cut);
            lo = cut;
        }
        out.push(lo..n);
        out
    }

    /// Runs `f` over every index chunk of `0..n` in parallel according to
    /// the partitioner. `f` receives contiguous index ranges; consecutive
    /// indices within a grain always land in the same invocation (this is
    /// what lets window-level parallelism keep partial initialization:
    /// consecutive windows in a grain run on one thread, in order).
    pub fn for_each_range<F>(&self, n: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let chunks = self.chunks(n);
        match self.partitioner {
            // Adaptive: rayon may merge neighboring chunks into one task
            // unless stealing demands splitting.
            Partitioner::Auto => {
                chunks.into_par_iter().for_each(&f);
            }
            // Eager: force one task per chunk.
            Partitioner::Simple => {
                chunks.into_par_iter().with_max_len(1).for_each(&f);
            }
            // Static: chunks are already one-per-thread; forbid merging.
            Partitioner::Static => {
                chunks.into_par_iter().with_max_len(1).for_each(&f);
            }
        }
    }

    /// Parallel map-reduce over index chunks: `map` produces a partial
    /// value per chunk, folded with `reduce` from `identity`.
    pub fn map_reduce_range<T, M, R>(&self, n: usize, identity: T, map: M, reduce: R) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        if n == 0 {
            return identity;
        }
        let chunks = self.chunks(n);
        let iter = chunks.into_par_iter();
        match self.partitioner {
            Partitioner::Auto => iter.map(&map).reduce(|| identity.clone(), &reduce),
            Partitioner::Simple | Partitioner::Static => iter
                .with_max_len(1)
                .map(&map)
                .reduce(|| identity.clone(), &reduce),
        }
    }

    /// Parallel pass over disjoint mutable chunks of `data`, each paired
    /// with its offset, reducing the per-chunk results. This is the shape of
    /// a PageRank iteration: write `y[chunk]` while returning the chunk's
    /// L1-difference contribution.
    pub fn map_reduce_slice_mut<T, A, M, R>(
        &self,
        data: &mut [T],
        identity: A,
        map: M,
        reduce: R,
    ) -> A
    where
        T: Send,
        A: Send + Sync + Clone,
        M: Fn(usize, &mut [T]) -> A + Sync,
        R: Fn(A, A) -> A + Sync + Send,
    {
        let n = data.len();
        if n == 0 {
            return identity;
        }
        let chunks = self.chunks(n);
        // Carve `data` into the scheduler's chunks (disjoint, in order).
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks.len());
        let mut rest = data;
        let mut offset = 0usize;
        for c in &chunks {
            debug_assert_eq!(c.start, offset);
            let (head, tail) = rest.split_at_mut(c.len());
            parts.push((offset, head));
            rest = tail;
            offset = c.end;
        }
        let iter = parts.into_par_iter();
        match self.partitioner {
            Partitioner::Auto => iter
                .map(|(off, s)| map(off, s))
                .reduce(|| identity.clone(), &reduce),
            Partitioner::Simple | Partitioner::Static => iter
                .with_max_len(1)
                .map(|(off, s)| map(off, s))
                .reduce(|| identity.clone(), &reduce),
        }
    }

    /// Like [`Scheduler::map_reduce_slice_mut`] but for row-major data with
    /// `width` elements per row: chunking happens over *rows*, so a chunk's
    /// slice is always row-aligned. Used by the SpMM kernel, whose rank
    /// matrix stores `vl` lanes per vertex.
    pub fn map_reduce_rows_mut<T, A, M, R>(
        &self,
        data: &mut [T],
        width: usize,
        identity: A,
        map: M,
        reduce: R,
    ) -> A
    where
        T: Send,
        A: Send + Sync + Clone,
        M: Fn(usize, &mut [T]) -> A + Sync,
        R: Fn(A, A) -> A + Sync + Send,
    {
        assert!(
            width > 0 && data.len().is_multiple_of(width),
            "non-rectangular data"
        );
        let chunks = self.chunks(data.len() / width);
        self.map_reduce_rows_chunked_mut(data, width, &chunks, identity, map, reduce)
    }

    /// [`Scheduler::map_reduce_rows_mut`] with caller-supplied chunk
    /// boundaries (e.g. from [`Scheduler::chunks_weighted`], which is how
    /// the SpMM kernel gets edge-balanced tasks). `chunks` must be
    /// non-empty ranges exactly covering `0..rows` in order — the shape
    /// [`Scheduler::chunks`]/[`Scheduler::chunks_weighted`] produce.
    pub fn map_reduce_rows_chunked_mut<T, A, M, R>(
        &self,
        data: &mut [T],
        width: usize,
        chunks: &[Range<usize>],
        identity: A,
        map: M,
        reduce: R,
    ) -> A
    where
        T: Send,
        A: Send + Sync + Clone,
        M: Fn(usize, &mut [T]) -> A + Sync,
        R: Fn(A, A) -> A + Sync + Send,
    {
        assert!(
            width > 0 && data.len().is_multiple_of(width),
            "non-rectangular data"
        );
        let rows = data.len() / width;
        if rows == 0 {
            return identity;
        }
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks.len());
        let mut rest = data;
        let mut row = 0usize;
        for c in chunks {
            assert!(c.start == row && c.end > c.start, "chunks must tile rows");
            let (head, tail) = rest.split_at_mut(c.len() * width);
            parts.push((row, head));
            rest = tail;
            row = c.end;
        }
        assert_eq!(row, rows, "chunks must cover every row");
        let iter = parts.into_par_iter();
        match self.partitioner {
            Partitioner::Auto => iter
                .map(|(r, s)| map(r, s))
                .reduce(|| identity.clone(), &reduce),
            Partitioner::Simple | Partitioner::Static => iter
                .with_max_len(1)
                .map(|(r, s)| map(r, s))
                .reduce(|| identity.clone(), &reduce),
        }
    }

    /// Sequential fallback with identical chunking, used by the
    /// application-level mode's outer window loop.
    pub fn for_each_range_seq<F>(&self, n: usize, mut f: F)
    where
        F: FnMut(Range<usize>),
    {
        for r in self.chunks(n) {
            f(r);
        }
    }
}

/// Runs `background` on a scoped helper thread while `foreground` runs on
/// the calling thread, returning both results plus how long the caller had
/// to *wait* for the background task after its own work finished (the
/// pipeline stall). The scope guarantees the helper joined before this
/// returns, so both closures may borrow from the caller's stack.
///
/// This is the primitive behind the executor's setup/compute overlap: the
/// next window's setup runs as `background` while the current window's
/// kernel runs as `foreground`.
pub fn overlap<RA, RB, FA, FB>(background: FA, foreground: FB) -> (RA, RB, std::time::Duration)
where
    RA: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB,
{
    std::thread::scope(|s| {
        let handle = s.spawn(background);
        let fg = foreground();
        let wait_start = std::time::Instant::now();
        let bg = match handle.join() {
            Ok(v) => v,
            // Propagate a background panic on the calling thread so the
            // driver's own isolation (if any) sees it; overlap itself adds
            // no swallowing.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (bg, fg, wait_start.elapsed())
    })
}

/// Builds a rayon thread pool with `threads` workers (0 = rayon default,
/// i.e. all cores). Experiments use dedicated pools so thread count is an
/// explicit experimental variable instead of global state.
pub fn thread_pool(threads: usize) -> Result<rayon::ThreadPool, crate::KernelError> {
    let mut b = rayon::ThreadPoolBuilder::new();
    if threads > 0 {
        b = b.num_threads(threads);
    }
    b.build()
        .map_err(|e| crate::KernelError::ThreadPool(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn chunks_cover_range_exactly() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            for g in [1usize, 3, 7, 100] {
                let s = Scheduler::new(part, g);
                for n in [0usize, 1, 5, 17, 64] {
                    let chunks = s.chunks(n);
                    let mut next = 0;
                    for c in &chunks {
                        assert_eq!(c.start, next);
                        assert!(c.end > c.start);
                        next = c.end;
                    }
                    assert_eq!(next, n, "partitioner {part:?} g={g} n={n}");
                }
            }
        }
    }

    #[test]
    fn auto_and_simple_respect_granularity() {
        let s = Scheduler::new(Partitioner::Simple, 4);
        let chunks = s.chunks(10);
        assert_eq!(chunks, vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn static_splits_by_thread_count() {
        let s = Scheduler::new(Partitioner::Static, 1);
        let t = rayon::current_num_threads().max(1);
        let chunks = s.chunks(10 * t);
        assert_eq!(chunks.len(), t);
    }

    #[test]
    fn granularity_clamped_to_one() {
        let s = Scheduler::new(Partitioner::Auto, 0);
        assert_eq!(s.granularity, 1);
        assert_eq!(s.chunks(3).len(), 3);
    }

    #[test]
    fn for_each_range_visits_every_index_once() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 3);
            let n = 1000;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            s.for_each_range(n, |r| {
                for i in r {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{part:?}"
            );
        }
    }

    #[test]
    fn map_reduce_sums_correctly() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 7);
            let total = s.map_reduce_range(100, 0usize, |r| r.sum::<usize>(), |a, b| a + b);
            assert_eq!(total, 99 * 100 / 2, "{part:?}");
        }
    }

    #[test]
    fn map_reduce_empty_returns_identity() {
        let s = Scheduler::default();
        assert_eq!(s.map_reduce_range(0, 42usize, |_| 0, |a, b| a + b), 42);
    }

    #[test]
    fn sequential_fallback_is_ordered() {
        let s = Scheduler::new(Partitioner::Auto, 4);
        let seen = Mutex::new(Vec::new());
        s.for_each_range_seq(10, |r| seen.lock().unwrap().push(r));
        assert_eq!(*seen.lock().unwrap(), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn map_reduce_slice_mut_writes_and_reduces() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 3);
            let mut data = vec![0usize; 20];
            let sum = s.map_reduce_slice_mut(
                &mut data,
                0usize,
                |off, slice| {
                    let mut acc = 0;
                    for (i, x) in slice.iter_mut().enumerate() {
                        *x = off + i;
                        acc += *x;
                    }
                    acc
                },
                |a, b| a + b,
            );
            assert_eq!(sum, 19 * 20 / 2, "{part:?}");
            let expect: Vec<usize> = (0..20).collect();
            assert_eq!(data, expect, "{part:?}");
        }
    }

    #[test]
    fn map_reduce_slice_mut_empty() {
        let s = Scheduler::default();
        let mut data: Vec<u8> = vec![];
        let r = s.map_reduce_slice_mut(&mut data, 7u32, |_, _| 0, |a, b| a + b);
        assert_eq!(r, 7);
    }

    #[test]
    fn map_reduce_rows_mut_is_row_aligned() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 2);
            let width = 3;
            let mut data = vec![0usize; 7 * width];
            let total = s.map_reduce_rows_mut(
                &mut data,
                width,
                0usize,
                |row0, slice| {
                    assert_eq!(slice.len() % width, 0);
                    let mut acc = 0;
                    for (i, x) in slice.iter_mut().enumerate() {
                        let row = row0 + i / width;
                        *x = row;
                        acc += row;
                    }
                    acc
                },
                |a, b| a + b,
            );
            assert_eq!(total, (0..7).map(|r| r * width).sum::<usize>(), "{part:?}");
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i / width);
            }
        }
    }

    /// Prefix sum of `weights` with a leading 0.
    fn prefix_of(weights: &[usize]) -> Vec<usize> {
        let mut p = Vec::with_capacity(weights.len() + 1);
        p.push(0);
        let mut acc = 0;
        for &w in weights {
            acc += w;
            p.push(acc);
        }
        p
    }

    #[test]
    fn weighted_chunks_tile_and_match_unweighted_count() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            for g in [1usize, 3, 8] {
                let s = Scheduler::new(part, g);
                // Heavy head: vertex-balanced chunks would overload task 0.
                let weights: Vec<usize> = (0..30).map(|i| if i < 3 { 100 } else { 1 }).collect();
                let prefix = prefix_of(&weights);
                let chunks = s.chunks_weighted(&prefix);
                assert_eq!(chunks.len(), s.chunks(30).len(), "{part:?} g={g}");
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next);
                    assert!(c.end > c.start);
                    next = c.end;
                }
                assert_eq!(next, 30);
            }
        }
    }

    #[test]
    fn weighted_chunks_balance_edges_not_rows() {
        // 4 hub rows with weight 50, then 46 rows of weight 1. With grain 5
        // the unweighted plan holds all four hubs (200 of 246 total) in its
        // first chunk; the weighted plan must spread them out.
        let s = Scheduler::new(Partitioner::Simple, 5);
        let weights: Vec<usize> = (0..50).map(|i| if i < 4 { 50 } else { 1 }).collect();
        let prefix = prefix_of(&weights);
        let chunks = s.chunks_weighted(&prefix);
        let total: usize = weights.iter().sum();
        let ideal = total / chunks.len();
        let max_load = chunks
            .iter()
            .map(|c| prefix[c.end] - prefix[c.start])
            .max()
            .unwrap();
        // Each chunk's load stays within one max item weight of ideal.
        assert!(
            max_load <= ideal + 50,
            "max {max_load} vs ideal {ideal} over {} chunks",
            chunks.len()
        );
        // And the hub rows did not all land in one chunk.
        let hubs_in_first = chunks[0].clone().filter(|&r| r < 4).count();
        assert!(hubs_in_first < 4, "hubs must be split across chunks");
    }

    #[test]
    fn weighted_chunks_degenerate_cases() {
        let s = Scheduler::new(Partitioner::Simple, 4);
        assert!(s.chunks_weighted(&[0]).is_empty(), "no items");
        assert!(s.chunks_weighted(&[]).is_empty(), "empty prefix");
        // All-zero weights fall back to unweighted chunking.
        assert_eq!(s.chunks_weighted(&[0, 0, 0, 0, 0, 0]), s.chunks(5));
        // One chunk: everything in it.
        assert_eq!(s.chunks_weighted(&[0, 1, 2, 3]), vec![0..3]);
    }

    #[test]
    fn map_reduce_rows_chunked_matches_unchunked() {
        for part in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            let s = Scheduler::new(part, 2);
            let width = 3;
            let rows = 9;
            let weights: Vec<usize> = (0..rows).map(|i| 1 + (i % 4) * 10).collect();
            let prefix = prefix_of(&weights);
            let chunks = s.chunks_weighted(&prefix);
            let mut data = vec![0usize; rows * width];
            let total = s.map_reduce_rows_chunked_mut(
                &mut data,
                width,
                &chunks,
                0usize,
                |row0, slice| {
                    let mut acc = 0;
                    for (i, x) in slice.iter_mut().enumerate() {
                        let row = row0 + i / width;
                        *x = row;
                        acc += row;
                    }
                    acc
                },
                |a, b| a + b,
            );
            assert_eq!(
                total,
                (0..rows).map(|r| r * width).sum::<usize>(),
                "{part:?}"
            );
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i / width);
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunks must tile rows")]
    fn map_reduce_rows_chunked_rejects_gaps() {
        let s = Scheduler::default();
        let mut data = vec![0u8; 12];
        s.map_reduce_rows_chunked_mut(&mut data, 3, &[0..1, 2..4], (), |_, _| (), |_, _| ());
    }

    #[test]
    fn with_balance_builder() {
        let s = Scheduler::new(Partitioner::Auto, 4).with_balance(Balance::Edge);
        assert_eq!(s.balance, Balance::Edge);
        assert_eq!(Scheduler::default().balance, Balance::Vertex);
    }

    #[test]
    #[should_panic(expected = "non-rectangular")]
    fn map_reduce_rows_mut_rejects_ragged() {
        let s = Scheduler::default();
        let mut data = vec![0u8; 7];
        s.map_reduce_rows_mut(&mut data, 3, (), |_, _| (), |_, _| ());
    }

    #[test]
    fn overlap_runs_both_and_joins() {
        let mut touched = 0u32;
        let data = [1u64, 2, 3];
        let (bg, fg, stall) = overlap(
            || data.iter().sum::<u64>(),
            || {
                touched += 1;
                touched
            },
        );
        assert_eq!(bg, 6);
        assert_eq!(fg, 1);
        assert!(stall.as_nanos() < u128::MAX);
    }

    #[test]
    fn overlap_propagates_background_panic() {
        let r = std::panic::catch_unwind(|| {
            overlap(|| panic!("boom"), || 7u8);
        });
        assert!(r.is_err());
    }

    #[test]
    fn custom_thread_pool_runs_work() {
        let pool = thread_pool(2).unwrap();
        let s = Scheduler::new(Partitioner::Auto, 1);
        let sum = pool.install(|| s.map_reduce_range(10, 0usize, |r| r.sum(), |a, b| a + b));
        assert_eq!(sum, 45);
    }
}
