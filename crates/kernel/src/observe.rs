//! Read-only observation hooks for the PageRank kernels.
//!
//! The kernel crate stays dependency-free: it defines the
//! [`KernelObserver`] trait and the [`Obs`]/[`BatchObs`] carriers, and the
//! driver layer (tempopr-core's observe module, invoked from the kernel
//! closures its execution layer drives) supplies an implementation that
//! forwards to its telemetry sink. Every existing kernel entry point has an `_obs`
//! twin taking a carrier; the original names delegate with [`Obs::off`],
//! so observation is strictly opt-in.
//!
//! # Contract
//!
//! Observers are **read-only**: a kernel hands them values it already
//! computed (residuals, masses, guard decisions) and never reads anything
//! back. Enabling observation must not change a single bit of the
//! computed ranks — `tests/telemetry_observation.rs` locks this in, the
//! same way `guards_do_not_change_healthy_ranks` does for the numeric
//! guards. A disabled carrier costs one branch on a `None` reference per
//! observation site (enforced by the `telemetry_overhead` micro bench).

use std::time::Instant;

/// Callbacks a kernel invocation reports into. All methods have empty
/// defaults so implementors only override what they consume; `Sync`
/// because the SpMV body runs under the scheduler's thread pool.
pub trait KernelObserver: Sync {
    /// The per-window degree/activity/init setup finished.
    fn on_setup(&self, window: u32, active_vertices: usize, ns: u64) {
        let _ = (window, active_vertices, ns);
    }

    /// One power/push iteration finished: `residual` is the L1 step
    /// difference, `mass` the iterate's total rank mass, `spmv_ns` the
    /// wall time of the propagation pass and `check_ns` of the
    /// guard/scatter/convergence tail (both 0 for batched lanes, which
    /// report round-level time via [`KernelObserver::on_batch_round`]).
    fn on_iteration(
        &self,
        window: u32,
        iteration: u32,
        residual: f64,
        mass: f64,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        let _ = (window, iteration, residual, mass, spmv_ns, check_ns);
    }

    /// A numeric guard intervened: `restart` distinguishes a uniform
    /// restart from an in-place renormalization.
    fn on_guard(&self, window: u32, iteration: u32, restart: bool) {
        let _ = (window, iteration, restart);
    }

    /// One SpMM round finished: how many lanes were still live, how many
    /// run entries the propagation pass walked (`edges`), and the round's
    /// propagation/check wall time (shared by all lanes).
    fn on_batch_round(
        &self,
        iteration: u32,
        lanes_live: u32,
        lanes_total: u32,
        edges: u64,
        spmv_ns: u64,
        check_ns: u64,
    ) {
        let _ = (iteration, lanes_live, lanes_total, edges, spmv_ns, check_ns);
    }

    /// The batched kernel resolved its inner-loop implementation for a
    /// batch of `lanes` windows (`isa` is `"avx2"`, `"scalar"`, or
    /// `"bitwalk"` — see `tempopr_kernel::simd`).
    fn on_batch_dispatch(&self, isa: &'static str, lanes: u32) {
        let _ = (isa, lanes);
    }

    /// Converged-lane compaction repacked the batch from `from_lanes` to
    /// `to_lanes` effective lanes.
    fn on_batch_compaction(&self, from_lanes: u32, to_lanes: u32) {
        let _ = (from_lanes, to_lanes);
    }
}

/// Nanoseconds of `d`, saturating.
fn dur_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Observation carrier for the single-window kernels: an optional sink
/// plus the global window id the invocation computes. `Copy` so threading
/// it through call chains costs nothing.
#[derive(Clone, Copy, Default)]
pub struct Obs<'a> {
    sink: Option<&'a dyn KernelObserver>,
    window: u32,
}

impl<'a> Obs<'a> {
    /// The disabled carrier: every hook is a branch-and-return.
    pub fn off() -> Obs<'static> {
        Obs {
            sink: None,
            window: 0,
        }
    }

    /// A carrier forwarding to `sink`, labeling events with `window`.
    pub fn new(sink: &'a dyn KernelObserver, window: u32) -> Obs<'a> {
        Obs {
            sink: Some(sink),
            window,
        }
    }

    /// True when a sink is attached.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// A timestamp, taken only when observing (timing must cost nothing
    /// when disabled).
    pub fn now(&self) -> Option<Instant> {
        self.sink.map(|_| Instant::now())
    }

    /// Reports the setup phase: active-set size plus time since `t0`.
    pub fn setup(&self, active_vertices: usize, t0: Option<Instant>) {
        if let Some(sink) = self.sink {
            let ns = t0.map(|t| dur_ns(t.elapsed())).unwrap_or(0);
            sink.on_setup(self.window, active_vertices, ns);
        }
    }

    /// Reports one iteration; `t0`/`t_mid` bracket the propagation pass.
    pub fn iteration(
        &self,
        iteration: usize,
        residual: f64,
        mass: f64,
        t0: Option<Instant>,
        t_mid: Option<Instant>,
    ) {
        if let Some(sink) = self.sink {
            let (spmv_ns, check_ns) = match (t0, t_mid) {
                (Some(a), Some(b)) => (dur_ns(b.duration_since(a)), dur_ns(b.elapsed())),
                _ => (0, 0),
            };
            sink.on_iteration(
                self.window,
                iteration as u32,
                residual,
                mass,
                spmv_ns,
                check_ns,
            );
        }
    }

    /// Reports a guard intervention.
    pub fn guard(&self, iteration: usize, restart: bool) {
        if let Some(sink) = self.sink {
            sink.on_guard(self.window, iteration as u32, restart);
        }
    }
}

/// Observation carrier for the batched (SpMM) kernels: an optional sink
/// plus the lane → global-window-id map. With an empty map, lane `k`
/// reports as window `k`.
#[derive(Clone, Copy, Default)]
pub struct BatchObs<'a> {
    sink: Option<&'a dyn KernelObserver>,
    windows: &'a [u32],
}

impl<'a> BatchObs<'a> {
    /// The disabled carrier.
    pub fn off() -> BatchObs<'static> {
        BatchObs {
            sink: None,
            windows: &[],
        }
    }

    /// A carrier forwarding to `sink`; `windows[k]` is lane `k`'s global
    /// window id.
    pub fn new(sink: &'a dyn KernelObserver, windows: &'a [u32]) -> BatchObs<'a> {
        BatchObs {
            sink: Some(sink),
            windows,
        }
    }

    /// True when a sink is attached.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Lane `k`'s global window id (`k` itself without a map).
    pub(crate) fn lane_window(&self, k: usize) -> u32 {
        self.windows.get(k).copied().unwrap_or(k as u32)
    }

    /// See [`Obs::now`].
    pub(crate) fn now(&self) -> Option<Instant> {
        self.sink.map(|_| Instant::now())
    }

    /// Reports the batch setup: per-lane active counts, with the shared
    /// setup wall time split evenly across lanes so phase totals add up.
    pub(crate) fn setup(&self, n_act: &[usize], t0: Option<Instant>) {
        if let Some(sink) = self.sink {
            let ns = t0.map(|t| dur_ns(t.elapsed())).unwrap_or(0);
            let share = ns / n_act.len().max(1) as u64;
            for (k, &a) in n_act.iter().enumerate() {
                sink.on_setup(self.lane_window(k), a, share);
            }
        }
    }

    /// Reports one round's timing, live-lane count, and edge work.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn round(
        &self,
        iteration: usize,
        lanes_live: u32,
        lanes_total: usize,
        edges: u64,
        t0: Option<Instant>,
        t_mid: Option<Instant>,
    ) {
        if let Some(sink) = self.sink {
            let (spmv_ns, check_ns) = match (t0, t_mid) {
                (Some(a), Some(b)) => (dur_ns(b.duration_since(a)), dur_ns(b.elapsed())),
                _ => (0, 0),
            };
            sink.on_batch_round(
                iteration as u32,
                lanes_live,
                lanes_total as u32,
                edges,
                spmv_ns,
                check_ns,
            );
        }
    }

    /// Reports the batch's resolved inner-loop implementation.
    pub(crate) fn dispatch(&self, isa: &'static str, lanes: usize) {
        if let Some(sink) = self.sink {
            sink.on_batch_dispatch(isa, lanes as u32);
        }
    }

    /// Reports a converged-lane compaction.
    pub(crate) fn compaction(&self, from_lanes: usize, to_lanes: usize) {
        if let Some(sink) = self.sink {
            sink.on_batch_compaction(from_lanes as u32, to_lanes as u32);
        }
    }

    /// Reports one live lane's iteration measurements (round-level time is
    /// carried by [`BatchObs::round`], so per-lane ns are 0).
    pub(crate) fn lane_iteration(&self, k: usize, iteration: usize, residual: f64, mass: f64) {
        if let Some(sink) = self.sink {
            sink.on_iteration(self.lane_window(k), iteration as u32, residual, mass, 0, 0);
        }
    }

    /// Reports a guard intervention on lane `k`.
    pub(crate) fn lane_guard(&self, k: usize, iteration: usize, restart: bool) {
        if let Some(sink) = self.sink {
            sink.on_guard(self.lane_window(k), iteration as u32, restart);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }

    impl KernelObserver for Recorder {
        fn on_setup(&self, window: u32, active: usize, _ns: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("setup w{window} a{active}"));
        }
        fn on_iteration(&self, window: u32, it: u32, r: f64, _m: f64, _s: u64, _c: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("iter w{window} i{it} r{r}"));
        }
        fn on_guard(&self, window: u32, it: u32, restart: bool) {
            self.events
                .lock()
                .unwrap()
                .push(format!("guard w{window} i{it} restart={restart}"));
        }
        fn on_batch_round(&self, it: u32, live: u32, total: u32, edges: u64, _s: u64, _c: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("round i{it} live{live}/{total} e{edges}"));
        }
        fn on_batch_dispatch(&self, isa: &'static str, lanes: u32) {
            self.events
                .lock()
                .unwrap()
                .push(format!("dispatch {isa} l{lanes}"));
        }
        fn on_batch_compaction(&self, from: u32, to: u32) {
            self.events
                .lock()
                .unwrap()
                .push(format!("compact {from}->{to}"));
        }
    }

    #[test]
    fn off_carriers_do_nothing() {
        let obs = Obs::off();
        assert!(!obs.is_on());
        assert!(obs.now().is_none());
        obs.setup(5, None);
        obs.iteration(1, 0.5, 1.0, None, None);
        obs.guard(1, true);
        let b = BatchObs::off();
        assert!(!b.is_on());
        b.setup(&[1, 2], None);
        b.round(1, 2, 2, 10, None, None);
        b.dispatch("scalar", 2);
        b.compaction(2, 1);
        b.lane_iteration(0, 1, 0.5, 1.0);
        b.lane_guard(1, 1, false);
    }

    #[test]
    fn obs_forwards_with_window_label() {
        let rec = Recorder::default();
        let obs = Obs::new(&rec, 7);
        assert!(obs.is_on());
        obs.setup(3, obs.now());
        obs.iteration(2, 0.25, 1.0, None, None);
        obs.guard(2, true);
        let got = rec.events.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                "setup w7 a3",
                "iter w7 i2 r0.25",
                "guard w7 i2 restart=true"
            ]
        );
    }

    #[test]
    fn batch_obs_maps_lanes_to_windows() {
        let rec = Recorder::default();
        let map = [10u32, 20u32];
        let b = BatchObs::new(&rec, &map);
        b.lane_iteration(1, 3, 0.5, 1.0);
        b.lane_guard(0, 3, false);
        b.setup(&[4, 6], None);
        let got = rec.events.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                "iter w20 i3 r0.5",
                "guard w10 i3 restart=false",
                "setup w10 a4",
                "setup w20 a6",
            ]
        );
        // Out-of-range lane falls back to the lane index.
        assert_eq!(b.lane_window(5), 5);
    }

    #[test]
    fn batch_obs_forwards_dispatch_round_and_compaction() {
        let rec = Recorder::default();
        let b = BatchObs::new(&rec, &[]);
        b.dispatch("avx2", 8);
        b.round(2, 5, 8, 1234, None, None);
        b.compaction(8, 3);
        let got = rec.events.lock().unwrap().clone();
        assert_eq!(
            got,
            vec!["dispatch avx2 l8", "round i2 live5/8 e1234", "compact 8->3"]
        );
    }
}
