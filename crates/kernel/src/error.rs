//! Structured kernel failures.
//!
//! Every kernel entry point returns `Result<_, KernelError>` instead of
//! panicking: setup mismatches (caller bugs) and numeric faults (data or
//! hardware pathologies caught by the health guards) are both reported as
//! values so a driver can isolate the failing window and keep going.

use std::fmt;

/// A numeric-health violation detected by the per-iteration guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericFault {
    /// A NaN or ±Inf appeared in the iterate (lane index for batched
    /// kernels, 0 otherwise).
    NonFinite {
        /// Lane in which the non-finite value appeared.
        lane: usize,
    },
    /// The rank mass left `1 ± epsilon` (power iteration preserves mass
    /// exactly in exact arithmetic, so drift indicates corrupted degrees,
    /// broken reductions, or bit flips).
    MassDrift {
        /// Lane whose mass drifted.
        lane: usize,
        /// The observed rank mass.
        mass: f64,
        /// The configured tolerance it violated.
        epsilon: f64,
    },
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFault::NonFinite { lane } => {
                write!(f, "non-finite rank value (lane {lane})")
            }
            NumericFault::MassDrift {
                lane,
                mass,
                epsilon,
            } => write!(
                f,
                "rank mass {mass} drifted more than {epsilon} from 1 (lane {lane})"
            ),
        }
    }
}

/// Errors from the PageRank kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// `pull` and `push` structures cover different vertex universes.
    MismatchedUniverses {
        /// Vertices in the pull structure.
        pull: usize,
        /// Vertices in the push structure.
        push: usize,
    },
    /// The batched kernel was given zero or more than `MAX_LANES` lanes.
    BadLaneCount {
        /// The offending lane count.
        got: usize,
    },
    /// A per-lane argument list does not match the lane count.
    LaneMismatch {
        /// Number of lanes (window ranges / views).
        lanes: usize,
        /// Number of per-lane arguments supplied.
        args: usize,
    },
    /// A caller-provided vector has the wrong length for the vertex
    /// universe.
    BadVectorLength {
        /// What the vector was for.
        what: &'static str,
        /// Expected length (vertex count).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A numeric fault survived the configured recovery policy (or the
    /// policy was [`crate::NumericPolicy::Fail`]).
    Numeric {
        /// Iteration at which the unrecoverable fault was detected.
        iteration: usize,
        /// The fault itself.
        fault: NumericFault,
    },
    /// The dense solver was asked for a window whose active set exceeds
    /// its guard (the solve is `O(n³)`).
    ActiveSetTooLarge {
        /// Active vertices in the window.
        active: usize,
        /// The configured cap.
        max_active: usize,
    },
    /// The dense PageRank system was numerically singular.
    SingularSystem,
    /// A worker thread pool could not be constructed.
    ThreadPool(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::MismatchedUniverses { pull, push } => write!(
                f,
                "pull/push vertex universes differ ({pull} vs {push} vertices)"
            ),
            KernelError::BadLaneCount { got } => {
                write!(f, "1..=64 lanes required, got {got}")
            }
            KernelError::LaneMismatch { lanes, args } => {
                write!(
                    f,
                    "one argument per lane required ({lanes} lanes, {args} given)"
                )
            }
            KernelError::BadVectorLength {
                what,
                expected,
                got,
            } => write!(f, "{what} has wrong length: expected {expected}, got {got}"),
            KernelError::Numeric { iteration, fault } => {
                write!(f, "numeric fault at iteration {iteration}: {fault}")
            }
            KernelError::ActiveSetTooLarge { active, max_active } => write!(
                f,
                "active set {active} exceeds max_active {max_active} (dense solve is O(n^3))"
            ),
            KernelError::SingularSystem => write!(f, "singular PageRank system"),
            KernelError::ThreadPool(m) => write!(f, "failed to build thread pool: {m}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A deterministic fault to inject into one kernel invocation — the
/// instrument the fault-injection test suite uses to drive every recovery
/// path. `None` in [`crate::PrConfig::fault`] (the default) is zero-cost:
/// the hooks are a branch on a register-resident `Option`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one active vertex's rank with NaN at the start of the
    /// given (1-based) iteration.
    InjectNan {
        /// Iteration at which the NaN appears.
        at_iter: usize,
    },
    /// Suppress the convergence test so the kernel runs to `max_iters` and
    /// reports `converged: false`.
    ForceNonConvergence,
    /// Multiply one active vertex's `1/outdeg` by 1000 after setup —
    /// modeling a corrupted reciprocal that makes rank mass grow.
    CorruptReciprocal,
    /// Panic at the first iteration (exercises driver panic isolation).
    PanicInKernel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = KernelError::MismatchedUniverses { pull: 3, push: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = KernelError::Numeric {
            iteration: 7,
            fault: NumericFault::MassDrift {
                lane: 2,
                mass: 1.5,
                epsilon: 1e-6,
            },
        };
        let s = e.to_string();
        assert!(s.contains("iteration 7") && s.contains("lane 2"), "{s}");
        let e = KernelError::BadVectorLength {
            what: "preference",
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("preference"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&KernelError::SingularSystem);
    }
}
