//! Cross-window warm-start: seeding window w+1 from window w's converged
//! ranks across part and batch boundaries. Covers the execution matrix
//! (init mode x partitioner x pipeline x lane count), iteration savings as
//! overlap grows, the degenerate disjoint-window fallback, the batched
//! SpMM first-region seeding, and poisoned-seed protection after a fault.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 400,
        ..PrConfig::default()
    }
}

/// A stationary hub-heavy workload: the event pattern repeats every 40
/// ticks, so every window of the same width sees the same graph and the
/// converged ranks of consecutive overlapping windows are nearly equal —
/// the regime where a carried seed is most valuable.
fn stationary_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..4000u32 {
        let (u, v) = if i % 2 == 0 {
            (0, 1 + i % 40)
        } else {
            (1 + (i * 7) % 40, 1 + (i * 13) % 40)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 41).unwrap()
}

/// `stationary_log` windowed at a given overlap ratio: `sw = delta * (1 -
/// overlap)`.
fn spec_at_overlap(log: &EventLog, overlap: f64) -> WindowSpec {
    let delta = 400i64;
    let sw = ((delta as f64) * (1.0 - overlap)).round().max(1.0) as i64;
    WindowSpec::covering(log, delta, sw).unwrap()
}

fn run_with(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> RunOutput {
    PostmortemEngine::new(log, spec, cfg).unwrap().run()
}

fn fingerprints(out: &RunOutput) -> Vec<f64> {
    out.windows.iter().map(|w| w.fingerprint).collect()
}

fn median_iterations(out: &RunOutput) -> usize {
    let mut iters: Vec<usize> = out.windows.iter().map(|w| w.stats.iterations).collect();
    iters.sort_unstable();
    iters[iters.len() / 2]
}

// --- Matrix: warm results match full init everywhere ---------------------

#[test]
fn warm_matches_full_across_partitioner_pipeline_and_lanes() {
    let log = stationary_log();
    let spec = spec_at_overlap(&log, 0.5);
    let baseline = run_with(
        &log,
        spec,
        PostmortemConfig {
            mode: ParallelMode::Sequential,
            kernel: KernelKind::SpMV,
            init_mode: InitMode::Full,
            pr: tight_pr(),
            num_multiwindows: 2,
            ..Default::default()
        },
    );
    let base_fp = fingerprints(&baseline);
    for init_mode in [InitMode::Full, InitMode::Partial, InitMode::Warm] {
        for partitioner in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
            for pipeline in [false, true] {
                for kernel in [
                    KernelKind::SpMV,
                    KernelKind::SpMM { lanes: 4 },
                    KernelKind::SpMM { lanes: 16 },
                ] {
                    let out = run_with(
                        &log,
                        spec,
                        PostmortemConfig {
                            mode: ParallelMode::ApplicationLevel,
                            kernel,
                            init_mode,
                            scheduler: Scheduler::new(partitioner, 2),
                            pipeline,
                            pr: tight_pr(),
                            num_multiwindows: 2,
                            ..Default::default()
                        },
                    );
                    assert!(!out.degraded);
                    for (w, (a, b)) in base_fp.iter().zip(fingerprints(&out)).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-8,
                            "window {w} differs under \
                             {init_mode:?}/{partitioner:?}/pipeline={pipeline}/{kernel:?}: \
                             {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

// --- Savings: iterations shrink as overlap grows --------------------------

#[test]
fn warm_iterations_non_increasing_with_overlap() {
    let log = stationary_log();
    let mut mean_per_window = Vec::new();
    for overlap in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let spec = spec_at_overlap(&log, overlap);
        let out = run_with(
            &log,
            spec,
            PostmortemConfig {
                mode: ParallelMode::Sequential,
                kernel: KernelKind::SpMV,
                init_mode: InitMode::Warm,
                num_multiwindows: 2,
                ..Default::default()
            },
        );
        assert!(!out.degraded);
        mean_per_window.push(out.total_iterations() as f64 / out.windows.len() as f64);
    }
    for pair in mean_per_window.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "mean iterations grew with overlap: {mean_per_window:?}"
        );
    }
}

#[test]
fn warm_beats_partial_median_at_half_overlap() {
    // Two-window parts: under partial init every part's first window is a
    // cold start (half of all windows), while warm carries across the
    // boundaries, so the medians must separate.
    let log = stationary_log();
    let spec = spec_at_overlap(&log, 0.5);
    let run = |init_mode| {
        run_with(
            &log,
            spec,
            PostmortemConfig {
                mode: ParallelMode::Sequential,
                kernel: KernelKind::SpMV,
                init_mode,
                num_multiwindows: spec.count / 2,
                ..Default::default()
            },
        )
    };
    let full = run(InitMode::Full);
    let partial = run(InitMode::Partial);
    let warm = run(InitMode::Warm);
    assert!(
        median_iterations(&warm) < median_iterations(&partial),
        "warm median {} !< partial median {}",
        median_iterations(&warm),
        median_iterations(&partial)
    );
    assert!(warm.total_iterations() < partial.total_iterations());
    assert!(partial.total_iterations() < full.total_iterations());
}

// --- Degenerate: disjoint windows fall back to full, bit-identically ------

/// Eight windows, each on its own block of four vertices: no window shares
/// an active vertex with its predecessor, in or across parts.
fn disjoint_era_log() -> (EventLog, WindowSpec) {
    let mut events = Vec::new();
    for w in 0..8u32 {
        let base = 4 * w;
        for i in 0..40u32 {
            let u = base + i % 4;
            let v = base + (i + 1 + i % 2) % 4;
            if u != v {
                events.push(Event::new(u, v, (w as i64) * 100 + (i as i64) % 100));
            }
        }
    }
    let log = EventLog::from_unsorted(events, 32).unwrap();
    let spec = WindowSpec::new(0, 100, 100, 8).unwrap();
    (log, spec)
}

#[test]
fn disjoint_windows_fall_back_to_full_init_bit_identically() {
    let (log, spec) = disjoint_era_log();
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        let run = |init_mode| {
            run_with(
                &log,
                spec,
                PostmortemConfig {
                    mode: ParallelMode::Sequential,
                    kernel,
                    init_mode,
                    num_multiwindows: 2,
                    pr: tight_pr(),
                    ..Default::default()
                },
            )
        };
        let full = run(InitMode::Full);
        let warm = run(InitMode::Warm);
        assert!(!warm.degraded);
        for (a, b) in full.windows.iter().zip(warm.windows.iter()) {
            assert!(
                a.fingerprint.to_bits() == b.fingerprint.to_bits(),
                "{kernel:?}: window {} fingerprint {} vs {} — degenerate \
                 carry must be a bit-exact full-init fallback",
                a.window,
                a.fingerprint,
                b.fingerprint
            );
            assert!(a.fingerprint.is_finite());
        }
        // Same iteration counts too: nothing was seeded.
        assert_eq!(
            full.total_iterations(),
            warm.total_iterations(),
            "{kernel:?}"
        );
    }
}

#[test]
fn disjoint_windows_produce_no_nan_under_warm() {
    let (log, spec) = disjoint_era_log();
    let out = run_with(
        &log,
        spec,
        PostmortemConfig {
            mode: ParallelMode::Sequential,
            init_mode: InitMode::Warm,
            num_multiwindows: 2,
            ..Default::default()
        },
    );
    assert!(!out.degraded);
    for w in &out.windows {
        assert!(w.status.is_valid());
        for &r in &w.ranks.as_ref().unwrap().values {
            assert!(r.is_finite() && r >= 0.0, "window {}: rank {r}", w.window);
        }
    }
}

// --- Batched SpMM: the first region of a new part seeds from the carry ----

#[test]
fn spmm_first_batch_of_next_part_seeds_from_carry() {
    let log = stationary_log();
    let spec = spec_at_overlap(&log, 0.5);
    let run = |init_mode| {
        run_with(
            &log,
            spec,
            PostmortemConfig {
                mode: ParallelMode::Sequential,
                kernel: KernelKind::SpMM { lanes: 8 },
                init_mode,
                num_multiwindows: 2,
                ..Default::default()
            },
        )
    };
    let full = run(InitMode::Full);
    let partial = run(InitMode::Partial);
    let warm = run(InitMode::Warm);
    assert!(warm.total_iterations() < partial.total_iterations());
    assert!(partial.total_iterations() < full.total_iterations());
    // The second part's first window opens batch 0 of a new lane layout:
    // without the carry it cold-starts (partial == full there), with the
    // carry it must converge faster.
    let boundary = spec.count / 2;
    let f = full.windows[boundary].stats.iterations;
    let p = partial.windows[boundary].stats.iterations;
    let w = warm.windows[boundary].stats.iterations;
    assert_eq!(p, f, "partial must cold-start the part boundary");
    assert!(w < f, "boundary window: warm {w} !< full {f}");
}

#[test]
fn spmm_iteration_counts_are_pinned() {
    // Regression pin for the batched-SpMM seeding paths: these totals are
    // deterministic (sequential in-order walk, fixed workload). A change
    // means the seeding behavior changed — re-derive, don't just re-bless.
    let log = stationary_log();
    let spec = spec_at_overlap(&log, 0.5);
    let totals: Vec<usize> = [InitMode::Full, InitMode::Partial, InitMode::Warm]
        .into_iter()
        .map(|init_mode| {
            run_with(
                &log,
                spec,
                PostmortemConfig {
                    mode: ParallelMode::Sequential,
                    kernel: KernelKind::SpMM { lanes: 8 },
                    init_mode,
                    num_multiwindows: 2,
                    ..Default::default()
                },
            )
            .total_iterations()
        })
        .collect();
    assert_eq!(
        totals,
        vec![1700, 860, 440],
        "full/partial/warm totals moved"
    );
}

// --- Faults: a poisoned seed is never reused ------------------------------

#[test]
fn failed_window_does_not_poison_the_next_seed() {
    let log = stationary_log();
    let spec = spec_at_overlap(&log, 0.5);
    let part = spec.count / 2;
    // Fault the last window of part 1 and the middle of part 2: both the
    // cross-part carry and the in-part seed must skip the failed ranks.
    for faulted in [part - 1, part + 1] {
        for kernel in [KernelKind::SpMV, KernelKind::SpMM { lanes: 8 }] {
            let clean = run_with(
                &log,
                spec,
                PostmortemConfig {
                    mode: ParallelMode::Sequential,
                    kernel,
                    init_mode: InitMode::Full,
                    num_multiwindows: 2,
                    pr: tight_pr(),
                    ..Default::default()
                },
            );
            let out = run_with(
                &log,
                spec,
                PostmortemConfig {
                    mode: ParallelMode::Sequential,
                    kernel,
                    init_mode: InitMode::Warm,
                    num_multiwindows: 2,
                    pr: tight_pr(),
                    faults: FaultPlan::single(faulted, FaultKind::PanicInKernel),
                    ..Default::default()
                },
            );
            assert!(out.degraded);
            assert_eq!(out.failed_windows(), vec![faulted], "{kernel:?}");
            for (c, w) in clean.windows.iter().zip(out.windows.iter()) {
                if w.window == faulted {
                    continue;
                }
                assert!(w.status.is_valid(), "{kernel:?}: window {}", w.window);
                assert!(
                    (c.fingerprint - w.fingerprint).abs() < 1e-7,
                    "{kernel:?}: window {} fingerprint {} vs clean {}",
                    w.window,
                    w.fingerprint,
                    c.fingerprint
                );
                for &r in &w.ranks.as_ref().unwrap().values {
                    assert!(r.is_finite(), "{kernel:?}: window {} rank {r}", w.window);
                }
            }
        }
    }
}
