//! Golden-trace regression tests: the deterministic projection of the run
//! trace must be byte-identical across repeated runs of a fixed seeded
//! workload, and must match the checked-in snapshot.
//!
//! The workload runs the postmortem engine sequentially (the fully
//! deterministic configuration: one thread, no in-kernel scheduler, fixed
//! reduction order) over a small synthetic log, with one window forced
//! through the recovery ladder so the snapshot locks in the per-attempt
//! residual history — a failed-then-recovered window must keep its
//! pre-retry trace (attempt 1) alongside the retry (attempts 2-3).
//!
//! Regenerate the snapshot after an intentional trace change with:
//! `BLESS=1 cargo test --test golden_trace`

use tempopr::core::{
    FaultPlan, KernelKind, ParallelMode, PostmortemConfig, PostmortemEngine, WindowStatus,
};
use tempopr::graph::{Event, EventLog, WindowSpec};
use tempopr::kernel::{FaultKind, PrConfig, SimdPolicy};
use tempopr::telemetry::Telemetry;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_small.json");

fn fixed_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..90u32 {
        // Irregular degrees (a hub plus scattered pairs) so uniform init
        // is not the fixed point and the residual series is non-trivial.
        let u = if i % 3 == 0 { 0 } else { (i * 7 + i / 4) % 12 };
        let v = (i * 5 + 3) % 12;
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 12).unwrap()
}

/// The fully deterministic engine configuration: sequential mode (no
/// thread pool, no in-kernel scheduler, fixed reduction order) with a
/// fault forcing window 2 through full-init retry into the dense oracle.
fn golden_cfg() -> PostmortemConfig {
    PostmortemConfig {
        num_multiwindows: 2,
        mode: ParallelMode::Sequential,
        kernel: KernelKind::SpMV,
        threads: 1,
        pr: PrConfig {
            max_iters: 60,
            ..PrConfig::default()
        },
        faults: FaultPlan::single(2, FaultKind::ForceNonConvergence),
        ..PostmortemConfig::default()
    }
}

fn run_trace_json() -> String {
    let tele = Telemetry::enabled();
    let engine =
        PostmortemEngine::with_telemetry(&fixed_log(), spec(), golden_cfg(), tele.clone()).unwrap();
    let out = engine.run();
    // The faulted window must have escalated, not failed: the snapshot is
    // only meaningful if the recovery ladder actually ran.
    assert!(
        matches!(out.windows[2].status, WindowStatus::Recovered { .. }),
        "window 2 should recover via the ladder, got {:?}",
        out.windows[2].status
    );
    assert_eq!(out.windows[2].attempts, 3, "dense-oracle rung");
    tele.trace().deterministic_json()
}

fn spec() -> WindowSpec {
    WindowSpec::covering(&fixed_log(), 30, 12).unwrap()
}

#[test]
fn deterministic_projection_is_reproducible() {
    let a = run_trace_json();
    let b = run_trace_json();
    assert_eq!(a, b, "two identical runs must project identical traces");
}

#[test]
fn trace_matches_golden_snapshot() {
    let got = run_trace_json();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        eprintln!("blessed {GOLDEN}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden snapshot {GOLDEN} ({e}); run with BLESS=1"));
    assert_eq!(
        got, want,
        "trace diverged from {GOLDEN}; if intentional, regenerate with BLESS=1"
    );
}

/// The deterministic projection of an SpMM run must not depend on which
/// inner-loop implementation the runtime dispatch picked, nor on whether
/// converged-lane compaction fired: the machine-dependent `kernel.isa`
/// telemetry lives in gauges/counters (excluded from the projection), and
/// the per-lane iteration events are bit-identical by construction. This
/// is the guarantee that lets CI compare traces across hosts with and
/// without AVX2 — no snapshot re-bless needed for the SIMD rollout.
#[test]
fn spmm_trace_is_stable_across_simd_policies_and_compaction() {
    let spmm_trace = |simd: SimdPolicy, compaction: bool| -> String {
        let cfg = PostmortemConfig {
            num_multiwindows: 2,
            mode: ParallelMode::Sequential,
            kernel: KernelKind::SpMM { lanes: 8 },
            threads: 1,
            pr: PrConfig {
                max_iters: 60,
                simd,
                compaction,
                ..PrConfig::default()
            },
            ..PostmortemConfig::default()
        };
        let tele = Telemetry::enabled();
        let engine =
            PostmortemEngine::with_telemetry(&fixed_log(), spec(), cfg, tele.clone()).unwrap();
        engine.run();
        tele.trace().deterministic_json()
    };
    let reference = spmm_trace(SimdPolicy::BitWalk, false);
    for simd in [SimdPolicy::BitWalk, SimdPolicy::Scalar, SimdPolicy::Auto] {
        for compaction in [false, true] {
            assert_eq!(
                spmm_trace(simd, compaction),
                reference,
                "{simd:?} compaction={compaction}: deterministic projection diverged"
            );
        }
    }
}

#[test]
fn failed_then_recovered_window_keeps_both_attempts() {
    let json = run_trace_json();
    // Attempt 1 ran to the iteration cap and its history is retained...
    assert!(
        json.contains("\"window\": 2, \"attempt\": 1, \"iteration\": 60, \"kind\": \"iteration\""),
        "pre-retry residual history must survive recovery"
    );
    // ...the ladder's escalations are on later attempts...
    assert!(
        json.contains("\"attempt\": 2, \"iteration\": 0, \"kind\": \"recovery_full_init_retry\"")
    );
    assert!(json.contains("\"attempt\": 3, \"iteration\": 0, \"kind\": \"recovery_dense_oracle\""));
    // ...and the terminal marker carries the final rung.
    assert!(json.contains(
        "\"window\": 2, \"attempt\": 3, \"iteration\": 0, \"kind\": \"window_recovered\""
    ));
}
