//! Property-based tests of the dataset generators and event-file I/O: for
//! arbitrary scales and seeds every preset yields a valid, deterministic
//! log that round-trips through both file formats.

use proptest::prelude::*;
use tempopr::datagen::Dataset;
use tempopr::graph::io;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::sample::select(Dataset::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn presets_generate_valid_logs(d in arb_dataset(), seed in 0u64..1000) {
        let spec = d.spec();
        let log = spec.generate(0.0002, seed);
        prop_assert!(log.len() >= 1000);
        prop_assert!(log.num_vertices() >= 200);
        // Sorted, in-span, in-range.
        let mut prev = i64::MIN;
        for e in log.events() {
            prop_assert!(e.t >= prev);
            prev = e.t;
            prop_assert!(e.t >= 0 && e.t <= spec.span_seconds());
            prop_assert!((e.u as usize) < log.num_vertices());
            prop_assert!((e.v as usize) < log.num_vertices());
            prop_assert_ne!(e.u, e.v, "generators never emit self-loops");
        }
    }

    #[test]
    fn generation_is_deterministic(d in arb_dataset(), seed in 0u64..1000) {
        let spec = d.spec();
        prop_assert_eq!(spec.generate(0.0001, seed), spec.generate(0.0001, seed));
    }

    #[test]
    fn binary_roundtrip_preserves_generated_logs(d in arb_dataset(), seed in 0u64..100) {
        let log = d.spec().generate(0.0001, seed);
        let mut buf = Vec::new();
        io::write_binary(&log, &mut buf).unwrap();
        let back = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, log);
    }

    #[test]
    fn text_roundtrip_preserves_events(d in arb_dataset(), seed in 0u64..100) {
        let log = d.spec().generate(0.0001, seed);
        let mut buf = Vec::new();
        io::write_text(&log, &mut buf).unwrap();
        let back = io::read_text(&buf[..]).unwrap();
        // Text format infers the vertex count, so only compare events.
        prop_assert_eq!(back.events(), log.events());
        prop_assert!(back.num_vertices() <= log.num_vertices());
    }

    #[test]
    fn scaled_sizes_are_monotone(d in arb_dataset()) {
        let spec = d.spec();
        let mut prev_e = 0;
        let mut prev_v = 0;
        for scale in [0.0001, 0.001, 0.01, 0.1, 1.0] {
            let e = spec.scaled_events(scale);
            let v = spec.scaled_vertices(scale);
            prop_assert!(e >= prev_e);
            prop_assert!(v >= prev_v);
            prev_e = e;
            prev_v = v;
        }
        prop_assert_eq!(spec.scaled_events(1.0), spec.full_events);
    }
}
