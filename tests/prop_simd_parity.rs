//! Property-based parity tests for the vectorized SpMM hot path: the
//! dense dispatch (auto-detected AVX2 or forced scalar) and converged-lane
//! compaction must produce **byte-identical** rank fingerprints to the
//! pre-vectorization mask-walk kernel, across arbitrary event logs, vector
//! lengths, partitioners, grain sizes, and pipeline modes.
//!
//! Edge-balanced chunking is checked separately and only for numerical
//! closeness: like a grain-size change, moving chunk boundaries moves the
//! floating-point reduction grouping, so it is deterministic but not
//! bit-identical to vertex-balanced runs.

use proptest::prelude::*;
use tempopr::graph::{Event, EventLog, WindowSpec};
use tempopr::prelude::*;

const MAX_V: u32 = 24;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..500).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..200,
    )
}

/// Every window's rank fingerprint as raw bits — equality means the ranks
/// agree to the last ulp on every window.
fn fingerprint_bits(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> Vec<u64> {
    PostmortemEngine::new(log, spec, cfg)
        .unwrap()
        .run()
        .windows
        .iter()
        .map(|w| w.fingerprint.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_and_compaction_are_bit_identical_to_mask_walk(
        events in arb_events(),
        delta in 5i64..200,
        sw in 1i64..100,
        lanes in prop::sample::select(vec![2usize, 4, 8, 16]),
        partitioner in prop::sample::select(vec![
            Partitioner::Auto,
            Partitioner::Simple,
            Partitioner::Static,
        ]),
        granularity in 1usize..8,
        pipeline in any::<bool>(),
        symmetric in any::<bool>(),
    ) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        // Reference: the pre-vectorization kernel (mask walk, no
        // compaction) at the same scheduler configuration.
        let base = PostmortemConfig {
            kernel: KernelKind::SpMM { lanes },
            mode: ParallelMode::Nested,
            scheduler: Scheduler::new(partitioner, granularity),
            pipeline,
            symmetric,
            pr: PrConfig {
                simd: SimdPolicy::BitWalk,
                compaction: false,
                ..PrConfig::default()
            },
            ..PostmortemConfig::default()
        };
        let reference = fingerprint_bits(&log, spec, base.clone());
        for simd in [SimdPolicy::Scalar, SimdPolicy::Auto] {
            for compaction in [false, true] {
                let cfg = PostmortemConfig {
                    pr: PrConfig {
                        simd,
                        compaction,
                        ..PrConfig::default()
                    },
                    ..base.clone()
                };
                let got = fingerprint_bits(&log, spec, cfg);
                prop_assert_eq!(
                    &got, &reference,
                    "{:?} compaction={} lanes={} {:?} g={} pipeline={}",
                    simd, compaction, lanes, partitioner, granularity, pipeline
                );
            }
        }
    }

    #[test]
    fn edge_balanced_scheduling_matches_vertex_balanced_closely(
        events in arb_events(),
        delta in 5i64..200,
        sw in 1i64..100,
        lanes in prop::sample::select(vec![4usize, 8, 16]),
        granularity in 1usize..8,
    ) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        let cfg = |balance: Balance| PostmortemConfig {
            kernel: KernelKind::SpMM { lanes },
            mode: ParallelMode::Nested,
            scheduler: Scheduler::new(Partitioner::Simple, granularity).with_balance(balance),
            ..PostmortemConfig::default()
        };
        let run = |c: PostmortemConfig| -> Vec<f64> {
            PostmortemEngine::new(&log, spec, c)
                .unwrap()
                .run()
                .windows
                .iter()
                .map(|w| w.fingerprint)
                .collect()
        };
        let vertex = run(cfg(Balance::Vertex));
        let edge = run(cfg(Balance::Edge));
        prop_assert_eq!(vertex.len(), edge.len());
        for (w, (a, b)) in vertex.iter().zip(edge.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-7, "window {}: {} vs {}", w, a, b);
        }
    }
}
