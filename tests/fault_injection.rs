//! Deterministic fault injection through the whole engine stack: every
//! planned fault must be detected, recovered (or contained), and reported —
//! and every window the fault did *not* touch must still produce valid
//! ranks.
//!
//! The graph is deliberately degree-skewed: on a degree-regular symmetric
//! graph the uniform start is already the fixed point, the kernel converges
//! at iteration 1, and an injection targeting iteration k never fires.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 500,
        ..PrConfig::default()
    }
}

/// Hub-skewed temporal graph (vertex 0 touches everything): far-from-uniform
/// stationary distribution, so every window iterates several times.
fn skewed_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..600u32 {
        let (u, v) = if i % 3 != 0 {
            (0, 1 + i % 29)
        } else {
            (1 + (i * 7) % 29, 1 + (i * 13) % 29)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 30).unwrap()
}

fn spec_for(log: &EventLog) -> WindowSpec {
    WindowSpec::covering(log, 200, 50).unwrap()
}

fn base_cfg(kernel: KernelKind, mode: ParallelMode) -> PostmortemConfig {
    PostmortemConfig {
        kernel,
        mode,
        pr: tight_pr(),
        num_multiwindows: 2,
        ..Default::default()
    }
}

fn run(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> RunOutput {
    PostmortemEngine::new(log, spec, cfg).unwrap().run()
}

/// Asserts every window except `faulted` carries valid ranks within `tol`
/// of the fault-free run (windows recovered from a fault may legitimately
/// differ by the convergence tolerance; the rest must agree too because
/// they converged to the same fixed points).
fn assert_clean_windows_match(clean: &RunOutput, faulty: &RunOutput, faulted: usize, tol: f64) {
    assert_eq!(clean.windows.len(), faulty.windows.len());
    for (c, f) in clean.windows.iter().zip(faulty.windows.iter()) {
        if c.window == faulted {
            continue;
        }
        assert!(
            f.status.is_valid(),
            "window {} poisoned by fault in window {faulted}: {:?}",
            c.window,
            f.status
        );
        let d = c
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(f.ranks.as_ref().unwrap());
        assert!(d < tol, "window {}: linf {d} vs fault-free run", c.window);
    }
}

// --- Path 1: injected NaN -> guard detects -> uniform restart ------------

#[test]
fn nan_injection_recovers_via_guard_restart() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let clean = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMV, ParallelMode::Sequential),
    );
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    // Iteration 1 always runs, even for warm-started windows that converge
    // immediately; a later target could silently miss the window.
    cfg.faults = FaultPlan::single(2, FaultKind::InjectNan { at_iter: 1 });
    let out = run(&log, spec, cfg);

    assert!(!out.degraded, "guard recovery must not degrade the run");
    let w = &out.windows[2];
    assert_eq!(
        w.status,
        WindowStatus::Recovered {
            via: RecoveryKind::GuardIntervention
        }
    );
    assert!(w.stats.health.restarts >= 1, "restart must be recorded");
    assert!(w.stats.converged);
    let d = clean.windows[2]
        .ranks
        .as_ref()
        .unwrap()
        .linf_distance(w.ranks.as_ref().unwrap());
    assert!(d < 1e-7, "recovered ranks drifted: linf {d}");
    assert_clean_windows_match(&clean, &out, 2, 1e-7);
}

// --- Path 2: forced non-convergence -> full-init retry -> dense oracle ---

#[test]
fn forced_nonconvergence_escalates_to_dense_oracle() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [KernelKind::SpMV, KernelKind::SpMM { lanes: 4 }] {
        let clean = run(&log, spec, base_cfg(kernel, ParallelMode::Sequential));
        let mut cfg = base_cfg(kernel, ParallelMode::Sequential);
        cfg.faults = FaultPlan::single(2, FaultKind::ForceNonConvergence);
        let out = run(&log, spec, cfg);

        assert!(
            !out.degraded,
            "{kernel:?}: oracle recovery must not degrade"
        );
        let w = &out.windows[2];
        // The fault persists across the full-init retry, so the ladder must
        // walk all the way down to the exact Eq. 2 solve.
        assert_eq!(
            w.status,
            WindowStatus::Recovered {
                via: RecoveryKind::DenseOracle
            },
            "{kernel:?}"
        );
        let d = clean.windows[2]
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(w.ranks.as_ref().unwrap());
        assert!(d < 1e-6, "{kernel:?}: oracle ranks drifted: linf {d}");
        assert_clean_windows_match(&clean, &out, 2, 1e-7);
    }
}

// --- Path 3: corrupted degree reciprocal -> mass drift detected ----------

#[test]
fn corrupt_reciprocal_is_detected_and_recovered() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let clean = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMV, ParallelMode::Sequential),
    );
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    cfg.faults = FaultPlan::single(1, FaultKind::CorruptReciprocal);
    let out = run(&log, spec, cfg);

    // Renormalization cannot cure a persistently corrupt reciprocal; the
    // kernel escalates and the oracle (which recomputes degrees itself)
    // produces the exact ranks.
    let w = &out.windows[1];
    assert_eq!(
        w.status,
        WindowStatus::Recovered {
            via: RecoveryKind::DenseOracle
        }
    );
    assert!(!out.degraded);
    let d = clean.windows[1]
        .ranks
        .as_ref()
        .unwrap()
        .linf_distance(w.ranks.as_ref().unwrap());
    assert!(d < 1e-6, "oracle ranks drifted: linf {d}");
    assert_clean_windows_match(&clean, &out, 1, 1e-7);
}

#[test]
fn corrupt_reciprocal_under_fail_policy_fails_loudly() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    cfg.pr.guard.policy = NumericPolicy::Fail;
    cfg.faults = FaultPlan::single(1, FaultKind::CorruptReciprocal);
    let out = run(&log, spec, cfg);

    // Under Fail no recovery ladder runs: the window fails, the run is
    // flagged degraded, and the diagnostic is preserved.
    assert!(out.degraded);
    assert_eq!(out.failed_windows(), vec![1]);
    match &out.windows[1].status {
        WindowStatus::Failed { diagnostic } => {
            assert!(!diagnostic.is_empty(), "diagnostic must not be silent");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Every other window still completed.
    for w in &out.windows {
        if w.window != 1 {
            assert!(w.status.is_valid());
        }
    }
}

// --- Path 4: kernel panic -> isolated, run completes degraded ------------

#[test]
fn injected_panic_is_isolated_per_window() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        for mode in [ParallelMode::Sequential, ParallelMode::Nested] {
            let clean = run(&log, spec, base_cfg(kernel, mode));
            let mut cfg = base_cfg(kernel, mode);
            cfg.faults = FaultPlan::single(2, FaultKind::PanicInKernel);
            let out = run(&log, spec, cfg);

            assert!(out.degraded, "{kernel:?}/{mode:?}: panic must degrade");
            assert_eq!(out.failed_windows(), vec![2], "{kernel:?}/{mode:?}");
            match &out.windows[2].status {
                WindowStatus::Failed { diagnostic } => assert!(
                    diagnostic.contains("panic"),
                    "{kernel:?}/{mode:?}: diagnostic {diagnostic:?}"
                ),
                other => panic!("{kernel:?}/{mode:?}: expected Failed, got {other:?}"),
            }
            assert_clean_windows_match(&clean, &out, 2, 1e-7);
            let summary = out.status_summary();
            assert!(summary.contains("1 failed"), "summary: {summary}");
        }
    }
}

// --- Streaming and offline models contain panics too ---------------------

#[test]
fn offline_and_streaming_survive_empty_inputs_and_report_status() {
    // Sanity for the shared status plumbing on the baseline models: a
    // healthy run is all-Ok, not degraded, and summarizes as such.
    let log = skewed_log();
    let spec = spec_for(&log);
    let off = run_offline(
        &log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!off.degraded);
    assert!(off.windows.iter().all(|w| w.status.is_valid()));
    let st = run_streaming(
        &log,
        spec,
        &StreamingConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!st.degraded);
    assert!(st.windows.iter().all(|w| w.status.is_valid()));
}

// --- Zero-cost contract: guards and an empty plan change nothing ---------

#[test]
fn healthy_ranks_bit_identical_with_guards_on_and_off() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            let mut on = base_cfg(kernel, mode);
            on.pr.guard = GuardConfig::default();
            let mut off = base_cfg(kernel, mode);
            off.pr.guard = GuardConfig::off();
            let a = run(&log, spec, on);
            let b = run(&log, spec, off);
            for (x, y) in a.windows.iter().zip(b.windows.iter()) {
                // Bit-identical, not approximately equal: the guards are
                // read-only observers on healthy inputs.
                assert_eq!(
                    x.fingerprint, y.fingerprint,
                    "{kernel:?}/{mode:?} window {}",
                    x.window
                );
                assert_eq!(x.stats.iterations, y.stats.iterations);
                assert_eq!(x.status, WindowStatus::Ok);
            }
        }
    }
}

// --- Cross-driver parity: one exec layer, one failure story ---------------
//
// The recovery ladder, panic isolation, and status classification live in
// exactly one place (`tempopr::core::exec`), so the same events and the
// same fault plan must yield the same per-window status sequence, the same
// attempt counts, and the same recovery-rung counters through all three
// drivers when they run the same policy.

/// Runs the same log + fault plan through all three drivers with the full
/// recovery ladder enabled, each under an enabled telemetry sink, and
/// returns `(driver name, output, report)` triples.
fn parity_runs(fault: FaultKind, faulted: usize) -> Vec<(&'static str, RunOutput, RunReport)> {
    let log = skewed_log();
    let spec = spec_for(&log);
    let plan = FaultPlan::single(faulted, fault);

    // Postmortem: cold sequential SpMV so `was_partial` is false for every
    // window, matching the other two drivers' attempt sequences.
    let pm_tele = Telemetry::enabled();
    let pm_cfg = PostmortemConfig {
        kernel: KernelKind::SpMV,
        mode: ParallelMode::Sequential,
        pr: tight_pr(),
        num_multiwindows: 1,
        init_mode: InitMode::Full,
        faults: plan.clone(),
        ..Default::default()
    };
    let engine =
        tempopr::core::PostmortemEngine::with_telemetry(&log, spec, pm_cfg, pm_tele).unwrap();
    let pm_out = engine.run();
    let pm_report = engine.telemetry().report();

    let off_tele = Telemetry::enabled();
    let off_cfg = OfflineConfig {
        pr: tight_pr(),
        faults: plan.clone(),
        recovery: RecoveryPolicy::ladder(),
        ..Default::default()
    };
    let off_out = run_offline_traced(&log, spec, &off_cfg, &off_tele).unwrap();

    let st_tele = Telemetry::enabled();
    let st_cfg = StreamingConfig {
        pr: tight_pr(),
        incremental: IncrementalMode::Recompute,
        faults: plan,
        recovery: RecoveryPolicy::ladder(),
        ..Default::default()
    };
    let st_out = run_streaming_traced(&log, spec, &st_cfg, &st_tele).unwrap();

    vec![
        ("postmortem", pm_out, pm_report),
        ("offline", off_out, off_tele.report()),
        ("streaming", st_out, st_tele.report()),
    ]
}

#[test]
fn drivers_agree_on_oracle_recovery() {
    let runs = parity_runs(FaultKind::ForceNonConvergence, 2);
    for (name, out, report) in &runs {
        assert!(!out.degraded, "{name}: oracle recovery must not degrade");
        for w in &out.windows {
            if w.window == 2 {
                assert_eq!(
                    w.status,
                    WindowStatus::Recovered {
                        via: RecoveryKind::DenseOracle
                    },
                    "{name}"
                );
                assert_eq!(w.attempts, 3, "{name}: ladder must reach rung 3");
            } else {
                assert_eq!(w.status, WindowStatus::Ok, "{name} window {}", w.window);
                assert_eq!(w.attempts, 1, "{name} window {}", w.window);
            }
        }
        // Every cold driver walks the identical ladder: the full-init rung
        // is skipped (nothing was warm-started), the oracle fires once.
        assert_eq!(report.counter("recovery.full_init_retry"), 0, "{name}");
        assert_eq!(report.counter("recovery.dense_oracle"), 1, "{name}");
        assert_eq!(report.counter("windows.recovered"), 1, "{name}");
    }
    // The oracle solves Eq. 2 exactly from the same events regardless of
    // driver, so even the recovered window's ranks agree across drivers.
    let (_, reference, _) = &runs[0];
    for (name, out, _) in &runs[1..] {
        for (a, b) in reference.windows.iter().zip(out.windows.iter()) {
            let d = a
                .ranks
                .as_ref()
                .unwrap()
                .linf_distance(b.ranks.as_ref().unwrap());
            assert!(
                d < 1e-8,
                "postmortem vs {name}, window {}: linf {d}",
                a.window
            );
        }
    }
}

#[test]
fn drivers_agree_on_panic_containment() {
    for (name, out, report) in parity_runs(FaultKind::PanicInKernel, 2) {
        assert!(out.degraded, "{name}: a panicked window must degrade");
        assert_eq!(out.failed_windows(), vec![2], "{name}");
        let w = &out.windows[2];
        match &w.status {
            WindowStatus::Failed { diagnostic } => assert!(
                diagnostic.contains("panic"),
                "{name}: diagnostic {diagnostic:?}"
            ),
            other => panic!("{name}: expected Failed, got {other:?}"),
        }
        // A panic is terminal on attempt 1 — no recovery rung may run on a
        // workspace that is no longer trustworthy.
        assert_eq!(w.attempts, 1, "{name}");
        assert_eq!(report.counter("recovery.full_init_retry"), 0, "{name}");
        assert_eq!(report.counter("recovery.dense_oracle"), 0, "{name}");
        assert_eq!(report.counter("windows.failed"), 1, "{name}");
        for w in &out.windows {
            if w.window != 2 {
                assert_eq!(w.status, WindowStatus::Ok, "{name} window {}", w.window);
            }
        }
    }
}

#[test]
fn empty_fault_plan_is_a_noop() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let mut with_empty_plan = base_cfg(KernelKind::SpMM { lanes: 4 }, ParallelMode::Nested);
    with_empty_plan.faults = FaultPlan::default();
    let a = run(&log, spec, with_empty_plan);
    let b = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMM { lanes: 4 }, ParallelMode::Nested),
    );
    for (x, y) in a.windows.iter().zip(b.windows.iter()) {
        assert_eq!(x.fingerprint, y.fingerprint, "window {}", x.window);
        assert_eq!(x.stats, y.stats);
    }
}
