//! Deterministic fault injection through the whole engine stack: every
//! planned fault must be detected, recovered (or contained), and reported —
//! and every window the fault did *not* touch must still produce valid
//! ranks.
//!
//! The graph is deliberately degree-skewed: on a degree-regular symmetric
//! graph the uniform start is already the fixed point, the kernel converges
//! at iteration 1, and an injection targeting iteration k never fires.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 500,
        ..PrConfig::default()
    }
}

/// Hub-skewed temporal graph (vertex 0 touches everything): far-from-uniform
/// stationary distribution, so every window iterates several times.
fn skewed_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..600u32 {
        let (u, v) = if i % 3 != 0 {
            (0, 1 + i % 29)
        } else {
            (1 + (i * 7) % 29, 1 + (i * 13) % 29)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 30).unwrap()
}

fn spec_for(log: &EventLog) -> WindowSpec {
    WindowSpec::covering(log, 200, 50).unwrap()
}

fn base_cfg(kernel: KernelKind, mode: ParallelMode) -> PostmortemConfig {
    PostmortemConfig {
        kernel,
        mode,
        pr: tight_pr(),
        num_multiwindows: 2,
        ..Default::default()
    }
}

fn run(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> RunOutput {
    PostmortemEngine::new(log, spec, cfg).unwrap().run()
}

/// Asserts every window except `faulted` carries valid ranks within `tol`
/// of the fault-free run (windows recovered from a fault may legitimately
/// differ by the convergence tolerance; the rest must agree too because
/// they converged to the same fixed points).
fn assert_clean_windows_match(clean: &RunOutput, faulty: &RunOutput, faulted: usize, tol: f64) {
    assert_eq!(clean.windows.len(), faulty.windows.len());
    for (c, f) in clean.windows.iter().zip(faulty.windows.iter()) {
        if c.window == faulted {
            continue;
        }
        assert!(
            f.status.is_valid(),
            "window {} poisoned by fault in window {faulted}: {:?}",
            c.window,
            f.status
        );
        let d = c
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(f.ranks.as_ref().unwrap());
        assert!(d < tol, "window {}: linf {d} vs fault-free run", c.window);
    }
}

// --- Path 1: injected NaN -> guard detects -> uniform restart ------------

#[test]
fn nan_injection_recovers_via_guard_restart() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let clean = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMV, ParallelMode::Sequential),
    );
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    // Iteration 1 always runs, even for warm-started windows that converge
    // immediately; a later target could silently miss the window.
    cfg.faults = FaultPlan::single(2, FaultKind::InjectNan { at_iter: 1 });
    let out = run(&log, spec, cfg);

    assert!(!out.degraded, "guard recovery must not degrade the run");
    let w = &out.windows[2];
    assert_eq!(
        w.status,
        WindowStatus::Recovered {
            via: RecoveryKind::GuardIntervention
        }
    );
    assert!(w.stats.health.restarts >= 1, "restart must be recorded");
    assert!(w.stats.converged);
    let d = clean.windows[2]
        .ranks
        .as_ref()
        .unwrap()
        .linf_distance(w.ranks.as_ref().unwrap());
    assert!(d < 1e-7, "recovered ranks drifted: linf {d}");
    assert_clean_windows_match(&clean, &out, 2, 1e-7);
}

// --- Path 2: forced non-convergence -> full-init retry -> dense oracle ---

#[test]
fn forced_nonconvergence_escalates_to_dense_oracle() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [KernelKind::SpMV, KernelKind::SpMM { lanes: 4 }] {
        let clean = run(&log, spec, base_cfg(kernel, ParallelMode::Sequential));
        let mut cfg = base_cfg(kernel, ParallelMode::Sequential);
        cfg.faults = FaultPlan::single(2, FaultKind::ForceNonConvergence);
        let out = run(&log, spec, cfg);

        assert!(
            !out.degraded,
            "{kernel:?}: oracle recovery must not degrade"
        );
        let w = &out.windows[2];
        // The fault persists across the full-init retry, so the ladder must
        // walk all the way down to the exact Eq. 2 solve.
        assert_eq!(
            w.status,
            WindowStatus::Recovered {
                via: RecoveryKind::DenseOracle
            },
            "{kernel:?}"
        );
        let d = clean.windows[2]
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(w.ranks.as_ref().unwrap());
        assert!(d < 1e-6, "{kernel:?}: oracle ranks drifted: linf {d}");
        assert_clean_windows_match(&clean, &out, 2, 1e-7);
    }
}

// --- Path 3: corrupted degree reciprocal -> mass drift detected ----------

#[test]
fn corrupt_reciprocal_is_detected_and_recovered() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let clean = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMV, ParallelMode::Sequential),
    );
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    cfg.faults = FaultPlan::single(1, FaultKind::CorruptReciprocal);
    let out = run(&log, spec, cfg);

    // Renormalization cannot cure a persistently corrupt reciprocal; the
    // kernel escalates and the oracle (which recomputes degrees itself)
    // produces the exact ranks.
    let w = &out.windows[1];
    assert_eq!(
        w.status,
        WindowStatus::Recovered {
            via: RecoveryKind::DenseOracle
        }
    );
    assert!(!out.degraded);
    let d = clean.windows[1]
        .ranks
        .as_ref()
        .unwrap()
        .linf_distance(w.ranks.as_ref().unwrap());
    assert!(d < 1e-6, "oracle ranks drifted: linf {d}");
    assert_clean_windows_match(&clean, &out, 1, 1e-7);
}

#[test]
fn corrupt_reciprocal_under_fail_policy_fails_loudly() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let mut cfg = base_cfg(KernelKind::SpMV, ParallelMode::Sequential);
    cfg.pr.guard.policy = NumericPolicy::Fail;
    cfg.faults = FaultPlan::single(1, FaultKind::CorruptReciprocal);
    let out = run(&log, spec, cfg);

    // Under Fail no recovery ladder runs: the window fails, the run is
    // flagged degraded, and the diagnostic is preserved.
    assert!(out.degraded);
    assert_eq!(out.failed_windows(), vec![1]);
    match &out.windows[1].status {
        WindowStatus::Failed { diagnostic } => {
            assert!(!diagnostic.is_empty(), "diagnostic must not be silent");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Every other window still completed.
    for w in &out.windows {
        if w.window != 1 {
            assert!(w.status.is_valid());
        }
    }
}

// --- Path 4: kernel panic -> isolated, run completes degraded ------------

#[test]
fn injected_panic_is_isolated_per_window() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        for mode in [ParallelMode::Sequential, ParallelMode::Nested] {
            let clean = run(&log, spec, base_cfg(kernel, mode));
            let mut cfg = base_cfg(kernel, mode);
            cfg.faults = FaultPlan::single(2, FaultKind::PanicInKernel);
            let out = run(&log, spec, cfg);

            assert!(out.degraded, "{kernel:?}/{mode:?}: panic must degrade");
            assert_eq!(out.failed_windows(), vec![2], "{kernel:?}/{mode:?}");
            match &out.windows[2].status {
                WindowStatus::Failed { diagnostic } => assert!(
                    diagnostic.contains("panic"),
                    "{kernel:?}/{mode:?}: diagnostic {diagnostic:?}"
                ),
                other => panic!("{kernel:?}/{mode:?}: expected Failed, got {other:?}"),
            }
            assert_clean_windows_match(&clean, &out, 2, 1e-7);
            let summary = out.status_summary();
            assert!(summary.contains("1 failed"), "summary: {summary}");
        }
    }
}

// --- Streaming and offline models contain panics too ---------------------

#[test]
fn offline_and_streaming_survive_empty_inputs_and_report_status() {
    // Sanity for the shared status plumbing on the baseline models: a
    // healthy run is all-Ok, not degraded, and summarizes as such.
    let log = skewed_log();
    let spec = spec_for(&log);
    let off = run_offline(
        &log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!off.degraded);
    assert!(off.windows.iter().all(|w| w.status.is_valid()));
    let st = run_streaming(
        &log,
        spec,
        &StreamingConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!st.degraded);
    assert!(st.windows.iter().all(|w| w.status.is_valid()));
}

// --- Zero-cost contract: guards and an empty plan change nothing ---------

#[test]
fn healthy_ranks_bit_identical_with_guards_on_and_off() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            let mut on = base_cfg(kernel, mode);
            on.pr.guard = GuardConfig::default();
            let mut off = base_cfg(kernel, mode);
            off.pr.guard = GuardConfig::off();
            let a = run(&log, spec, on);
            let b = run(&log, spec, off);
            for (x, y) in a.windows.iter().zip(b.windows.iter()) {
                // Bit-identical, not approximately equal: the guards are
                // read-only observers on healthy inputs.
                assert_eq!(
                    x.fingerprint, y.fingerprint,
                    "{kernel:?}/{mode:?} window {}",
                    x.window
                );
                assert_eq!(x.stats.iterations, y.stats.iterations);
                assert_eq!(x.status, WindowStatus::Ok);
            }
        }
    }
}

#[test]
fn empty_fault_plan_is_a_noop() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let mut with_empty_plan = base_cfg(KernelKind::SpMM { lanes: 4 }, ParallelMode::Nested);
    with_empty_plan.faults = FaultPlan::default();
    let a = run(&log, spec, with_empty_plan);
    let b = run(
        &log,
        spec,
        base_cfg(KernelKind::SpMM { lanes: 4 }, ParallelMode::Nested),
    );
    for (x, y) in a.windows.iter().zip(b.windows.iter()) {
        assert_eq!(x.fingerprint, y.fingerprint, "window {}", x.window);
        assert_eq!(x.stats, y.stats);
    }
}
