//! Adversarial I/O properties: the event-file readers must never panic,
//! whatever bytes they are fed — truncated downloads, bit-flipped binary
//! files, garbage spliced into text logs — and lenient ingest must keep
//! every record strict ingest would have kept.

use proptest::prelude::*;
use tempopr::graph::io::{
    read_binary, read_text, read_text_report, write_binary, write_text, IngestReport, IoError,
};
use tempopr::prelude::*;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0u32..40, 0u32..40, -500i64..500).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..120,
    )
}

fn arb_log() -> impl Strategy<Value = EventLog> {
    arb_events().prop_map(|evs| EventLog::from_unsorted(evs, 40).unwrap())
}

/// Garbage lines an ingest run can plausibly meet in the wild. None of
/// them parses as an event; the two comment forms are not data lines.
fn arb_garbage() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(
        prop::sample::select(vec![
            "bogus line",
            "1 2",
            "a b c",
            "-7 3 9",
            "1.5 2 3",
            "99999999999 1 2",
            "2 99999999999999999999 3",
            "3 4 not-a-time",
            "\u{fffd}\u{fffd}\u{fffd}",
        ]),
        1..10,
    )
}

fn lenient() -> ParseMode {
    ParseMode::Lenient {
        max_bad_records: usize::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: all three readers return, never panic.
    #[test]
    fn readers_never_panic_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_binary(&bytes[..]);
        let _ = read_text(&bytes[..]);
        let _ = read_text_report(&bytes[..], lenient());
    }

    /// A valid binary file with a bit flipped anywhere (header, counts, or
    /// payload) either loads some log or errors — never panics.
    #[test]
    fn bitflipped_binary_never_panics(log in arb_log(), pos in 0usize..1 << 20, bit in 0u8..8) {
        let mut buf = Vec::new();
        write_binary(&log, &mut buf).unwrap();
        let i = pos % buf.len();
        buf[i] ^= 1 << bit;
        let _ = read_binary(&buf[..]);
    }

    /// A truncated binary file must be rejected, not mis-parsed: the header
    /// declares the record count, so any strict prefix is inconsistent.
    #[test]
    fn truncated_binary_is_rejected(log in arb_log(), cut in 0usize..1 << 20) {
        let mut buf = Vec::new();
        write_binary(&log, &mut buf).unwrap();
        let keep = cut % buf.len();
        prop_assert!(read_binary(&buf[..keep]).is_err(), "prefix of {} bytes accepted", keep);
    }

    /// Garbage lines spliced into a valid text log: lenient mode drops
    /// exactly the garbage and keeps every real event.
    #[test]
    fn lenient_recovers_spliced_garbage(
        log in arb_log(),
        garbage in arb_garbage(),
        at in 0usize..1 << 20,
    ) {
        let mut buf = Vec::new();
        write_text(&log, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        let insert_at = at % (lines.len() + 1);
        for g in garbage.iter().rev() {
            lines.insert(insert_at, (*g).to_owned());
        }
        let text = lines.join("\n");
        // Strict mode must refuse the file outright.
        prop_assert!(read_text(text.as_bytes()).is_err());
        let (relogged, report) = read_text_report(text.as_bytes(), lenient()).unwrap();
        prop_assert_eq!(relogged.events().len(), log.events().len());
        prop_assert_eq!(report.accepted, log.events().len());
        prop_assert_eq!(report.dropped(), garbage.len());
        prop_assert!(!report.is_clean());
    }

    /// Lenient mode on a *clean* file agrees with strict mode
    /// event-for-event and reports nothing dropped.
    #[test]
    fn lenient_equals_strict_on_clean_input(log in arb_log()) {
        let mut buf = Vec::new();
        write_text(&log, &mut buf).unwrap();
        let strict = read_text(&buf[..]).unwrap();
        let (len, report) = read_text_report(&buf[..], lenient()).unwrap();
        prop_assert_eq!(strict.events(), len.events());
        prop_assert_eq!(report.skipped_bad, 0);
        prop_assert_eq!(report.overflow, 0);
        prop_assert_eq!(report.accepted, log.events().len());
    }

    /// The lenient cap is honored: with `max_bad_records: 0` a single bad
    /// line aborts the read with `TooManyBadRecords`.
    #[test]
    fn lenient_cap_zero_rejects_first_bad_line(log in arb_log()) {
        let mut buf = Vec::new();
        write_text(&log, &mut buf).unwrap();
        buf.extend_from_slice(b"\nnot an event\n");
        let r = read_text_report(&buf[..], ParseMode::Lenient { max_bad_records: 0 });
        prop_assert!(matches!(r, Err(IoError::TooManyBadRecords { .. })));
    }
}

#[test]
fn report_summary_mentions_everything_it_counted() {
    let text = b"# comment\n1 2 3\n1 2 3\nbogus line\n5 5 7\n4 3 1\n99999999999 1 2\n";
    let (log, report) = read_text_report(
        &text[..],
        ParseMode::Lenient {
            max_bad_records: usize::MAX,
        },
    )
    .unwrap();
    assert_eq!(report.accepted, 4);
    assert_eq!(log.events().len(), 4);
    assert_eq!(report.skipped_bad, 1);
    assert_eq!(report.overflow, 1);
    assert_eq!(report.dropped(), 2, "bogus + overflow both dropped");
    assert_eq!(report.duplicates, 1);
    assert_eq!(report.self_loops, 1);
    assert_eq!(report.out_of_order, 1);
    assert!(!report.is_clean());
    let s = report.summary();
    for needle in ["accepted", "dropped"] {
        assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
    }
    assert!(!report.diagnostics.is_empty());
    assert!(report.diagnostics.len() <= IngestReport::MAX_DIAGNOSTICS);
}
