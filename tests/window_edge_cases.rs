//! Window-specification edge cases across all models: windows that start
//! before the data, extend past it, are empty in the middle of gaps, or
//! number exactly one.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 400,
        ..PrConfig::default()
    }
}

fn gap_log() -> EventLog {
    // Two bursts with a dead zone in between.
    let mut events = Vec::new();
    for i in 0..80u32 {
        events.push(Event::new(i % 10, (i * 3 + 1) % 10, (i % 40) as i64));
    }
    for i in 0..80u32 {
        events.push(Event::new(i % 10, (i * 7 + 3) % 10, 1000 + (i % 40) as i64));
    }
    EventLog::from_unsorted(events, 10).unwrap()
}

fn run_all(log: &EventLog, spec: WindowSpec) -> [RunOutput; 3] {
    let pm = PostmortemEngine::new(
        log,
        spec,
        PostmortemConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap()
    .run();
    let off = run_offline(
        log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("offline run");
    let st = run_streaming(
        log,
        spec,
        &StreamingConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("streaming run");
    [pm, off, st]
}

fn assert_all_agree(log: &EventLog, spec: WindowSpec) {
    let [pm, off, st] = run_all(log, spec);
    for w in 0..spec.count {
        let a = pm.windows[w].ranks.as_ref().unwrap();
        let b = off.windows[w].ranks.as_ref().unwrap();
        let c = st.windows[w].ranks.as_ref().unwrap();
        assert!(a.linf_distance(b) < 1e-8, "pm vs off, window {w}");
        assert!(a.linf_distance(c) < 1e-8, "pm vs stream, window {w}");
    }
}

#[test]
fn windows_spanning_a_dead_zone_are_empty_everywhere() {
    let log = gap_log();
    // Windows of width 50 sliding by 100: several fall entirely in the
    // gap between t=40 and t=1000.
    let spec = WindowSpec::new(0, 50, 100, 11).unwrap();
    let [pm, off, st] = run_all(&log, spec);
    let mut saw_empty = false;
    for w in 0..spec.count {
        let empty = pm.windows[w].stats.active_vertices == 0;
        assert_eq!(off.windows[w].stats.active_vertices == 0, empty);
        assert_eq!(st.windows[w].stats.active_vertices == 0, empty);
        if empty {
            saw_empty = true;
            assert!(pm.windows[w].ranks.as_ref().unwrap().is_empty());
            assert_eq!(pm.windows[w].fingerprint, 0.0);
        }
    }
    assert!(saw_empty, "the gap must produce empty windows");
    assert_all_agree(&log, spec);
}

#[test]
fn spec_starting_before_the_data() {
    let log = gap_log();
    let spec = WindowSpec::new(-500, 100, 200, 9).unwrap();
    let [pm, _, _] = run_all(&log, spec);
    assert_eq!(pm.windows[0].stats.active_vertices, 0, "pre-data window");
    assert_all_agree(&log, spec);
}

#[test]
fn spec_extending_past_the_data() {
    let log = gap_log();
    let spec = WindowSpec::new(900, 80, 120, 6).unwrap();
    let [pm, _, _] = run_all(&log, spec);
    let last = pm.windows.last().unwrap();
    assert_eq!(last.stats.active_vertices, 0, "post-data window");
    assert_all_agree(&log, spec);
}

#[test]
fn single_window_works_under_every_kernel() {
    let log = gap_log();
    let spec = WindowSpec::new(0, 40, 1000, 1).unwrap();
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 16 },
        KernelKind::PushBlocking,
    ] {
        let out = PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                kernel,
                pr: tight_pr(),
                ..Default::default()
            },
        )
        .unwrap()
        .run();
        assert_eq!(out.windows.len(), 1);
        assert!(out.windows[0].stats.active_vertices > 0);
    }
    assert_all_agree(&log, spec);
}

#[test]
fn more_multiwindows_than_windows_is_clamped() {
    let log = gap_log();
    let spec = WindowSpec::new(0, 200, 300, 4).unwrap();
    let engine = PostmortemEngine::new(
        &log,
        spec,
        PostmortemConfig {
            num_multiwindows: 1000,
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(engine.set().num_parts() <= spec.count);
    engine.run().assert_complete(spec.count);
}
