//! Property-based tests of the streaming substrate: the STINGER-like store
//! must track a naive multiset model under arbitrary insert/delete
//! interleavings, and a streamed sliding window must present exactly the
//! same graph as a batch-built one.

use proptest::prelude::*;
use std::collections::HashMap;
use tempopr::core::{FaultPlan, RetainMode, WindowStatus};
use tempopr::graph::{Event, EventLog, TemporalCsr, TimeRange, WindowSpec};
use tempopr::kernel::FaultKind;
use tempopr::stream::{
    run_streaming, run_streaming_traced, IncrementalMode, StreamingConfig, StreamingGraph,
};
use tempopr::telemetry::Telemetry;

const MAX_V: u32 = 16;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..200).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..120,
    )
}

fn canon(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_tracks_multiset_model(ops in prop::collection::vec((0..MAX_V, 0..MAX_V, any::<bool>()), 1..300)) {
        let mut g = StreamingGraph::new(MAX_V as usize);
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        let mut live: Vec<(u32, u32)> = Vec::new();
        for (i, &(u, v, del)) in ops.iter().enumerate() {
            if del && !live.is_empty() {
                let idx = (u as usize * 31 + v as usize * 7 + i) % live.len();
                let (a, b) = live.swap_remove(idx);
                prop_assert!(g.delete_event(a, b));
                let m = model.get_mut(&(a, b)).unwrap();
                *m -= 1;
                if *m == 0 {
                    model.remove(&(a, b));
                }
            } else {
                g.insert_event(u, v, i as i64);
                *model.entry(canon(u, v)).or_insert(0) += 1;
                live.push(canon(u, v));
            }
        }
        g.check_invariants();
        for u in 0..MAX_V {
            for v in u..MAX_V {
                let expect = model.get(&(u, v)).copied().unwrap_or(0);
                prop_assert_eq!(g.multiplicity(u, v), expect, "pair ({}, {})", u, v);
                if u != v {
                    prop_assert_eq!(g.multiplicity(v, u), expect);
                }
            }
        }
        // Degrees equal distinct live neighbors.
        for v in 0..MAX_V {
            let distinct = model
                .keys()
                .filter(|&&(a, b)| a == v || b == v)
                .count();
            prop_assert_eq!(g.degree(v) as usize, distinct, "degree of {}", v);
        }
    }

    #[test]
    fn streamed_window_equals_batch_graph(
        events in arb_events(),
        delta in 5i64..120,
        sw in 1i64..60,
    ) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        // Stream the windows.
        let mut g = StreamingGraph::new(MAX_V as usize);
        for w in 0..spec.count {
            let range = spec.window(w);
            let ins_lo = if w == 0 {
                range.start
            } else {
                (spec.window(w - 1).end + 1).max(range.start)
            };
            for e in log.slice_by_time(ins_lo, range.end) {
                g.insert_event(e.u, e.v, e.t);
            }
            if w > 0 {
                let prev = spec.window(w - 1);
                let del_hi = (range.start - 1).min(prev.end);
                for e in log.slice_by_time(prev.start, del_hi) {
                    assert!(g.delete_event(e.u, e.v));
                }
            }
            g.check_invariants();
            // The streamed graph must equal the batch-built window graph.
            let t = TemporalCsr::from_events(MAX_V as usize, log.events(), true);
            let win = TimeRange::new(range.start, range.end);
            for v in 0..MAX_V {
                let mut stream_nbrs: Vec<u32> = g.neighbors(v).map(|e| e.0).collect();
                stream_nbrs.sort_unstable();
                let mut batch_nbrs: Vec<u32> = t.active_neighbors(v, win).collect();
                batch_nbrs.sort_unstable();
                prop_assert_eq!(stream_nbrs, batch_nbrs, "window {} vertex {}", w, v);
            }
        }
    }

    /// Driver-level recovery property: injecting a numeric fault into one
    /// window must fail *only* that window, cold-restart the next, and
    /// leave every other window bit-identical to the fault-free run (the
    /// kernels never mutate the store, and `Recompute` mode starts every
    /// window from the same uniform init regardless of history).
    #[test]
    fn failed_window_cold_restarts_and_is_counted(
        events in arb_events(),
        delta in 20i64..120,
        sw in 5i64..40,
        widx in 0usize..64,
    ) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        let base = StreamingConfig {
            incremental: IncrementalMode::Recompute,
            retain: RetainMode::Full,
            ..Default::default()
        };
        let clean = run_streaming(&log, spec, &base).unwrap();
        // Fault a non-terminal window so a successor exercises the restart.
        let w = if spec.count >= 2 { widx % (spec.count - 1) } else { 0 };
        // Preconditions (in lieu of prop_assume, which the shim lacks):
        // a successor window must exist, the clean run must be healthy,
        // and the faulted kernel must actually iterate for NaN to fire.
        if spec.count < 2 || clean.degraded || clean.windows[w].stats.active_vertices == 0 {
            continue;
        }
        let cfg = StreamingConfig {
            faults: FaultPlan::single(w, FaultKind::InjectNan { at_iter: 1 }),
            ..base
        };
        let tele = Telemetry::enabled();
        let out = run_streaming_traced(&log, spec, &cfg, &tele).unwrap();
        prop_assert!(out.degraded);
        prop_assert!(matches!(out.windows[w].status, WindowStatus::Failed { .. }));
        prop_assert!(out.windows[w].ranks.as_ref().unwrap().is_empty());
        for (x, y) in clean.windows.iter().zip(&out.windows) {
            if x.window == w {
                continue;
            }
            prop_assert_eq!(&x.status, &y.status, "window {}", x.window);
            prop_assert_eq!(
                x.fingerprint.to_bits(),
                y.fingerprint.to_bits(),
                "window {}",
                x.window
            );
            prop_assert_eq!(&x.ranks, &y.ranks, "window {}", x.window);
        }
        // The run's books must balance: one failure, one cold restart
        // (window w+1 is the only one that starts without a predecessor),
        // and the degraded flag mirrored into the gauge.
        let report = tele.report();
        prop_assert_eq!(report.counter("windows.failed"), 1);
        prop_assert_eq!(report.counter("windows.ok"), spec.count as u64 - 1);
        prop_assert_eq!(report.counter("recovery.cold_restart"), 1);
        prop_assert_eq!(report.gauge("run.degraded"), Some(1.0));
    }

    #[test]
    fn full_drain_empties_store(events in arb_events()) {
        let mut g = StreamingGraph::new(MAX_V as usize);
        for e in &events {
            g.insert_event(e.u, e.v, e.t);
        }
        for e in &events {
            assert!(g.delete_event(e.u, e.v));
        }
        g.check_invariants();
        prop_assert_eq!(g.num_edges(), 0);
        for v in 0..MAX_V {
            prop_assert_eq!(g.degree(v), 0);
            prop_assert_eq!(g.neighbors(v).count(), 0);
        }
    }
}
