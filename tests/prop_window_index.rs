//! Property-based tests of the per-window activity/degree index: for
//! arbitrary event logs, window grids, and partitionings, every
//! [`WindowIndexView`] must agree with a brute-force scan of the part's
//! temporal CSR, and the engine must produce bit-identical results with
//! the index on and off.

use proptest::prelude::*;
use tempopr::graph::{Event, EventLog, MultiWindowSet, PartitionStrategy, TimeRange, WindowSpec};
use tempopr::prelude::*;

const MAX_V: u32 = 24;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..500).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..200,
    )
}

/// Brute-force reference for one window of one part: out-degrees from the
/// part's (push) temporal CSR, in-activity from the same CSR's forward
/// edges, active set as their union (out-only for symmetric parts).
fn check_view_against_bruteforce(
    part: &tempopr::graph::MultiWindowGraph,
    window: usize,
    range: TimeRange,
    directed: bool,
) {
    let t = part.tcsr();
    let n = part.num_local_vertices();
    let mut deg = vec![0u32; n];
    t.active_degrees(range, &mut deg);
    let mut in_active = vec![false; n];
    if directed {
        for u in 0..n as u32 {
            for nb in t.active_neighbors(u, range) {
                in_active[nb as usize] = true;
            }
        }
    }
    let expect_active: Vec<u32> = (0..n as u32)
        .filter(|&v| deg[v as usize] > 0 || in_active[v as usize])
        .collect();

    let view = part.index_view(window);
    prop_assert_eq!(view.range, range);
    prop_assert_eq!(view.vertices, &expect_active[..], "window {}", window);
    for (i, &v) in view.vertices.iter().enumerate() {
        let d = deg[v as usize];
        prop_assert_eq!(view.deg_out[i], d, "window {} vertex {}", window, v);
        let inv = if d > 0 { 1.0 / d as f64 } else { 0.0 };
        prop_assert_eq!(view.inv_deg[i], inv, "window {} vertex {}", window, v);
    }
    let expect_dangling: Vec<u32> = expect_active
        .iter()
        .copied()
        .filter(|&v| deg[v as usize] == 0)
        .collect();
    prop_assert_eq!(view.dangling, &expect_dangling[..], "window {}", window);
}

fn fingerprints(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> Vec<f64> {
    PostmortemEngine::new(log, spec, cfg)
        .unwrap()
        .run()
        .windows
        .iter()
        .map(|w| w.fingerprint)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_index_matches_bruteforce(
        events in arb_events(),
        delta in 5i64..200,
        sw in 1i64..100,
        parts in 1usize..8,
        directed in any::<bool>(),
        strategy_equal_events in any::<bool>(),
    ) {
        let n = MAX_V as usize;
        let log = EventLog::from_unsorted(events, n).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        let strategy = if strategy_equal_events {
            PartitionStrategy::EqualEvents
        } else {
            PartitionStrategy::EqualWindows
        };
        let set = MultiWindowSet::build(&log, spec, parts, !directed, strategy).unwrap();
        for w in 0..spec.count {
            let part = set.part_of(w);
            check_view_against_bruteforce(part, w, spec.window(w), directed);
        }
    }

    #[test]
    fn engine_fingerprints_identical_with_and_without_index(
        events in arb_events(),
        delta in 5i64..200,
        sw in 1i64..100,
        parts in 1usize..6,
        symmetric in any::<bool>(),
    ) {
        let n = MAX_V as usize;
        let log = EventLog::from_unsorted(events, n).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        for kernel in [
            KernelKind::SpMV,
            KernelKind::SpMM { lanes: 4 },
            KernelKind::PushBlocking,
        ] {
            for mode in [ParallelMode::Sequential, ParallelMode::Nested] {
                let cfg = PostmortemConfig {
                    num_multiwindows: parts,
                    kernel,
                    mode,
                    symmetric,
                    ..Default::default()
                };
                let indexed = fingerprints(&log, spec, cfg.clone());
                let unindexed = fingerprints(
                    &log,
                    spec,
                    PostmortemConfig {
                        use_window_index: false,
                        ..cfg
                    },
                );
                // Bit-identical, not approximately equal: the index feeds
                // the same degree/activity inputs to the same iteration.
                prop_assert_eq!(indexed, unindexed, "{:?}/{:?}", kernel, mode);
            }
        }
    }
}
