//! Property-based tests of `core::warmstart::carry_ranks`, the cross-part
//! remap behind `InitMode::Warm`: against a brute-force hash-map
//! reference on arbitrary sorted vertex maps, plus the edge cases a
//! merge-join is easiest to get wrong — a single shared vertex, all rank
//! mass below the degeneracy threshold, and maps that (illegally) contain
//! duplicate ids.

use proptest::prelude::*;
use std::collections::HashMap;
use tempopr::core::warmstart::{carry_ranks, CarryStats, MIN_CARRY_MASS};

/// Brute-force reference: look every new-part vertex up in a hash map of
/// the previous part, keeping finite strictly-positive ranks only.
fn reference_carry(
    prev_map: &[u32],
    prev_ranks: &[f64],
    new_map: &[u32],
) -> (Vec<f64>, Option<CarryStats>) {
    let by_global: HashMap<u32, f64> = prev_map
        .iter()
        .copied()
        .zip(prev_ranks.iter().copied())
        .collect();
    let mut out = vec![0.0; new_map.len()];
    let mut shared = 0usize;
    let mut mass = 0.0f64;
    for (j, g) in new_map.iter().enumerate() {
        if let Some(&r) = by_global.get(g) {
            if r.is_finite() && r > 0.0 {
                out[j] = r;
                shared += 1;
                mass += r;
            }
        }
    }
    let stats = (shared > 0 && mass > MIN_CARRY_MASS).then_some(CarryStats { shared, mass });
    (out, stats)
}

/// Turns raw draws into a sorted, deduplicated local→global vertex map
/// (the contract of `MultiWindowGraph::vertex_map`).
fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Decodes a `(tag, mantissa)` draw into a rank value covering the edge
/// cases: zero, sub-threshold tiny, poisoned NaN/Inf, ordinary positive
/// (the majority of tags).
fn decode_rank(tag: u32, m: u32) -> f64 {
    match tag {
        0 => 0.0,
        1 => 1e-15,
        2 => f64::NAN,
        3 => f64::INFINITY,
        _ => (m as f64 + 1.0) / 1024.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_brute_force_reference(
        prev_raw in prop::collection::vec(0u32..64, 0..24),
        new_raw in prop::collection::vec(0u32..64, 0..24),
        rank_raw in prop::collection::vec((0u32..12, 0u32..1024), 24..25),
    ) {
        let prev_map = sorted_dedup(prev_raw);
        let new_map = sorted_dedup(new_raw);
        let prev_ranks: Vec<f64> = (0..prev_map.len())
            .map(|i| decode_rank(rank_raw[i].0, rank_raw[i].1))
            .collect();
        let mut out = Vec::new();
        let got = carry_ranks(&prev_map, &prev_ranks, &new_map, &mut out);
        let (want_out, want_stats) = reference_carry(&prev_map, &prev_ranks, &new_map);
        prop_assert_eq!(out.len(), new_map.len());
        for (j, (&a, &b)) in out.iter().zip(want_out.iter()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}", j);
        }
        match (got, want_stats) {
            (None, None) => {}
            (Some(g), Some(w)) => {
                prop_assert_eq!(g.shared, w.shared);
                prop_assert!((g.mass - w.mass).abs() <= 1e-12 * w.mass.abs().max(1.0));
            }
            (g, w) => prop_assert!(false, "verdicts differ: got {:?}, want {:?}", g, w),
        }
        // A seed is only ever finite and non-negative, poisoned inputs
        // notwithstanding.
        prop_assert!(out.iter().all(|r| r.is_finite() && *r >= 0.0));
    }

    #[test]
    fn single_shared_vertex_carries_iff_mass_survives(
        g in 0u32..64,
        tag in 0u32..6,
        m in 0u32..1024,
    ) {
        // tag 0 = zero rank, 1 = sub-threshold, else ordinary positive.
        let r = match tag {
            0 => 0.0,
            1 => 1e-15,
            _ => (m as f64 + 1.0) / 1024.0,
        };
        // prev = {g}, new = {g, g+1000}: exactly one candidate overlap.
        let prev_map = [g];
        let new_map = [g, g + 1000];
        let mut out = Vec::new();
        let got = carry_ranks(&prev_map, &[r], &new_map, &mut out);
        if r > MIN_CARRY_MASS {
            let stats = got.expect("positive mass through one shared vertex must carry");
            prop_assert_eq!(stats.shared, 1);
            prop_assert_eq!(out[0].to_bits(), r.to_bits());
            prop_assert_eq!(out[1].to_bits(), 0.0f64.to_bits());
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn all_mass_below_epsilon_is_degenerate(
        raw in prop::collection::vec(0u32..64, 1..24),
    ) {
        // Every shared vertex carries 1e-16: individually positive and
        // finite, collectively (at most 24 of them) far below
        // MIN_CARRY_MASS.
        let map = sorted_dedup(raw);
        let ranks = vec![1e-16; map.len()];
        let mut out = Vec::new();
        prop_assert_eq!(carry_ranks(&map, &ranks, &map, &mut out), None);
        prop_assert_eq!(out.len(), map.len());
    }
}

#[test]
fn duplicate_ids_in_maps_do_not_panic() {
    // Vertex maps are sorted *sets* by contract; a duplicated id (from a
    // corrupted part) must degrade gracefully, never panic or emit
    // non-finite seeds.
    let cases: [(&[u32], &[f64], &[u32]); 4] = [
        (&[3, 3, 5], &[0.2, 0.3, 0.5], &[3, 5]),
        (&[3, 5], &[0.4, 0.6], &[3, 3, 5]),
        (&[7, 7, 7], &[0.1, 0.2, 0.3], &[7, 7]),
        (&[0, 0], &[0.5, 0.5], &[0]),
    ];
    for (prev_map, prev_ranks, new_map) in cases {
        let mut out = Vec::new();
        let got = carry_ranks(prev_map, prev_ranks, new_map, &mut out);
        assert_eq!(out.len(), new_map.len());
        assert!(out.iter().all(|r| r.is_finite() && *r >= 0.0), "{out:?}");
        if let Some(stats) = got {
            assert!(stats.shared > 0 && stats.mass > MIN_CARRY_MASS);
        }
    }
}

#[test]
fn single_shared_vertex_across_large_disjoint_maps() {
    // Two big parts sharing exactly one vertex in the middle: the merge
    // join must find it regardless of how much it skips on either side.
    let prev_map: Vec<u32> = (0..200).map(|i| i * 2).collect(); // evens
    let mut new_map: Vec<u32> = (0..200).map(|i| i * 2 + 1001).collect(); // odds >= 1001
    new_map.insert(0, 100); // the one shared (even) vertex
    let prev_ranks: Vec<f64> = (0..200).map(|i| 1.0 + i as f64).collect();
    let mut out = Vec::new();
    let stats = carry_ranks(&prev_map, &prev_ranks, &new_map, &mut out).unwrap();
    assert_eq!(stats.shared, 1);
    assert_eq!(stats.mass, 51.0); // vertex 100 = prev index 50, rank 51
    assert_eq!(out[0], 51.0);
    assert!(out[1..].iter().all(|&r| r == 0.0));
}
